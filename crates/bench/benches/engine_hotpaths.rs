//! Criterion benchmarks over the simulator's hot paths, so that
//! performance regressions in the simulator itself are visible.

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_types::policy::PcieCompression;
use batmem_types::{PageId, SimConfig, SmId, FrameId};
use batmem_uvm::{FaultBuffer, MemoryManager, PciePipes, TreePrefetcher, UvmRuntime};
use batmem_vmem::Mmu;
use batmem_workloads::registry;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;

fn bench_fault_buffer(c: &mut Criterion) {
    c.bench_function("fault_buffer/record_drain_1024", |b| {
        b.iter_batched(
            || FaultBuffer::new(1024),
            |mut buf| {
                for i in 0..1024u64 {
                    buf.record(PageId::new(i * 7 % 997), i);
                }
                black_box(buf.drain_sorted())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_prefetcher(c: &mut Criterion) {
    let faulted: Vec<PageId> = (0..512u64).map(|i| PageId::new(i * 2)).collect();
    c.bench_function("prefetcher/expand_512_faults", |b| {
        b.iter_batched(
            || TreePrefetcher::new(32, 50),
            |mut pf| black_box(pf.expand(&faulted, |_| false, 100_000)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_memory_manager(c: &mut Criterion) {
    c.bench_function("memmgr/fill_evict_4096", |b| {
        b.iter_batched(
            || MemoryManager::new(Some(4096), Default::default(), 32),
            |mut m| {
                let pinned = HashSet::new();
                for i in 0..8192u64 {
                    let frame = match m.take_frame() {
                        Some(f) => f,
                        None => {
                            let (v, _) = m.pick_victims(&pinned);
                            let f = m.remove(v[0]);
                            m.release_frame(f);
                            m.take_frame().unwrap()
                        }
                    };
                    m.mark_resident(PageId::new(i), frame);
                }
                black_box(m.resident_count())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mmu_translate(c: &mut Criterion) {
    c.bench_function("mmu/translate_hit_path", |b| {
        let mut mmu = Mmu::new(&SimConfig::default());
        for i in 0..64u64 {
            mmu.install(PageId::new(i), FrameId::new(i as u32));
            let _ = mmu.translate(SmId::new(0), PageId::new(i), 0);
        }
        let mut now = 0;
        b.iter(|| {
            now += 1;
            black_box(mmu.translate(SmId::new(0), PageId::new(now % 64), now))
        })
    });
}

fn bench_pcie(c: &mut Criterion) {
    c.bench_function("pcie/schedule_1024_pages", |b| {
        b.iter_batched(
            || PciePipes::new(15_750_000_000, 17_300_000_000, PcieCompression::default()),
            |mut p| {
                for _ in 0..1024 {
                    black_box(p.schedule_h2d(0, 65_536));
                }
                p.h2d_free_at()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_uvm_batch(c: &mut Criterion) {
    let cfg = batmem_types::config::UvmConfig { gpu_mem_pages: Some(256), ..Default::default() };
    let policy = batmem_types::policy::PolicyConfig::baseline();
    c.bench_function("uvm/batch_512_faults", |b| {
        b.iter_batched(
            || UvmRuntime::new(&cfg, &policy, 100_000),
            |mut rt| {
                let mut outs = Vec::new();
                for i in 0..512u64 {
                    outs.extend(rt.record_fault(PageId::new(i * 3), 0));
                }
                // Drive the runtime's own events to completion.
                let mut queue: Vec<(u64, batmem_uvm::UvmEvent)> = Vec::new();
                let push = |os: Vec<batmem_uvm::UvmOutput>, q: &mut Vec<_>| {
                    for o in os {
                        if let batmem_uvm::UvmOutput::Schedule { at, event } = o {
                            q.push((at, event));
                        }
                    }
                };
                push(outs, &mut queue);
                while !queue.is_empty() {
                    queue.sort_by_key(|&(t, _)| t);
                    let (t, e) = queue.remove(0);
                    let os = rt.on_event(e, t);
                    push(os, &mut queue);
                }
                black_box(rt.stats().num_batches())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_graph_gen(c: &mut Criterion) {
    c.bench_function("graph/rmat_scale12", |b| {
        b.iter(|| black_box(gen::rmat(12, 8, 42)))
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let graph = Arc::new(gen::rmat(10, 8, 42));
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("bfs_ttc_scale10_to_ue", |b| {
        b.iter(|| {
            let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
            black_box(
                Simulation::builder()
                    .policy(policies::to_ue())
                    .memory_ratio(0.5)
                    .run(w),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fault_buffer,
    bench_prefetcher,
    bench_memory_manager,
    bench_mmu_translate,
    bench_pcie,
    bench_uvm_batch,
    bench_graph_gen,
    bench_end_to_end,
);
criterion_main!(benches);
