//! Timing benchmarks over the simulator's hot paths, so that performance
//! regressions in the simulator itself are visible.
//!
//! The harness is hand-rolled (`harness = false`) because the offline build
//! cannot fetch Criterion: each benchmark runs a warmup pass, then reports
//! the mean and minimum wall time per iteration over a fixed batch count.
//! Invoke with `cargo bench -p batmem-bench`.

use batmem::{policies, Simulation};
use batmem_graph::gen;
use batmem_sim::EventQueue;
use batmem_types::policy::PcieCompression;
use batmem_types::{FrameId, PageId, SimConfig, SmId};
use batmem_uvm::{
    FaultBuffer, MemoryManager, PciePipes, PolicyRegistry, StrategyCtx, TreePrefetcher, UvmRuntime,
};
use batmem_vmem::Mmu;
use batmem_workloads::registry;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Times `f` over `iters` iterations (after one warmup) and prints a row.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f());
    let mut total = 0.0f64;
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let dt = start.elapsed().as_secs_f64();
        total += dt;
        best = best.min(dt);
    }
    let mean = total / f64::from(iters);
    println!("{name:<36} {:>12.1} us/iter (min {:>10.1} us, {iters} iters)", mean * 1e6, best * 1e6);
}

fn bench_event_queue() {
    // The warp-wake fast path: every push lands at the current cycle, so
    // all traffic stays in the same-cycle FIFO ring.
    let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
    let mut now = 0u64;
    bench("events/push_pop_same_cycle_x1024", 500, || {
        for i in 0..1024u32 {
            q.push(now, i);
        }
        let mut acc = 0u32;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        now += 1;
        q.push(now, 0);
        q.pop(); // advance the ring's cycle for the next iteration
        acc
    });

    // Mixed scheduling horizons, shaped like the engine's real event mix:
    // same-cycle wakes, short memory latencies, fault-handling windows,
    // and far-future periodic ticks that overflow the wheel.
    let mut q: EventQueue<u32> = EventQueue::with_capacity(1024);
    let mut now = 0u64;
    bench("events/mixed_horizon_x1024", 500, || {
        for i in 0..1024u32 {
            let delta = match i % 8 {
                0..=2 => 0,                   // ring: re-enqueue at `now`
                3 | 4 => u64::from(i) % 600,  // wheel L0/L1: memory latency
                5 => 20_000,                  // wheel L2: handling window
                6 => 100_000,                 // wheel L3: sample period
                _ => 20_000_000,              // overflow: beyond the horizon
            };
            q.push(now + delta, i);
        }
        let mut acc = 0u32;
        while let Some((t, v)) = q.pop() {
            now = t;
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_fault_buffer() {
    bench("fault_buffer/record_drain_1024", 200, || {
        let mut buf = FaultBuffer::new(1024);
        for i in 0..1024u64 {
            buf.record(PageId::new(i * 7 % 997), i);
        }
        buf.drain_sorted()
    });
}

fn bench_prefetcher() {
    let faulted: Vec<PageId> = (0..512u64).map(|i| PageId::new(i * 2)).collect();
    bench("prefetcher/expand_512_faults", 200, || {
        let mut pf = TreePrefetcher::new(32, 50);
        pf.expand(&faulted, |_| false, 100_000)
    });
}

fn bench_memory_manager() {
    bench("memmgr/fill_evict_4096", 100, || {
        let mut m = MemoryManager::new(Some(4096), Default::default(), 32);
        for i in 0..8192u64 {
            let frame = match m.take_frame() {
                Some(f) => f,
                None => {
                    let (v, _) = m.pick_victims(|_| false);
                    let f = m.remove(v[0], 0).expect("victim is resident");
                    m.release_frame(f);
                    m.take_frame().unwrap()
                }
            };
            m.mark_resident(PageId::new(i), frame, 0).expect("fresh page");
        }
        m.resident_count()
    });
}

fn bench_cache_index() {
    // The data cache resolves set indices with a mask when the set count
    // is a power of two and falls back to `% sets` otherwise. To price
    // the division itself (not the LRU scan), both rows use a
    // direct-mapped cache whose working set fits — every access after
    // warmup is a single-compare hit, so index arithmetic is most of the
    // per-access work. 1024 sets takes the mask path; 1000 sets (same
    // ways, line size, and 100 % hit rate) takes the modulo path.
    let addrs: Vec<batmem_types::VirtAddr> = (0..4096u64)
        .map(|i| batmem_types::VirtAddr::new((i.wrapping_mul(0x9E37_79B9) % 500) << 7))
        .collect();
    let pow2 = batmem_types::config::CacheGeometry {
        capacity_bytes: 1024 * 128,
        ways: 1,
        line_shift: 7,
        hit_latency: 4,
    };
    let odd = batmem_types::config::CacheGeometry { capacity_bytes: 1000 * 128, ..pow2 };
    let mut mask_cache = batmem_sim::DataCache::new(pow2);
    bench("cache/set_index_mask_x4096", 500, || {
        let mut hits = 0u32;
        for &a in &addrs {
            hits += u32::from(mask_cache.access(a));
        }
        hits
    });
    let mut mod_cache = batmem_sim::DataCache::new(odd);
    bench("cache/set_index_modulo_x4096", 500, || {
        let mut hits = 0u32;
        for &a in &addrs {
            hits += u32::from(mod_cache.access(a));
        }
        hits
    });
}

fn bench_mmu_translate() {
    let mut mmu = Mmu::new(&SimConfig::default());
    for i in 0..64u64 {
        mmu.install(PageId::new(i), FrameId::new(i as u32), 0).expect("fresh page");
        let _ = mmu.translate(SmId::new(0), PageId::new(i), 0);
    }
    let mut now = 0;
    bench("mmu/translate_hit_path_x1024", 500, || {
        for _ in 0..1024 {
            now += 1;
            black_box(mmu.translate(SmId::new(0), PageId::new(now % 64), now).expect("resident"));
        }
    });
}

fn bench_pcie() {
    bench("pcie/schedule_1024_pages", 200, || {
        let mut p = PciePipes::new(15_750_000_000, 17_300_000_000, PcieCompression::default());
        for _ in 0..1024 {
            black_box(p.schedule_h2d(0, 65_536));
        }
        p.h2d_free_at()
    });
}

/// Feeds 512 faults into `rt` and drives the runtime's own events to
/// completion; returns the batch count. Uses the engine's allocation-free
/// `_into` entry points with one recycled scratch buffer, like the real
/// event loop.
fn drive_512_faults(mut rt: UvmRuntime) -> u64 {
    let mut outs: Vec<batmem_uvm::UvmOutput> = Vec::new();
    let mut queue: Vec<(u64, batmem_uvm::UvmEvent)> = Vec::new();
    let push = |os: &mut Vec<batmem_uvm::UvmOutput>, q: &mut Vec<_>| {
        for o in os.drain(..) {
            if let batmem_uvm::UvmOutput::Schedule { at, event } = o {
                q.push((at, event));
            }
        }
    };
    for i in 0..512u64 {
        rt.record_fault_into(PageId::new(i * 3), 0, &mut outs).expect("fresh fault");
        push(&mut outs, &mut queue);
    }
    while !queue.is_empty() {
        queue.sort_by_key(|&(t, _)| t);
        let (t, e) = queue.remove(0);
        rt.on_event_into(e, t, &mut outs).expect("runtime accepts its own events");
        push(&mut outs, &mut queue);
    }
    rt.stats().num_batches()
}

fn bench_uvm_batch() {
    let cfg = batmem_types::config::UvmConfig { gpu_mem_pages: Some(256), ..Default::default() };
    let policy = batmem_types::policy::PolicyConfig::baseline();
    bench("uvm/batch_512_faults", 100, || {
        drive_512_faults(UvmRuntime::new(&cfg, &policy, 100_000))
    });
}

fn bench_uvm_batch_registry() {
    // The same workload through the refactored construction path: UE +
    // tree strategies resolved by registry name, so any overhead of the
    // spec-driven plumbing (or of dynamic dispatch in the pipeline) shows
    // up against the enum-built row above.
    let cfg = batmem_types::config::UvmConfig { gpu_mem_pages: Some(256), ..Default::default() };
    let policy = batmem_types::policy::PolicyConfig::ue_only();
    let reg = PolicyRegistry::builtin();
    let ctx = StrategyCtx { pages_per_region: cfg.pages_per_region() };
    bench("uvm/batch_512_faults_registry_ue", 100, || {
        let eviction = reg.build_eviction("ue", &ctx).expect("builtin spec");
        let prefetcher = reg.build_prefetcher("tree:50", &ctx).expect("builtin spec");
        let coalesce = reg.build_coalesce("off").expect("builtin spec");
        drive_512_faults(UvmRuntime::with_strategies(
            &cfg, &policy, 100_000, eviction, prefetcher, coalesce,
        ))
    });
}

fn bench_graph_gen() {
    bench("graph/rmat_scale12", 20, || gen::rmat(12, 8, 42));
}

fn bench_end_to_end() {
    let graph = Arc::new(gen::rmat(10, 8, 42));
    bench("end_to_end/bfs_ttc_scale10_to_ue", 10, || {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        Simulation::builder().policy(policies::to_ue()).memory_ratio(0.5).try_run(w).unwrap()
    });
    // The sharded engine on the same run. At this scale the prefab pool's
    // spawn/merge overhead is a real cost, so the row keeps the
    // serial-vs-sharded delta visible (the win arrives at suite scales —
    // see EXPERIMENTS.md).
    bench("end_to_end/bfs_ttc_scale10_threads8", 10, || {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        Simulation::builder()
            .policy(policies::to_ue())
            .memory_ratio(0.5)
            .threads(8)
            .try_run(w)
            .unwrap()
    });
    // Same sharded run with `bank_dispatch_min = 1`, so every deferred
    // cycle batch fans out across the 8 L2 banks instead of replaying
    // inline below the threshold. At this scale the batches are tiny and
    // the row prices pure dispatch/merge overhead — the coordination
    // floor EXPERIMENTS.md documents for single-core hosts.
    let banked = SimConfig {
        policy: policies::to_ue(),
        mem: batmem_types::config::MemConfig { bank_dispatch_min: 1, ..Default::default() },
        ..Default::default()
    };
    bench("end_to_end/bfs_ttc_scale10_banked8", 10, || {
        let w = registry::build("BFS-TTC", Arc::clone(&graph)).unwrap();
        Simulation::builder()
            .config(banked.clone())
            .memory_ratio(0.5)
            .threads(8)
            .try_run(w)
            .unwrap()
    });
}

fn main() {
    println!("{:<36} {:>25}", "benchmark", "time");
    bench_event_queue();
    bench_fault_buffer();
    bench_prefetcher();
    bench_memory_manager();
    bench_cache_index();
    bench_mmu_translate();
    bench_pcie();
    bench_uvm_batch();
    bench_uvm_batch_registry();
    bench_graph_gen();
    bench_end_to_end();
}
