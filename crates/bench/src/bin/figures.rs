//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p batmem-bench --release --bin figures -- all
//! cargo run -p batmem-bench --release --bin figures -- fig11
//! BATMEM_SCALE=16 cargo run -p batmem-bench --release --bin figures -- fig17
//! ```

use batmem_bench::figures;
use batmem_bench::runner::{suite_results, ConfigName, SuiteConfig};

const USAGE: &str = "usage: figures -- <table1|fig1|fig3|fig5|fig8|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|ctxswitch|pe|all> ...
environment: BATMEM_SCALE (default 15), BATMEM_EDGE_FACTOR (default 16)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let suite = SuiteConfig::default();
    println!(
        "suite: R-MAT scale {} (2^{} vertices, edge factor {}), oversubscription ratio {}",
        suite.scale, suite.scale, suite.edge_factor, suite.ratio
    );

    // Figures 8 and 11-16 share one set of simulation runs.
    let needs_suite = |a: &str| {
        matches!(a, "fig8" | "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "all")
    };
    let results = if args.iter().any(|a| needs_suite(a)) {
        let configs = [
            ConfigName::Baseline,
            ConfigName::BaselineCompressed,
            ConfigName::To,
            ConfigName::Ue,
            ConfigName::ToUe,
            ConfigName::Etc,
            ConfigName::IdealEviction,
            ConfigName::Unlimited,
        ];
        eprintln!("running the shared suite ({} configs x 11 workloads)...", configs.len());
        Some(suite_results(&configs, &suite))
    } else {
        None
    };

    for arg in &args {
        match arg.as_str() {
            "table1" => figures::table1(&suite),
            "fig1" => figures::fig1(&suite),
            "fig3" => figures::fig3(&suite),
            "fig5" => figures::fig5(&suite),
            "fig8" => figures::fig8(results.as_ref().unwrap()),
            "fig11" => figures::fig11(results.as_ref().unwrap()),
            "fig12" => figures::fig12(results.as_ref().unwrap()),
            "fig13" => figures::fig13(results.as_ref().unwrap()),
            "fig14" => figures::fig14(results.as_ref().unwrap()),
            "fig15" => figures::fig15(results.as_ref().unwrap()),
            "fig16" => figures::fig16(results.as_ref().unwrap()),
            "fig17" => figures::fig17(&suite),
            "fig18" => figures::fig18(&suite),
            "ctxswitch" => figures::ctxswitch(&suite),
            "pe" => figures::pe_ablation(&suite),
            "all" => {
                let r = results.as_ref().unwrap();
                figures::table1(&suite);
                figures::fig1(&suite);
                figures::fig3(&suite);
                figures::fig5(&suite);
                figures::fig8(r);
                figures::fig11(r);
                figures::fig12(r);
                figures::fig13(r);
                figures::fig14(r);
                figures::fig15(r);
                figures::fig16(r);
                figures::fig17(&suite);
                figures::fig18(&suite);
                figures::ctxswitch(&suite);
                figures::pe_ablation(&suite);
            }
            other => {
                eprintln!("unknown figure `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
