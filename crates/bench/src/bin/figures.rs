//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p batmem-bench --release --bin figures -- all
//! cargo run -p batmem-bench --release --bin figures -- fig11
//! BATMEM_SCALE=16 cargo run -p batmem-bench --release --bin figures -- fig17
//! ```

use batmem_bench::figures;
use batmem_bench::runner::{parallel_map, run_one_traced, suite_results, ConfigName, SuiteConfig};
use std::path::Path;

const USAGE: &str = "usage: figures -- <table1|fig1|fig3|fig5|fig8|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|ctxswitch|pe|sweep [outdir]|all> ...
environment: BATMEM_SCALE (default 15), BATMEM_EDGE_FACTOR (default 16)";

/// Env-var overrides are a binary concern: the library's
/// `SuiteConfig::default()` is pure (the paper's evaluation point), and
/// this entry point layers `BATMEM_SCALE` / `BATMEM_EDGE_FACTOR` on top.
fn suite_from_env() -> SuiteConfig {
    let mut suite = SuiteConfig::paper();
    if let Some(scale) = std::env::var("BATMEM_SCALE").ok().and_then(|s| s.parse().ok()) {
        suite = suite.with_scale(scale);
    }
    if let Some(ef) = std::env::var("BATMEM_EDGE_FACTOR").ok().and_then(|s| s.parse().ok()) {
        suite = suite.with_edge_factor(ef);
    }
    suite
}

/// Probe-instrumented mini-sweep with machine-readable artifacts:
/// `sweep.csv` + `sweep.json` (one MetricsSink row per run) and
/// `trace-<workload>-<config>.jsonl` (structured tracer output) in `out`.
fn sweep(suite: &SuiteConfig, out: &Path) {
    const TRACE_CAPACITY: usize = 64 * 1024;
    let graph = suite.graph();
    let jobs: Vec<(&str, ConfigName)> = ["BFS-TTC", "PR", "SSSP-TWC"]
        .into_iter()
        .flat_map(|w| [(w, ConfigName::Baseline), (w, ConfigName::ToUe)])
        .collect();
    let outcomes = parallel_map(jobs, |&(w, c)| {
        (w, c, run_one_traced(w, c, suite, &graph, TRACE_CAPACITY))
    });
    std::fs::create_dir_all(out).expect("create artifact directory");
    let mut csv = String::from(batmem::probes::MetricsRow::csv_header());
    csv.push('\n');
    let mut json_rows = Vec::new();
    for (w, c, outcome) in outcomes {
        match outcome {
            Ok((metrics, row, trace)) => {
                csv.push_str(&row.to_csv_row());
                csv.push('\n');
                json_rows.push(row.to_json());
                let slug = format!("{w}-{}", c.label()).replace(['/', '+'], "_");
                std::fs::write(out.join(format!("trace-{slug}.jsonl")), trace)
                    .expect("write trace artifact");
                println!(
                    "sweep: {w}/{} {} cycles, {} batches, trace-{slug}.jsonl",
                    c.label(),
                    metrics.cycles,
                    metrics.uvm.num_batches(),
                );
            }
            Err(e) => eprintln!("sweep: {w}/{} failed: {e}", c.label()),
        }
    }
    std::fs::write(out.join("sweep.csv"), csv).expect("write sweep.csv");
    std::fs::write(out.join("sweep.json"), format!("[{}]", json_rows.join(",")))
        .expect("write sweep.json");
    println!("sweep: artifacts in {}", out.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let suite = suite_from_env();
    println!(
        "suite: R-MAT scale {} (2^{} vertices, edge factor {}), oversubscription ratio {}",
        suite.scale, suite.scale, suite.edge_factor, suite.ratio
    );

    // Figures 8 and 11-16 share one set of simulation runs.
    let needs_suite = |a: &str| {
        matches!(a, "fig8" | "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "all")
    };
    let results = if args.iter().any(|a| needs_suite(a)) {
        let configs = [
            ConfigName::Baseline,
            ConfigName::BaselineCompressed,
            ConfigName::To,
            ConfigName::Ue,
            ConfigName::ToUe,
            ConfigName::Etc,
            ConfigName::IdealEviction,
            ConfigName::Unlimited,
        ];
        eprintln!("running the shared suite ({} configs x 11 workloads)...", configs.len());
        Some(suite_results(&configs, &suite))
    } else {
        None
    };

    let mut skip_next = false;
    for (i, arg) in args.iter().enumerate() {
        if std::mem::take(&mut skip_next) {
            continue;
        }
        match arg.as_str() {
            "sweep" => {
                let out = args.get(i + 1).cloned().unwrap_or_else(|| "artifacts".to_string());
                skip_next = args.get(i + 1).is_some();
                sweep(&suite, Path::new(&out));
            }
            "table1" => figures::table1(&suite),
            "fig1" => figures::fig1(&suite),
            "fig3" => figures::fig3(&suite),
            "fig5" => figures::fig5(&suite),
            "fig8" => figures::fig8(results.as_ref().unwrap()),
            "fig11" => figures::fig11(results.as_ref().unwrap()),
            "fig12" => figures::fig12(results.as_ref().unwrap()),
            "fig13" => figures::fig13(results.as_ref().unwrap()),
            "fig14" => figures::fig14(results.as_ref().unwrap()),
            "fig15" => figures::fig15(results.as_ref().unwrap()),
            "fig16" => figures::fig16(results.as_ref().unwrap()),
            "fig17" => figures::fig17(&suite),
            "fig18" => figures::fig18(&suite),
            "ctxswitch" => figures::ctxswitch(&suite),
            "pe" => figures::pe_ablation(&suite),
            "all" => {
                let r = results.as_ref().unwrap();
                figures::table1(&suite);
                figures::fig1(&suite);
                figures::fig3(&suite);
                figures::fig5(&suite);
                figures::fig8(r);
                figures::fig11(r);
                figures::fig12(r);
                figures::fig13(r);
                figures::fig14(r);
                figures::fig15(r);
                figures::fig16(r);
                figures::fig17(&suite);
                figures::fig18(&suite);
                figures::ctxswitch(&suite);
                figures::pe_ablation(&suite);
            }
            other => {
                eprintln!("unknown figure `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
