//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p batmem-bench --release --bin figures -- all
//! cargo run -p batmem-bench --release --bin figures -- fig11
//! BATMEM_SCALE=16 cargo run -p batmem-bench --release --bin figures -- fig17
//! ```

use batmem_bench::figures;
use batmem_bench::runner::{
    parallel_map, run_custom, run_one_traced, suite_results, ConfigName, CustomPolicy, SuiteConfig,
};
use batmem::PolicyRegistry;
use std::path::Path;

const USAGE: &str = "usage: figures -- <table1|fig1|fig3|fig5|fig8|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|ctxswitch|pe|sweep [outdir]|all> ...
       figures -- --list-policies
       figures -- [--eviction <spec>] [--prefetch <spec>] [--oversubscription <spec>] [--compression] [--workload <name>]...
custom runs: any policy flag switches to a single-run mode over the named
workloads (default BFS-TTC); specs are registry names, e.g. `--eviction
random:7 --prefetch tree:25` (see --list-policies)
environment: BATMEM_SCALE (default 15), BATMEM_EDGE_FACTOR (default 16)";

/// Env-var overrides are a binary concern: the library's
/// `SuiteConfig::default()` is pure (the paper's evaluation point), and
/// this entry point layers `BATMEM_SCALE` / `BATMEM_EDGE_FACTOR` on top.
fn suite_from_env() -> SuiteConfig {
    let mut suite = SuiteConfig::paper();
    if let Some(scale) = std::env::var("BATMEM_SCALE").ok().and_then(|s| s.parse().ok()) {
        suite = suite.with_scale(scale);
    }
    if let Some(ef) = std::env::var("BATMEM_EDGE_FACTOR").ok().and_then(|s| s.parse().ok()) {
        suite = suite.with_edge_factor(ef);
    }
    suite
}

/// Probe-instrumented mini-sweep with machine-readable artifacts:
/// `sweep.csv` + `sweep.json` (one MetricsSink row per run) and
/// `trace-<workload>-<config>.jsonl` (structured tracer output) in `out`.
fn sweep(suite: &SuiteConfig, out: &Path) {
    const TRACE_CAPACITY: usize = 64 * 1024;
    let graph = suite.graph();
    let jobs: Vec<(&str, ConfigName)> = ["BFS-TTC", "PR", "SSSP-TWC"]
        .into_iter()
        .flat_map(|w| [(w, ConfigName::Baseline), (w, ConfigName::ToUe)])
        .collect();
    let outcomes = parallel_map(jobs, |&(w, c)| {
        (w, c, run_one_traced(w, c, suite, &graph, TRACE_CAPACITY))
    });
    std::fs::create_dir_all(out).expect("create artifact directory");
    let mut csv = String::from(batmem::probes::MetricsRow::csv_header());
    csv.push('\n');
    let mut json_rows = Vec::new();
    for (w, c, outcome) in outcomes {
        match outcome {
            Ok((metrics, row, trace)) => {
                csv.push_str(&row.to_csv_row());
                csv.push('\n');
                json_rows.push(row.to_json());
                let slug = format!("{w}-{}", c.label()).replace(['/', '+'], "_");
                std::fs::write(out.join(format!("trace-{slug}.jsonl")), trace)
                    .expect("write trace artifact");
                println!(
                    "sweep: {w}/{} {} cycles, {} batches, trace-{slug}.jsonl",
                    c.label(),
                    metrics.cycles,
                    metrics.uvm.num_batches(),
                );
            }
            Err(e) => eprintln!("sweep: {w}/{} failed: {e}", c.label()),
        }
    }
    std::fs::write(out.join("sweep.csv"), csv).expect("write sweep.csv");
    std::fs::write(out.join("sweep.json"), format!("[{}]", json_rows.join(",")))
        .expect("write sweep.json");
    println!("sweep: artifacts in {}", out.display());
}

/// Prints every registered policy, grouped by axis, and the spec syntax.
fn list_policies() {
    let reg = PolicyRegistry::builtin();
    println!("registered policies (spec syntax: name[:param...]):");
    let mut axis = None;
    for d in reg.descriptors() {
        if axis != Some(d.axis) {
            axis = Some(d.axis);
            println!("  --{}", d.axis);
        }
        println!("    {:<24} {}", format!("{}{}", d.name, d.params), d.summary);
    }
}

/// Runs each workload once under the custom policy combination and prints
/// a one-line summary per run. Exits non-zero if any run fails (e.g. an
/// unknown spec name).
fn run_custom_combo(suite: &SuiteConfig, custom: &CustomPolicy, workloads: &[String]) {
    let graph = suite.graph();
    let mut failed = false;
    for w in workloads {
        match run_custom(w, custom, suite, &graph) {
            Ok(m) => println!(
                "custom: {w}/{} {} cycles, {} batches, {} evictions",
                custom.label(),
                m.cycles,
                m.uvm.num_batches(),
                m.uvm.evictions,
            ),
            Err(e) => {
                eprintln!("custom: {w}/{} failed: {e}", custom.label());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-policies") {
        list_policies();
        return;
    }
    // Custom-combo flags: any policy flag switches from figure mode to a
    // single run per requested workload.
    let mut custom = CustomPolicy::default();
    let mut custom_mode = false;
    let mut workloads: Vec<String> = Vec::new();
    let take_flag = |args: &mut Vec<String>, flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value\n{USAGE}");
            std::process::exit(2);
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    };
    if let Some(v) = take_flag(&mut args, "--eviction") {
        custom.eviction = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--prefetch") {
        custom.prefetch = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--oversubscription") {
        custom.oversubscription = v;
        custom_mode = true;
    }
    while let Some(v) = take_flag(&mut args, "--workload") {
        workloads.push(v);
        custom_mode = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--compression") {
        args.remove(i);
        custom.compression = true;
        custom_mode = true;
    }
    if args.is_empty() && !custom_mode {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let suite = suite_from_env();
    if custom_mode {
        if !args.is_empty() {
            eprintln!("cannot mix figure names with custom policy flags: {args:?}\n{USAGE}");
            std::process::exit(2);
        }
        if workloads.is_empty() {
            workloads.push("BFS-TTC".to_string());
        }
        println!(
            "suite: R-MAT scale {} (2^{} vertices, edge factor {}), oversubscription ratio {}",
            suite.scale, suite.scale, suite.edge_factor, suite.ratio
        );
        run_custom_combo(&suite, &custom, &workloads);
        return;
    }
    println!(
        "suite: R-MAT scale {} (2^{} vertices, edge factor {}), oversubscription ratio {}",
        suite.scale, suite.scale, suite.edge_factor, suite.ratio
    );

    // Figures 8 and 11-16 share one set of simulation runs.
    let needs_suite = |a: &str| {
        matches!(a, "fig8" | "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "all")
    };
    let results = if args.iter().any(|a| needs_suite(a)) {
        let configs = [
            ConfigName::Baseline,
            ConfigName::BaselineCompressed,
            ConfigName::To,
            ConfigName::Ue,
            ConfigName::ToUe,
            ConfigName::Etc,
            ConfigName::IdealEviction,
            ConfigName::Unlimited,
        ];
        eprintln!("running the shared suite ({} configs x 11 workloads)...", configs.len());
        Some(suite_results(&configs, &suite))
    } else {
        None
    };

    let mut skip_next = false;
    for (i, arg) in args.iter().enumerate() {
        if std::mem::take(&mut skip_next) {
            continue;
        }
        match arg.as_str() {
            "sweep" => {
                let out = args.get(i + 1).cloned().unwrap_or_else(|| "artifacts".to_string());
                skip_next = args.get(i + 1).is_some();
                sweep(&suite, Path::new(&out));
            }
            "table1" => figures::table1(&suite),
            "fig1" => figures::fig1(&suite),
            "fig3" => figures::fig3(&suite),
            "fig5" => figures::fig5(&suite),
            "fig8" => figures::fig8(results.as_ref().unwrap()),
            "fig11" => figures::fig11(results.as_ref().unwrap()),
            "fig12" => figures::fig12(results.as_ref().unwrap()),
            "fig13" => figures::fig13(results.as_ref().unwrap()),
            "fig14" => figures::fig14(results.as_ref().unwrap()),
            "fig15" => figures::fig15(results.as_ref().unwrap()),
            "fig16" => figures::fig16(results.as_ref().unwrap()),
            "fig17" => figures::fig17(&suite),
            "fig18" => figures::fig18(&suite),
            "ctxswitch" => figures::ctxswitch(&suite),
            "pe" => figures::pe_ablation(&suite),
            "all" => {
                let r = results.as_ref().unwrap();
                figures::table1(&suite);
                figures::fig1(&suite);
                figures::fig3(&suite);
                figures::fig5(&suite);
                figures::fig8(r);
                figures::fig11(r);
                figures::fig12(r);
                figures::fig13(r);
                figures::fig14(r);
                figures::fig15(r);
                figures::fig16(r);
                figures::fig17(&suite);
                figures::fig18(&suite);
                figures::ctxswitch(&suite);
                figures::pe_ablation(&suite);
            }
            other => {
                eprintln!("unknown figure `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
