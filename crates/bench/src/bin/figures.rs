//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p batmem-bench --release --bin figures -- all
//! cargo run -p batmem-bench --release --bin figures -- fig11
//! BATMEM_SCALE=16 cargo run -p batmem-bench --release --bin figures -- fig17
//! ```

use batmem_bench::runner::{
    run_custom_injected, suite_results, ConfigName, CustomPolicy, SuiteConfig,
};
use batmem_bench::sweep::{self, ArtifactStore, CellPolicy, PoolConfig, SweepPlan};
use batmem_bench::figures;
use batmem::PolicyRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "usage: figures -- [--threads N] [--l2-banks B] [--bank-min M] <table1|fig1|fig3|fig5|fig8|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|ctxswitch|pe|all> ...
       figures -- --list-policies
       figures -- [--threads N] [--eviction <spec>] [--prefetch <spec>] [--oversubscription <spec>] [--coalesce <spec>]
                  [--fault-servicing <spec>] [--page-size <kb>] [--compression] [--inject <spec>]
                  [--workload <name>]...
       figures -- sweep [outdir] [--workers N] [--threads N] [--max-retries K] [--cell-timeout SECS] [--resume]
                  [--inject <spec>] [--coalesce <spec>] [--fault-servicing <spec>] [--workloads A,B]
                  [--configs BASELINE,TO+UE] [--scales 8,10] [--ratios 0.5] [--seeds 42]
custom runs: any policy flag switches to a single-run mode over the named
workloads (default BFS-TTC); specs are registry names, e.g. `--eviction
random:7 --prefetch tree:25` (see --list-policies); `--coalesce` takes
off|greedy[:pct]|splinter:on-evict and prints a TLB summary when enabled;
`--fault-servicing` takes cpu|gpu-driven[:occupancy] and prints a handler
summary when non-default; `--oversubscription adaptive[:window]` runs the
probe-driven closed-loop handler; `--page-size` takes a power-of-two KB
base page (default 64); `--inject` takes off|noisy[:seed]|lost[:seed[:every]]
sweep mode: fault-tolerant parallel sweep into a resumable artifact store
(default outdir `artifacts`); ctrl-C drains gracefully, `--resume` skips
completed cells
threads: `--threads N` shards each engine across N threads (default 1, the
serial reference); results are bit-identical to serial. In sweep mode the
pool clamps workers x threads to the available cores. `--l2-banks B` sets
the L2 bank count the data path shards by (default 8, power of two dividing
the set counts) and `--bank-min M` the per-cycle access count below which a
batch replays inline (default 256); both affect scheduling only, never
results.
environment: BATMEM_SCALE (default 15), BATMEM_EDGE_FACTOR (default 16)";

/// Sweep-mode cancel flag, set by the SIGINT handler for a graceful drain.
static CANCEL: AtomicBool = AtomicBool::new(false);

/// Installs a SIGINT handler that only sets [`CANCEL`] — the pool notices,
/// finishes in-flight cells, abandons the queue, and flushes the store.
#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" fn on_sigint(_sig: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        CANCEL.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal` is the C standard library's handler registration;
    // the handler is async-signal-safe (one atomic store, no allocation,
    // no locks).
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Env-var overrides are a binary concern: the library's
/// `SuiteConfig::default()` is pure (the paper's evaluation point), and
/// this entry point layers `BATMEM_SCALE` / `BATMEM_EDGE_FACTOR` on top.
fn suite_from_env() -> SuiteConfig {
    let mut suite = SuiteConfig::paper();
    if let Some(scale) = std::env::var("BATMEM_SCALE").ok().and_then(|s| s.parse().ok()) {
        suite = suite.with_scale(scale);
    }
    if let Some(ef) = std::env::var("BATMEM_EDGE_FACTOR").ok().and_then(|s| s.parse().ok()) {
        suite = suite.with_edge_factor(ef);
    }
    suite
}

/// Removes `flag value` from `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value\n{USAGE}");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Removes a bare `flag` from `args`, returning whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Parses a comma-separated flag value into `T`s, exiting with usage on a
/// malformed element.
fn parse_csv_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("{flag}: cannot parse `{s}`\n{USAGE}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// The sweep-service entry point: `figures -- sweep [outdir] [flags]`.
///
/// Builds a [`SweepPlan`] from the flags (defaulting to the historical
/// mini-sweep at the env-configured scale), runs it through the
/// fault-tolerant pool, and exits non-zero when cells were quarantined
/// (1) or the sweep was cancelled (130).
fn sweep_main(mut args: Vec<String>, suite: &SuiteConfig) -> ! {
    fn parse_one<T: std::str::FromStr>(flag: &str, value: &str) -> T {
        value.trim().parse().unwrap_or_else(|_| {
            eprintln!("{flag}: cannot parse `{value}`\n{USAGE}");
            std::process::exit(2);
        })
    }
    let mut pool = PoolConfig { progress_every: Some(Duration::from_secs(2)), ..PoolConfig::default() };
    if let Some(v) = take_flag(&mut args, "--workers") {
        pool.workers = parse_one::<usize>("--workers", &v).max(1);
    }
    if let Some(v) = take_flag(&mut args, "--max-retries") {
        pool.max_retries = parse_one("--max-retries", &v);
    }
    if let Some(v) = take_flag(&mut args, "--cell-timeout") {
        let secs: f64 = parse_one("--cell-timeout", &v);
        if secs <= 0.0 {
            eprintln!("--cell-timeout: must be positive seconds\n{USAGE}");
            std::process::exit(2);
        }
        pool.cell_timeout = Some(Duration::from_secs_f64(secs));
    }
    let resume = take_switch(&mut args, "--resume");

    // Plan axes: default is the historical mini-sweep at the suite's
    // (env-overridable) evaluation point. The engine-threads knob arrives
    // already parsed on the suite (`--threads` is shared with figure
    // mode); the pool clamps workers x threads to the available cores.
    let mut plan = SweepPlan {
        scales: vec![suite.scale],
        edge_factors: vec![suite.edge_factor],
        ratios: vec![suite.ratio],
        seeds: vec![suite.seed],
        threads: suite.threads.max(1),
        ..SweepPlan::default()
    };
    if let Some(v) = take_flag(&mut args, "--workloads") {
        plan.workloads = parse_csv_list("--workloads", &v);
    }
    if let Some(v) = take_flag(&mut args, "--configs") {
        plan.policies = v
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| {
                CellPolicy::Preset(ConfigName::from_label(s.trim()).unwrap_or_else(|| {
                    let known: Vec<&str> =
                        ConfigName::all().iter().map(|c| c.label()).collect();
                    eprintln!("--configs: unknown config `{s}` (known: {})", known.join(", "));
                    std::process::exit(2);
                }))
            })
            .collect();
    }
    if let Some(v) = take_flag(&mut args, "--scales") {
        plan.scales = parse_csv_list("--scales", &v);
    }
    if let Some(v) = take_flag(&mut args, "--ratios") {
        plan.ratios = parse_csv_list("--ratios", &v);
    }
    if let Some(v) = take_flag(&mut args, "--seeds") {
        plan.seeds = parse_csv_list("--seeds", &v);
    }
    if let Some(v) = take_flag(&mut args, "--inject") {
        plan.inject = Some(v);
    }
    if let Some(v) = take_flag(&mut args, "--coalesce") {
        plan.coalesce = Some(v);
    }
    if let Some(v) = take_flag(&mut args, "--fault-servicing") {
        plan.fault_servicing = Some(v);
    }
    if args.len() > 1 {
        eprintln!("sweep: unexpected arguments {args:?}\n{USAGE}");
        std::process::exit(2);
    }
    let outdir = args.pop().unwrap_or_else(|| "artifacts".to_string());

    let cells = match plan.cells() {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("sweep: invalid plan: {e}");
            std::process::exit(2);
        }
    };
    // Refuse to silently mix plans: an existing store needs an explicit
    // `--resume` (or a fresh outdir).
    let has_prior_cells = std::fs::read_dir(std::path::Path::new(&outdir).join("cells"))
        .map(|d| d.count() > 0)
        .unwrap_or(false);
    if has_prior_cells && !resume {
        eprintln!(
            "sweep: `{outdir}` already holds cell records; pass --resume to \
             continue that sweep or point at a fresh directory"
        );
        std::process::exit(2);
    }
    let store = match ArtifactStore::open(&outdir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("sweep: cannot open artifact store `{outdir}`: {e}");
            std::process::exit(1);
        }
    };

    install_sigint_handler();
    eprintln!(
        "sweep: {} cells, {} workers, {} retries{}{} -> {}",
        cells.len(),
        pool.workers,
        pool.max_retries,
        pool.cell_timeout
            .map(|t| format!(", {:.0}s cell deadline", t.as_secs_f64()))
            .unwrap_or_default(),
        if resume { ", resuming" } else { "" },
        outdir,
    );
    let runner = sweep::cell_runner(suite.sim.clone());
    let report = match sweep::run_sweep(&cells, &store, &pool, &CANCEL, runner) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sweep: store failure: {e}");
            std::process::exit(1);
        }
    };

    let failures = report.failures();
    eprintln!(
        "sweep: {} completed, {} quarantined, {} resumed, {} abandoned{}{}",
        report.completed(),
        failures.len(),
        report.resumed.len(),
        report.abandoned,
        if report.discarded > 0 {
            format!(", {} half-written records discarded", report.discarded)
        } else {
            String::new()
        },
        if report.cancelled { " (cancelled: resume with --resume)" } else { "" },
    );
    for rec in &failures {
        eprintln!("sweep: quarantined {}", rec.report_line());
    }
    println!("sweep: artifacts in {outdir}");
    if report.cancelled {
        std::process::exit(130);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Prints every registered policy, grouped by axis, and the spec syntax.
fn list_policies() {
    let reg = PolicyRegistry::builtin();
    println!("registered policies (spec syntax: name[:param...]):");
    let mut axis = None;
    for d in reg.descriptors() {
        if axis != Some(d.axis) {
            axis = Some(d.axis);
            println!("  --{}", d.axis);
        }
        println!("    {:<24} {}", format!("{}{}", d.name, d.params), d.summary);
    }
}

/// Runs each workload once under the custom policy combination (plus an
/// optional fault-injection spec) and prints a one-line summary per run.
/// Exits non-zero if any run fails (e.g. an unknown spec name).
fn run_custom_combo(
    suite: &SuiteConfig,
    custom: &CustomPolicy,
    inject: Option<&str>,
    workloads: &[String],
) {
    let graph = suite.graph();
    let mut failed = false;
    for w in workloads {
        match run_custom_injected(w, custom, inject, suite, &graph) {
            Ok(m) => {
                println!(
                    "custom: {w}/{} {} cycles, {} batches, {} evictions",
                    custom.label(),
                    m.cycles,
                    m.uvm.num_batches(),
                    m.uvm.evictions,
                );
                // Coalescing runs get a translation summary; the line is
                // gated so plain runs keep their historical output.
                if custom.coalesce != "off" {
                    println!(
                        "custom: {w}/{} tlb: {} large hits, {} L1 hits, {} walks \
                         ({} large), {} coalesces, {} splinters",
                        custom.label(),
                        m.mmu.large_hits(),
                        m.mmu.l1.hits,
                        m.mmu.walks,
                        m.mmu.large_walks,
                        m.mmu.coalesces,
                        m.mmu.splinters,
                    );
                }
                // Same gating for the fault-servicing summary: only a
                // non-default model prints (and only it charges the
                // handler-occupancy counters).
                if custom.fault_servicing != "cpu" {
                    println!(
                        "custom: {w}/{} servicing: {} faults handled on-GPU, \
                         {} handler-occupancy cycles",
                        custom.label(),
                        m.uvm.gpu_serviced_faults,
                        m.uvm.handler_occupancy_cycles,
                    );
                }
            }
            Err(e) => {
                eprintln!("custom: {w}/{} failed: {e}", custom.label());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-policies") {
        list_policies();
        return;
    }
    // `--threads` is shared by every mode (figures, custom combos, sweep),
    // so it is extracted before the sweep branch below.
    let mut suite = suite_from_env();
    if let Some(v) = take_flag(&mut args, "--threads") {
        let n: usize = v.parse().unwrap_or_else(|_| {
            eprintln!("--threads: cannot parse `{v}`\n{USAGE}");
            std::process::exit(2);
        });
        if n == 0 {
            eprintln!("--threads: must be at least 1\n{USAGE}");
            std::process::exit(2);
        }
        suite = suite.with_threads(n);
    }
    // `--l2-banks` / `--bank-min` tune the bank-parallel data path and are
    // likewise shared by every mode. They change scheduling only, never
    // results (the merge barrier keeps output bit-identical), so they are
    // safe to combine with any figure or sweep.
    if let Some(v) = take_flag(&mut args, "--l2-banks") {
        let n: u32 = v.parse().unwrap_or_else(|_| {
            eprintln!("--l2-banks: cannot parse `{v}`\n{USAGE}");
            std::process::exit(2);
        });
        suite.sim.mem.l2_banks = n;
    }
    if let Some(v) = take_flag(&mut args, "--bank-min") {
        let n: u32 = v.parse().unwrap_or_else(|_| {
            eprintln!("--bank-min: cannot parse `{v}`\n{USAGE}");
            std::process::exit(2);
        });
        suite.sim.mem.bank_dispatch_min = n;
    }
    if let Err(e) = suite.sim.validate() {
        eprintln!("invalid configuration: {e}\n{USAGE}");
        std::process::exit(2);
    }
    // The sweep service has its own flag grammar — branch before the
    // custom-combo extraction below can misread `--workers` etc.
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(args.split_off(1), &suite);
    }
    // Custom-combo flags: any policy flag switches from figure mode to a
    // single run per requested workload.
    let mut custom = CustomPolicy::default();
    let mut custom_mode = false;
    let mut inject: Option<String> = None;
    let mut workloads: Vec<String> = Vec::new();
    if let Some(v) = take_flag(&mut args, "--eviction") {
        custom.eviction = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--prefetch") {
        custom.prefetch = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--oversubscription") {
        custom.oversubscription = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--coalesce") {
        custom.coalesce = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--fault-servicing") {
        custom.fault_servicing = v;
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--page-size") {
        custom.page_size_kb = Some(v.parse().unwrap_or_else(|_| {
            eprintln!("--page-size: cannot parse `{v}` as KB\n{USAGE}");
            std::process::exit(2);
        }));
        custom_mode = true;
    }
    if let Some(v) = take_flag(&mut args, "--inject") {
        inject = Some(v);
        custom_mode = true;
    }
    while let Some(v) = take_flag(&mut args, "--workload") {
        workloads.push(v);
        custom_mode = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--compression") {
        args.remove(i);
        custom.compression = true;
        custom_mode = true;
    }
    if args.is_empty() && !custom_mode {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if custom_mode {
        if !args.is_empty() {
            eprintln!("cannot mix figure names with custom policy flags: {args:?}\n{USAGE}");
            std::process::exit(2);
        }
        if workloads.is_empty() {
            workloads.push("BFS-TTC".to_string());
        }
        println!(
            "suite: R-MAT scale {} (2^{} vertices, edge factor {}), oversubscription ratio {}",
            suite.scale, suite.scale, suite.edge_factor, suite.ratio
        );
        run_custom_combo(&suite, &custom, inject.as_deref(), &workloads);
        return;
    }
    println!(
        "suite: R-MAT scale {} (2^{} vertices, edge factor {}), oversubscription ratio {}",
        suite.scale, suite.scale, suite.edge_factor, suite.ratio
    );

    // Figures 8 and 11-16 share one set of simulation runs.
    let needs_suite = |a: &str| {
        matches!(a, "fig8" | "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "all")
    };
    let results = if args.iter().any(|a| needs_suite(a)) {
        let configs = [
            ConfigName::Baseline,
            ConfigName::BaselineCompressed,
            ConfigName::To,
            ConfigName::Ue,
            ConfigName::ToUe,
            ConfigName::Etc,
            ConfigName::IdealEviction,
            ConfigName::Unlimited,
        ];
        eprintln!("running the shared suite ({} configs x 11 workloads)...", configs.len());
        Some(suite_results(&configs, &suite))
    } else {
        None
    };

    for arg in &args {
        match arg.as_str() {
            "sweep" => {
                eprintln!("`sweep` must be the first argument\n{USAGE}");
                std::process::exit(2);
            }
            "table1" => figures::table1(&suite),
            "fig1" => figures::fig1(&suite),
            "fig3" => figures::fig3(&suite),
            "fig5" => figures::fig5(&suite),
            "fig8" => figures::fig8(results.as_ref().unwrap()),
            "fig11" => figures::fig11(results.as_ref().unwrap()),
            "fig12" => figures::fig12(results.as_ref().unwrap()),
            "fig13" => figures::fig13(results.as_ref().unwrap()),
            "fig14" => figures::fig14(results.as_ref().unwrap()),
            "fig15" => figures::fig15(results.as_ref().unwrap()),
            "fig16" => figures::fig16(results.as_ref().unwrap()),
            "fig17" => figures::fig17(&suite),
            "fig18" => figures::fig18(&suite),
            "ctxswitch" => figures::ctxswitch(&suite),
            "pe" => figures::pe_ablation(&suite),
            "all" => {
                let r = results.as_ref().unwrap();
                figures::table1(&suite);
                figures::fig1(&suite);
                figures::fig3(&suite);
                figures::fig5(&suite);
                figures::fig8(r);
                figures::fig11(r);
                figures::fig12(r);
                figures::fig13(r);
                figures::fig14(r);
                figures::fig15(r);
                figures::fig16(r);
                figures::fig17(&suite);
                figures::fig18(&suite);
                figures::ctxswitch(&suite);
                figures::pe_ablation(&suite);
            }
            other => {
                eprintln!("unknown figure `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
