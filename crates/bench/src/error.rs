//! Error type for the figure harness.
//!
//! The harness sweeps dozens of `(workload, config)` pairs; a single bad run
//! must surface as a skipped row, not abort the whole sweep. `anyhow` is the
//! natural fit but cannot be fetched in this offline build, so [`BenchError`]
//! is a minimal context-carrying stand-in.

use batmem_types::SimError;
use std::error::Error;
use std::fmt;

/// A failed benchmark run: what was attempted and why it failed.
#[derive(Debug, Clone)]
pub struct BenchError {
    context: String,
}

impl BenchError {
    /// Creates an error from a plain message.
    pub fn msg(context: impl Into<String>) -> Self {
        Self { context: context.into() }
    }

    /// Wraps an underlying error with what the harness was doing.
    pub fn context(doing: &str, err: &dyn fmt::Display) -> Self {
        Self { context: format!("{doing}: {err}") }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.context)
    }
}

impl Error for BenchError {}

impl From<SimError> for BenchError {
    fn from(e: SimError) -> Self {
        Self { context: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_context() {
        let e = BenchError::msg("unknown workload XYZ");
        assert!(e.to_string().contains("XYZ"));
    }

    #[test]
    fn converts_from_sim_error() {
        let e: BenchError = SimError::invalid_config("gpu.num_sms", "zero").into();
        assert!(e.to_string().contains("num_sms"));
    }
}
