//! Per-figure printers: each regenerates the rows/series of one table or
//! figure from the paper's evaluation.
//!
//! Every printer tolerates failed runs: a `(workload, config)` pair that
//! returns an error is reported and skipped, and geometric means are taken
//! over the rows that completed, so one bad run never aborts a sweep.

use crate::error::BenchError;
use crate::runner::{parallel_map, run_one, ConfigName, SuiteConfig, SuiteResults};
use batmem::experiments::working_set_curve;
use batmem::{policies, SimConfig, Simulation};
use batmem_types::policy::{SwitchTrigger, ToConfig};
use batmem_types::time::us;
use batmem_workloads::registry;
use batmem_workloads::regular::TiledRegular;

fn header(id: &str, caption: &str) {
    println!();
    println!("==== {id}: {caption} ====");
}

fn skipped(id: &str, what: &str, err: &BenchError) {
    println!("{id}: skipping {what}: {err}");
}

/// Table 1: the simulated system configuration.
pub fn table1(suite: &SuiteConfig) {
    header("Table 1", "Configuration of the simulated system");
    println!("{}", suite.sim.table1());
}

/// Fig. 1: working-set size vs. active GPU core count, regular (top) vs.
/// irregular (bottom) workloads.
pub fn fig1(suite: &SuiteConfig) {
    header("Fig. 1", "Working set vs. number of active GPU cores (SMs)");
    let gpu = suite.sim.gpu.clone();

    println!("-- regular workloads (working set shrinks with core throttling) --");
    print!("{:<10}", "workload");
    for n in 1..=16 {
        print!(" {n:>5}");
    }
    println!();
    let regulars = TiledRegular::suite(1 << (suite.scale + 4));
    let reg_curves = parallel_map(regulars, |w| {
        (batmem_sim::ops::Workload::name(w), working_set_curve(w, 16, &gpu))
    });
    for (name, curve) in &reg_curves {
        print!("{name:<10}");
        for v in curve {
            print!(" {:>4.0}%", v * 100.0);
        }
        println!();
    }

    println!("-- irregular workloads (working set shared across cores) --");
    let jobs: Vec<&str> = registry::irregular_names().to_vec();
    let irr_curves = parallel_map(jobs, |name| {
        registry::build(name, suite.graph_for(name))
            .map(|w| (*name, working_set_curve(w.as_ref(), 16, &gpu)))
    });
    for entry in &irr_curves {
        let Some((name, curve)) = entry else { continue };
        print!("{name:<10}");
        for v in curve {
            print!(" {:>4.0}%", v * 100.0);
        }
        println!();
    }
}

/// Fig. 3: per-page fault handling time vs. batch size for BFS.
pub fn fig3(suite: &SuiteConfig) {
    header("Fig. 3", "Per-page fault handling time (us) vs. batch size (BFS)");
    let graph = suite.graph();
    let m = match run_one("BFS-TTC", ConfigName::Baseline, suite, &graph) {
        Ok(m) => m,
        Err(e) => return skipped("Fig. 3", "BFS-TTC/BASELINE", &e),
    };
    // Bucket batches by size and report the mean per-page time per bucket.
    let bucket_pages = 4u32;
    let mut sums: Vec<(f64, u64)> = Vec::new();
    for b in &m.uvm.batches {
        let Some(t) = b.per_page_time() else { continue };
        let idx = (b.pages() / bucket_pages) as usize;
        if sums.len() <= idx {
            sums.resize(idx + 1, (0.0, 0));
        }
        sums[idx].0 += t;
        sums[idx].1 += 1;
    }
    println!("{:>14} {:>10} {:>22}", "batch size", "batches", "per-page time (us)");
    for (i, (sum, n)) in sums.iter().enumerate() {
        if *n == 0 {
            continue;
        }
        let pages = (i as u32 + 1) * bucket_pages;
        let kb = u64::from(pages) * 64;
        println!("{:>11} KB {:>10} {:>22.1}", kb, n, sum / *n as f64 / 1_000.0);
    }
    println!("(per-page cost amortizes as batches grow; compare the paper's hyperbola)");
}

/// Fig. 5: performance degradation from +1 block/SM with context switching
/// on a traditional GPU (no demand paging).
pub fn fig5(suite: &SuiteConfig) {
    header(
        "Fig. 5",
        "Relative performance when an extra block per SM requires context switching (memory fits)",
    );
    let jobs: Vec<&str> = registry::irregular_names().to_vec();
    let rows = parallel_map(jobs, |name| -> Result<_, BenchError> {
        let build = |n: &str| {
            registry::build(n, suite.graph_for(n))
                .ok_or_else(|| BenchError::msg(format!("unknown workload `{n}`")))
        };
        let base = Simulation::builder()
            .config(suite.sim.clone())
            .policy(policies::baseline())
            .memory_ratio(1.0)
            .try_run(build(name)?)?;
        let mut policy = policies::to_only();
        policy.oversubscription =
            ToConfig { trigger: SwitchTrigger::AnyStall, ..ToConfig::enabled() };
        let switched = Simulation::builder()
            .config(suite.sim.clone())
            .policy(policy)
            .memory_ratio(1.0)
            .try_run(build(name)?)?;
        Ok((*name, base.cycles as f64 / switched.cycles as f64, switched.ctx_switches))
    });
    println!("{:<10} {:>14} {:>12}", "workload", "rel. perf", "ctx switches");
    let mut logs = 0.0;
    let mut n = 0usize;
    for row in &rows {
        match row {
            Ok((name, rel, sw)) => {
                println!("{name:<10} {rel:>14.2} {sw:>12}");
                logs += rel.ln();
                n += 1;
            }
            Err(e) => skipped("Fig. 5", "row", e),
        }
    }
    if n > 0 {
        println!("{:<10} {:>14.2}", "GEOMEAN", (logs / n as f64).exp());
    }
    println!("(the paper reports an average 0.51x: switching hurts when memory fits)");
}

/// Fig. 8: 50% oversubscription vs. unlimited memory, and the ideal-eviction
/// limit.
pub fn fig8(results: &SuiteResults) {
    header("Fig. 8", "Performance at 50% memory vs. unlimited, with ideal eviction");
    results.report_failures();
    let ws =
        results.complete(&[ConfigName::Unlimited, ConfigName::Baseline, ConfigName::IdealEviction]);
    println!("{:<10} {:>10} {:>14}", "workload", "BASELINE", "IDEAL-EVICT");
    for name in &ws {
        let unlimited = results.get(name, ConfigName::Unlimited).cycles as f64;
        let base = unlimited / results.get(name, ConfigName::Baseline).cycles as f64;
        let ideal = unlimited / results.get(name, ConfigName::IdealEviction).cycles as f64;
        println!("{name:<10} {base:>10.2} {ideal:>14.2}");
    }
    let gb = results.geomean_over(&ws, |w| {
        results.get(w, ConfigName::Unlimited).cycles as f64
            / results.get(w, ConfigName::Baseline).cycles as f64
    });
    let gi = results.geomean_over(&ws, |w| {
        results.get(w, ConfigName::Unlimited).cycles as f64
            / results.get(w, ConfigName::IdealEviction).cycles as f64
    });
    println!("{:<10} {gb:>10.2} {gi:>14.2}", "GEOMEAN");
}

/// Fig. 11: the headline speedup comparison.
pub fn fig11(results: &SuiteResults) {
    header("Fig. 11", "Speedup over BASELINE (with state-of-the-art prefetching)");
    results.report_failures();
    let configs = [
        ConfigName::Baseline,
        ConfigName::BaselineCompressed,
        ConfigName::To,
        ConfigName::Ue,
        ConfigName::ToUe,
        ConfigName::Etc,
    ];
    let ws = results.complete(&configs);
    print!("{:<10}", "workload");
    for c in configs {
        print!(" {:>14}", c.label());
    }
    println!();
    for name in &ws {
        let base = results.get(name, ConfigName::Baseline).cycles as f64;
        print!("{name:<10}");
        for c in configs {
            print!(" {:>14.2}", base / results.get(name, c).cycles as f64);
        }
        println!();
    }
    print!("{:<10}", "GEOMEAN");
    for c in configs {
        let g = results.geomean_over(&ws, |w| {
            results.get(w, ConfigName::Baseline).cycles as f64
                / results.get(w, c).cycles as f64
        });
        print!(" {g:>14.2}");
    }
    println!();
}

/// Fig. 12: total number of batches, baseline vs. TO.
pub fn fig12(results: &SuiteResults) {
    header("Fig. 12", "Total number of batches (relative to BASELINE)");
    let ws = results.complete(&[ConfigName::Baseline, ConfigName::To]);
    println!("{:<10} {:>10} {:>10} {:>10}", "workload", "BASELINE", "TO", "relative");
    for name in &ws {
        let b = results.get(name, ConfigName::Baseline).uvm.num_batches();
        let t = results.get(name, ConfigName::To).uvm.num_batches();
        println!("{name:<10} {b:>10} {t:>10} {:>9.0}%", t as f64 / b as f64 * 100.0);
    }
    let g = results.geomean_over(&ws, |w| {
        results.get(w, ConfigName::To).uvm.num_batches() as f64
            / results.get(w, ConfigName::Baseline).uvm.num_batches() as f64
    });
    println!("{:<10} {:>32.0}%", "GEOMEAN", g * 100.0);
}

/// Fig. 13: average batch sizes, baseline vs. TO.
pub fn fig13(results: &SuiteResults) {
    header("Fig. 13", "Average batch size (relative to BASELINE)");
    let ws = results.complete(&[ConfigName::Baseline, ConfigName::To]);
    println!("{:<10} {:>12} {:>12} {:>10}", "workload", "BASE pages", "TO pages", "relative");
    for name in &ws {
        let b = results.get(name, ConfigName::Baseline).uvm.avg_batch_pages();
        let t = results.get(name, ConfigName::To).uvm.avg_batch_pages();
        println!("{name:<10} {b:>12.1} {t:>12.1} {:>9.0}%", t / b * 100.0);
    }
    let g = results.geomean_over(&ws, |w| {
        results.get(w, ConfigName::To).uvm.avg_batch_pages()
            / results.get(w, ConfigName::Baseline).uvm.avg_batch_pages()
    });
    println!("{:<10} {:>36.0}%", "GEOMEAN", g * 100.0);
}

/// Fig. 14: average batch processing time: baseline, TO, TO+UE.
pub fn fig14(results: &SuiteResults) {
    header("Fig. 14", "Average batch processing time, normalized to BASELINE");
    let ws = results.complete(&[ConfigName::Baseline, ConfigName::To, ConfigName::ToUe]);
    println!("{:<10} {:>10} {:>10} {:>10}", "workload", "BASELINE", "TO", "TO+UE");
    for name in &ws {
        let b = results.get(name, ConfigName::Baseline).uvm.avg_processing_time();
        let t = results.get(name, ConfigName::To).uvm.avg_processing_time();
        let tu = results.get(name, ConfigName::ToUe).uvm.avg_processing_time();
        println!("{name:<10} {:>10.2} {:>10.2} {:>10.2}", 1.0, t / b, tu / b);
    }
    let gt = results.geomean_over(&ws, |w| {
        results.get(w, ConfigName::To).uvm.avg_processing_time()
            / results.get(w, ConfigName::Baseline).uvm.avg_processing_time()
    });
    let gtu = results.geomean_over(&ws, |w| {
        results.get(w, ConfigName::ToUe).uvm.avg_processing_time()
            / results.get(w, ConfigName::Baseline).uvm.avg_processing_time()
    });
    println!("{:<10} {:>10.2} {gt:>10.2} {gtu:>10.2}", "GEOMEAN", 1.0);
}

/// Fig. 15: premature eviction comparison, baseline vs. TO.
pub fn fig15(results: &SuiteResults) {
    header("Fig. 15", "Premature eviction rate");
    let ws = results.complete(&[ConfigName::Baseline, ConfigName::To]);
    println!("{:<10} {:>10} {:>10}", "workload", "BASELINE", "TO");
    for name in &ws {
        let b = results.get(name, ConfigName::Baseline).uvm.premature_rate();
        let t = results.get(name, ConfigName::To).uvm.premature_rate();
        println!("{name:<10} {:>9.1}% {:>9.1}%", b * 100.0, t * 100.0);
    }
}

/// Fig. 16: batch-size distribution (baseline vs. TO) and per-size
/// efficiency.
pub fn fig16(results: &SuiteResults) {
    header("Fig. 16", "Batch size distribution and efficiency");
    let ws = results.complete(&[ConfigName::Baseline, ConfigName::To]);
    let bucket = 1024 * 1024; // 1 MB buckets (the paper uses 5 MB at full scale)
    let mut base_hist: Vec<u64> = Vec::new();
    let mut to_hist: Vec<u64> = Vec::new();
    let mut eff: Vec<(f64, u64)> = Vec::new();
    for name in &ws {
        for (hist, cfg) in
            [(&mut base_hist, ConfigName::Baseline), (&mut to_hist, ConfigName::To)]
        {
            for b in &results.get(name, cfg).uvm.batches {
                let idx = (b.migrated_bytes / bucket) as usize;
                if hist.len() <= idx {
                    hist.resize(idx + 1, 0);
                }
                hist[idx] += 1;
                if eff.len() <= idx {
                    eff.resize(idx + 1, (0.0, 0));
                }
                if let Some(t) = b.per_page_time() {
                    eff[idx].0 += t;
                    eff[idx].1 += 1;
                }
            }
        }
    }
    let base_total: u64 = base_hist.iter().sum::<u64>().max(1);
    let to_total: u64 = to_hist.iter().sum::<u64>().max(1);
    let best_eff = eff
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(s, n)| *n as f64 / s) // batches per us: higher = better
        .fold(f64::MIN, f64::max);
    println!("{:>10} {:>10} {:>10} {:>12}", "size <=", "BASELINE", "TO", "efficiency");
    for i in 0..base_hist.len().max(to_hist.len()) {
        let b = base_hist.get(i).copied().unwrap_or(0);
        let t = to_hist.get(i).copied().unwrap_or(0);
        let e = eff
            .get(i)
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| (*n as f64 / s) / best_eff * 100.0);
        println!(
            "{:>8}MB {:>9.1}% {:>9.1}% {:>11}",
            i + 1,
            b as f64 / base_total as f64 * 100.0,
            t as f64 / to_total as f64 * 100.0,
            e.map_or("-".to_string(), |v| format!("{v:.0}%")),
        );
    }
    println!("(TO shifts mass toward bigger batches; bigger batches are more efficient)");
}

/// Fig. 17: sensitivity to the memory oversubscription ratio.
pub fn fig17(suite: &SuiteConfig) {
    header("Fig. 17", "Sensitivity to oversubscription ratio (geomean over sweep subset)");
    let graph = suite.graph();
    let ratios = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    // The sweep uses the traversal-dominated subset; the coloring pair's
    // extreme thrash regime makes low ratios prohibitively slow to
    // simulate without changing the trend.
    let names: &[&str] = &["BC", "BFS-DWC", "BFS-TTC", "BFS-TWC", "SSSP-TWC", "PR"];
    let mut jobs = Vec::new();
    for &r in &ratios {
        for &w in names {
            for c in [ConfigName::Baseline, ConfigName::Ue] {
                jobs.push((r, w, c));
            }
        }
    }
    let metrics = parallel_map(jobs.clone(), |(r, w, c)| {
        let mut s = suite.clone();
        s.ratio = *r;
        run_one(w, *c, &s, &graph)
    });
    for ((_, w, c), m) in jobs.iter().zip(&metrics) {
        if let Err(e) = m {
            skipped("Fig. 17", &format!("{w}/{}", c.label()), e);
        }
    }
    let lookup = |r: f64, w: &str, c: ConfigName| -> Option<f64> {
        let i = jobs.iter().position(|&(jr, jw, jc)| jr == r && jw == w && jc == c)?;
        metrics[i].as_ref().ok().map(|m| m.cycles as f64)
    };
    println!("{:>6} {:>16} {:>12}", "ratio", "rel. exec time", "UE speedup");
    for &r in &ratios {
        let rel = geomean(names.iter().filter_map(|&w| {
            Some(lookup(r, w, ConfigName::Baseline)? / lookup(1.0, w, ConfigName::Baseline)?)
        }));
        let ue = geomean(names.iter().filter_map(|&w| {
            Some(lookup(r, w, ConfigName::Baseline)? / lookup(r, w, ConfigName::Ue)?)
        }));
        println!("{r:>6.1} {rel:>16.2} {ue:>12.2}");
    }
    println!("(exec time grows as memory shrinks; UE's benefit grows with eviction pressure)");
}

/// Fig. 18: sensitivity to the GPU runtime fault handling time.
pub fn fig18(suite: &SuiteConfig) {
    header("Fig. 18", "TO+UE speedup vs. GPU runtime fault handling time");
    let graph = suite.graph();
    let names: &[&str] = &["BC", "BFS-DWC", "BFS-TTC", "BFS-TWC", "SSSP-TWC", "PR"];
    let handling = [20u64, 30, 40, 50];
    let mut jobs = Vec::new();
    for &h in &handling {
        for &w in names {
            for c in [ConfigName::Baseline, ConfigName::ToUe] {
                jobs.push((h, w, c));
            }
        }
    }
    let metrics = parallel_map(jobs.clone(), |(h, w, c)| {
        let mut s = suite.clone();
        s.sim.uvm.fault_handling_base = us(*h);
        run_one(w, *c, &s, &graph)
    });
    for ((_, w, c), m) in jobs.iter().zip(&metrics) {
        if let Err(e) = m {
            skipped("Fig. 18", &format!("{w}/{}", c.label()), e);
        }
    }
    let lookup = |h: u64, w: &str, c: ConfigName| -> Option<f64> {
        let i = jobs.iter().position(|&(jh, jw, jc)| jh == h && jw == w && jc == c)?;
        metrics[i].as_ref().ok().map(|m| m.cycles as f64)
    };
    println!("{:>12} {:>10}", "handling", "speedup");
    for &h in &handling {
        let sp = geomean(names.iter().filter_map(|&w| {
            Some(lookup(h, w, ConfigName::Baseline)? / lookup(h, w, ConfigName::ToUe)?)
        }));
        println!("{h:>10}us {sp:>10.2}");
    }
    println!("(each bar normalized to its own baseline; benefit grows with handling cost)");
}

/// §6.5: context-switch overhead sensitivity.
pub fn ctxswitch(suite: &SuiteConfig) {
    header("§6.5", "TO+UE with modeled vs. close-to-ideal context switch cost");
    let graph = suite.graph();
    let names: Vec<&str> = registry::irregular_names().to_vec();
    let rows = parallel_map(names, |name| -> Result<_, BenchError> {
        let modeled = run_one(name, ConfigName::ToUe, suite, &graph)?;
        let mut fast = suite.clone();
        // Close-to-ideal: shared-memory-bandwidth switching (eq. 1 of VT):
        // 1024 bits/cycle and no fixed drain cost.
        fast.sim.gpu.ctx_switch_bytes_per_cycle = 128 * 1024;
        fast.sim.gpu.ctx_switch_fixed_cycles = 0;
        let ideal = run_one(name, ConfigName::ToUe, &fast, &graph)?;
        Ok((*name, modeled.cycles as f64 / ideal.cycles as f64))
    });
    println!("{:<10} {:>26}", "workload", "modeled/ideal exec time");
    for row in &rows {
        match row {
            Ok((name, rel)) => println!("{name:<10} {rel:>26.3}"),
            Err(e) => skipped("§6.5", "row", e),
        }
    }
    println!("(the paper finds overall execution time insensitive to switch cost)");
}

/// Ablation (§7 discussion): ETC's proactive eviction on irregular
/// workloads — the reason its authors disable it.
pub fn pe_ablation(suite: &SuiteConfig) {
    header("PE ablation", "ETC with vs. without proactive eviction (irregular workloads)");
    let names: Vec<&str> = registry::irregular_names().to_vec();
    let rows = parallel_map(names, |name| -> Result<_, BenchError> {
        let run = |pe: bool| -> Result<_, BenchError> {
            let (policy, mut etc) = batmem::policies::etc();
            etc.proactive_eviction = pe;
            let w = registry::build(name, suite.graph_for(name))
                .ok_or_else(|| BenchError::msg(format!("unknown workload `{name}`")))?;
            Simulation::builder()
                .config(suite.sim.clone())
                .policy(policy)
                .etc(etc)
                .memory_ratio(suite.ratio)
                .try_run(w)
                .map_err(BenchError::from)
        };
        let off = run(false)?;
        let on = run(true)?;
        Ok((
            *name,
            off.cycles as f64 / on.cycles as f64,
            on.uvm.premature_rate(),
            off.uvm.premature_rate(),
        ))
    });
    println!(
        "{:<10} {:>12} {:>14} {:>14}",
        "workload", "PE speedup", "premature(PE)", "premature(off)"
    );
    for row in &rows {
        match row {
            Ok((name, sp, pon, poff)) => {
                println!("{name:<10} {sp:>12.2} {:>13.1}% {:>13.1}%", pon * 100.0, poff * 100.0)
            }
            Err(e) => skipped("PE ablation", "row", e),
        }
    }
    println!("(PE speedup < 1 means proactive eviction hurts, as the ETC authors found)");
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.ln();
        n += 1;
    }
    (sum / n.max(1) as f64).exp()
}

/// Returns a default `SimConfig` (helper for binaries).
pub fn default_sim() -> SimConfig {
    SimConfig::default()
}
