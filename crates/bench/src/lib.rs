//! Shared harness for regenerating the paper's figures and tables.
//!
//! The `figures` binary (`cargo run -p batmem-bench --bin figures --release
//! -- <fig>`) drives [`suite_results`] and the per-figure printers; the
//! timing benches in `benches/` cover the simulator's hot paths; the
//! [`sweep`] module is the fault-tolerant parallel sweep service (`figures
//! sweep --workers N --resume`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod figures;
pub mod runner;
pub mod sweep;

pub use error::BenchError;
pub use runner::{suite_results, ConfigName, SuiteConfig, SuiteResults};
