//! Parallel execution of the evaluation suite.

use crate::error::BenchError;
use batmem::probes::{MetricsRow, MetricsSink, Tracer};
use batmem::{policies, RunMetrics, SimConfig, Simulation};
use batmem_graph::{gen, Csr};
use batmem_workloads::registry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub use batmem::policies::ConfigName;

/// Suite-wide parameters (graph scale, oversubscription ratio, ...).
///
/// [`SuiteConfig::default`] is the paper's evaluation point (R-MAT scale
/// 15, edge factor 16, 50% oversubscription) and reads no environment;
/// binaries that accept `BATMEM_SCALE`-style overrides parse them
/// themselves and apply the `with_*` builders.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// R-MAT scale (vertices = 2^scale).
    pub scale: u32,
    /// R-MAT edge factor.
    pub edge_factor: u32,
    /// Graph seed.
    pub seed: u64,
    /// Memory oversubscription ratio (paper default: 0.5).
    pub ratio: f64,
    /// Base system configuration.
    pub sim: SimConfig,
    /// Engine threads per simulation (1 = the serial reference engine).
    /// Also parallelizes graph generation. Results are bit-identical for
    /// every value; see `SimulationBuilder::threads`.
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SuiteConfig {
    /// The paper's evaluation point: R-MAT scale 15, edge factor 16, seed
    /// 42, 50% memory oversubscription, Table 1 system configuration.
    pub fn paper() -> Self {
        Self::new(15, 16)
    }

    /// A suite over an R-MAT graph of `scale` and `edge_factor`, with the
    /// paper's seed, ratio, and system configuration.
    pub fn new(scale: u32, edge_factor: u32) -> Self {
        Self { scale, edge_factor, seed: 42, ratio: 0.5, sim: SimConfig::default(), threads: 1 }
    }

    /// Replaces the R-MAT scale.
    pub fn with_scale(mut self, scale: u32) -> Self {
        self.scale = scale;
        self
    }

    /// Replaces the R-MAT edge factor.
    pub fn with_edge_factor(mut self, edge_factor: u32) -> Self {
        self.edge_factor = edge_factor;
        self
    }

    /// Replaces the graph seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the memory oversubscription ratio.
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.ratio = ratio;
        self
    }

    /// Replaces the base system configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Replaces the engine thread count (also parallelizes graph
    /// generation). `0` is clamped to 1.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The shared input graph.
    pub fn graph(&self) -> Arc<Csr> {
        Arc::new(gen::rmat_par(self.scale, self.edge_factor, self.seed, self.threads.max(1)))
    }

    /// The input graph for `workload`. Like the paper (whose GraphBIG
    /// datasets differ per benchmark), the coloring workloads run a
    /// smaller input: their kernels re-expand every still-uncolored hub
    /// each round, which costs quadratically more simulation work per
    /// vertex than the traversal workloads.
    pub fn graph_for(&self, workload: &str) -> Arc<Csr> {
        if workload.starts_with("GC-") {
            Arc::new(gen::rmat_par(
                self.scale.saturating_sub(3).max(8),
                self.edge_factor,
                self.seed,
                self.threads.max(1),
            ))
        } else {
            self.graph()
        }
    }
}

/// All metrics produced by one suite invocation, keyed by
/// `(workload, config)`.
#[derive(Debug)]
pub struct SuiteResults {
    /// Workload display names, in figure order.
    pub workloads: Vec<&'static str>,
    results: HashMap<(String, ConfigName), RunMetrics>,
    /// Runs that failed, with the reason; successful rows are unaffected.
    pub failures: Vec<(String, ConfigName, BenchError)>,
}

impl SuiteResults {
    /// The metrics of `(workload, config)`.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the suite invocation or failed;
    /// figure printers should restrict themselves to
    /// [`SuiteResults::complete`] workloads first.
    pub fn get(&self, workload: &str, config: ConfigName) -> &RunMetrics {
        self.results
            .get(&(workload.to_string(), config))
            .unwrap_or_else(|| panic!("no result for {workload}/{config:?}"))
    }

    /// The metrics of `(workload, config)`, or `None` if that run failed or
    /// was not requested.
    pub fn get_opt(&self, workload: &str, config: ConfigName) -> Option<&RunMetrics> {
        self.results.get(&(workload.to_string(), config))
    }

    /// The workloads for which every one of `configs` produced a result, in
    /// figure order.
    pub fn complete(&self, configs: &[ConfigName]) -> Vec<&'static str> {
        self.workloads
            .iter()
            .copied()
            .filter(|w| configs.iter().all(|&c| self.get_opt(w, c).is_some()))
            .collect()
    }

    /// Geometric mean of `f` over all workloads.
    pub fn geomean<F: Fn(&str) -> f64>(&self, f: F) -> f64 {
        self.geomean_over(&self.workloads, f)
    }

    /// Geometric mean of `f` over `workloads` (use with
    /// [`SuiteResults::complete`] to skip failed rows).
    pub fn geomean_over<F: Fn(&str) -> f64>(&self, workloads: &[&str], f: F) -> f64 {
        if workloads.is_empty() {
            return f64::NAN;
        }
        let logs: f64 = workloads.iter().map(|w| f(w).ln()).sum();
        (logs / workloads.len() as f64).exp()
    }

    /// Prints one line per failed run to stderr.
    pub fn report_failures(&self) {
        for (w, c, e) in &self.failures {
            eprintln!("suite: {w}/{} failed: {e}", c.label());
        }
    }
}

/// A policy combination assembled from registry spec strings rather than a
/// named preset — what `figures --eviction random:7 --prefetch none` runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomPolicy {
    /// Eviction strategy spec (`lru`, `ue`, `ideal`, `random:7`).
    pub eviction: String,
    /// Prefetcher spec (`none`, `tree:50`).
    pub prefetch: String,
    /// Oversubscription spec (`none`, `to`, `to:any`, `etc`, `etc:25`).
    pub oversubscription: String,
    /// Enables PCIe compression on the transfer pipes.
    pub compression: bool,
    /// Coalescing spec (`off`, `greedy`, `greedy:75`, `splinter:on-evict`).
    /// `off` keeps the classic single-granularity translation path.
    pub coalesce: String,
    /// Base page size in KB; `None` keeps the suite's geometry (64 KB by
    /// default). Large pages/regions stay at 2 MB or the base size,
    /// whichever is larger.
    pub page_size_kb: Option<u64>,
    /// Fault-servicing spec (`cpu`, `gpu-driven`, `gpu-driven:500`). `cpu`
    /// keeps the classic host-driver far-fault timing.
    pub fault_servicing: String,
}

impl Default for CustomPolicy {
    /// The baseline combination, as spec strings.
    fn default() -> Self {
        let base = policies::registry_specs(ConfigName::Baseline);
        Self {
            eviction: base.eviction.to_string(),
            prefetch: base.prefetch.to_string(),
            oversubscription: base.oversubscription.to_string(),
            compression: base.compression,
            coalesce: "off".to_string(),
            page_size_kb: None,
            fault_servicing: "cpu".to_string(),
        }
    }
}

impl CustomPolicy {
    /// Display label, e.g. `lru/tree:50/none`. Non-default coalescing,
    /// fault-servicing, and page-size settings are appended (`+co:greedy`,
    /// `+fs:gpu-driven`, `+pg:4k`) so default labels are unchanged from
    /// the three-axis era.
    pub fn label(&self) -> String {
        let mut s = format!("{}/{}/{}", self.eviction, self.prefetch, self.oversubscription);
        if self.compression {
            s.push_str("/+pciec");
        }
        if self.coalesce != "off" {
            s.push_str("/+co:");
            s.push_str(&self.coalesce);
        }
        if self.fault_servicing != "cpu" {
            s.push_str("/+fs:");
            s.push_str(&self.fault_servicing);
        }
        if let Some(kb) = self.page_size_kb {
            s.push_str(&format!("/+pg:{kb}k"));
        }
        s
    }

    /// The page geometry this combination runs under, derived from `base`
    /// when [`page_size_kb`](Self::page_size_kb) overrides the base page:
    /// large pages and regions sit at 2 MB, or the base page size when it
    /// is larger.
    ///
    /// # Errors
    ///
    /// Returns the geometry's typed [`batmem_types::SimError::InvalidConfig`]
    /// when the requested size is not a power of two in range.
    pub fn geometry(
        &self,
        base: batmem_types::addr::PageGeometry,
    ) -> Result<batmem_types::addr::PageGeometry, batmem_types::SimError> {
        let Some(kb) = self.page_size_kb else { return Ok(base) };
        let bytes = kb.saturating_mul(1024);
        if !bytes.is_power_of_two() {
            return Err(batmem_types::SimError::invalid_config(
                "uvm.geometry.base_shift",
                format!("--page-size must be a power-of-two KB count, got {kb}"),
            ));
        }
        let base_shift = bytes.trailing_zeros();
        let region_shift = base_shift.max(21);
        batmem_types::addr::PageGeometry::base_region(base_shift, region_shift)
    }
}

/// Runs one workload under an arbitrary registry-resolved policy
/// combination. Unknown spec names come back as [`BenchError`] (wrapping
/// the registry's typed `UnknownPolicy` error), like every other failure.
pub fn run_custom(
    name: &str,
    custom: &CustomPolicy,
    suite: &SuiteConfig,
    graph: &Arc<Csr>,
) -> Result<RunMetrics, BenchError> {
    run_custom_injected(name, custom, None, suite, graph)
}

/// Like [`run_custom`], with an optional fault-injection spec (`noisy:42`,
/// `lost:1:3`, `off`) parsed next to the policy specs — the CLI's
/// `--inject` flag. Unknown spec names come back as the registry-style
/// typed error listing the known presets.
pub fn run_custom_injected(
    name: &str,
    custom: &CustomPolicy,
    inject: Option<&str>,
    suite: &SuiteConfig,
    graph: &Arc<Csr>,
) -> Result<RunMetrics, BenchError> {
    let context = format!("{name}/{}", custom.label());
    let inject = match inject {
        Some(spec) => batmem_uvm::InjectConfig::parse_spec(spec)
            .map_err(|e| BenchError::context(&context, &e))?,
        None => None,
    };
    let graph = if name.starts_with("GC-") { suite.graph_for(name) } else { Arc::clone(graph) };
    let workload = registry::build(name, graph)
        .ok_or_else(|| BenchError::msg(format!("unknown workload `{name}`")))?;
    let policy = if custom.compression {
        batmem::PolicyConfig::baseline_with_compression()
    } else {
        batmem::PolicyConfig::baseline()
    };
    let mut sim = suite.sim.clone();
    sim.uvm.geometry =
        custom.geometry(sim.uvm.geometry).map_err(|e| BenchError::context(&context, &e))?;
    let mut b = Simulation::builder()
        .config(sim)
        .policy(policy)
        .eviction(custom.eviction.clone())
        .prefetch(custom.prefetch.clone())
        .oversubscription(custom.oversubscription.clone())
        .coalesce(custom.coalesce.clone())
        .fault_servicing(custom.fault_servicing.clone())
        .threads(suite.threads.max(1))
        .memory_ratio(suite.ratio);
    if let Some(inject) = inject {
        b = b.inject(inject);
    }
    b.try_run(workload).map_err(|e| BenchError::context(&context, &e))
}

/// Runs one workload under one configuration.
///
/// Never panics: unknown workloads, invalid configurations, and simulation
/// failures all come back as [`BenchError`] so sweeps can skip the row.
pub fn run_one(
    name: &str,
    config: ConfigName,
    suite: &SuiteConfig,
    graph: &Arc<Csr>,
) -> Result<RunMetrics, BenchError> {
    let (policy, etc) = policies::preset(config);
    let graph = if name.starts_with("GC-") { suite.graph_for(name) } else { Arc::clone(graph) };
    let workload = registry::build(name, graph)
        .ok_or_else(|| BenchError::msg(format!("unknown workload `{name}`")))?;
    let mut b = Simulation::builder()
        .config(suite.sim.clone())
        .policy(policy)
        .threads(suite.threads.max(1));
    if config != ConfigName::Unlimited {
        b = b.memory_ratio(suite.ratio);
    }
    if let Some(e) = etc {
        b = b.etc(e);
    }
    b.try_run(workload)
        .map_err(|e| BenchError::context(&format!("{name}/{}", config.label()), &e))
}

/// Like [`run_one`], but with a [`MetricsSink`] and a bounded [`Tracer`]
/// attached: returns the metrics plus the sink's machine-readable row and
/// the retained trace as JSON Lines.
///
/// The probes are constructed inside the call, so this composes with
/// [`parallel_map`] — everything returned is plain `Send` data.
pub fn run_one_traced(
    name: &str,
    config: ConfigName,
    suite: &SuiteConfig,
    graph: &Arc<Csr>,
    trace_capacity: usize,
) -> Result<(RunMetrics, MetricsRow, String), BenchError> {
    let (policy, etc) = policies::preset(config);
    let graph = if name.starts_with("GC-") { suite.graph_for(name) } else { Arc::clone(graph) };
    let workload = registry::build(name, graph)
        .ok_or_else(|| BenchError::msg(format!("unknown workload `{name}`")))?;
    let sink = MetricsSink::labeled(format!("{name}/{}", config.label()));
    let tracer = Tracer::bounded(trace_capacity);
    let mut b = Simulation::builder()
        .config(suite.sim.clone())
        .policy(policy)
        .threads(suite.threads.max(1))
        .probe(sink.clone())
        .probe(tracer.clone());
    if config != ConfigName::Unlimited {
        b = b.memory_ratio(suite.ratio);
    }
    if let Some(e) = etc {
        b = b.etc(e);
    }
    let metrics = b
        .try_run(workload)
        .map_err(|e| BenchError::context(&format!("{name}/{}", config.label()), &e))?;
    let row = sink.rows().pop().expect("finished run seals one row");
    Ok((metrics, row, tracer.to_jsonl()))
}

/// Runs `f` over `items` on a thread pool, preserving order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_bounded(items, usize::MAX, f)
}

/// [`parallel_map`] with an explicit worker ceiling, for callers whose
/// items are themselves multi-threaded (engine `threads > 1`): the product
/// of workers and per-item threads should not exceed the machine.
pub fn parallel_map_bounded<T, R, F>(items: Vec<T>, max_workers: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(16)
        .min(max_workers)
        .max(1);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let value = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot poisoned").expect("slot filled"))
        .collect()
}

/// Runs `configs` × the 11-workload suite in parallel and collects results.
///
/// Failed runs are recorded in [`SuiteResults::failures`] rather than
/// aborting the sweep.
pub fn suite_results(configs: &[ConfigName], suite: &SuiteConfig) -> SuiteResults {
    let graph = suite.graph();
    let workloads = registry::irregular_names();
    let mut jobs: Vec<(&'static str, ConfigName)> = Vec::new();
    for &w in workloads {
        for &c in configs {
            jobs.push((w, c));
        }
    }
    // Each run may itself use `suite.threads` threads: cap the outer pool
    // so workers × threads stays within the machine. The clamp is silent —
    // suite stderr is part of the byte-diffed figure captures, and a
    // threads-dependent log line would break `--threads 8` vs `--threads 1`
    // byte-identity (the sweep service logs its clamp instead).
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let max_workers = (avail / suite.threads.max(1)).max(1);
    let outcomes =
        parallel_map_bounded(jobs, max_workers, |&(w, c)| (w, c, run_one(w, c, suite, &graph)));
    let mut results = HashMap::new();
    let mut failures = Vec::new();
    for (w, c, outcome) in outcomes {
        match outcome {
            Ok(m) => {
                results.insert((w.to_string(), c), m);
            }
            Err(e) => failures.push((w.to_string(), c, e)),
        }
    }
    SuiteResults { workloads: workloads.to_vec(), results, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100u64).collect(), |&x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn config_labels_match_paper_vocabulary() {
        assert_eq!(ConfigName::Baseline.label(), "BASELINE");
        assert_eq!(ConfigName::ToUe.label(), "TO+UE");
        assert_eq!(ConfigName::Etc.label(), "ETC");
    }

    #[test]
    fn etc_config_carries_framework() {
        let (_, etc) = policies::preset(ConfigName::Etc);
        assert!(etc.unwrap().enabled);
        assert!(policies::preset(ConfigName::Baseline).1.is_none());
    }

    #[test]
    fn default_suite_is_the_paper_point_without_env() {
        let suite = SuiteConfig::default();
        assert_eq!(suite.scale, 15);
        assert_eq!(suite.edge_factor, 16);
        let tuned = SuiteConfig::new(8, 4).with_seed(7).with_ratio(0.75);
        assert_eq!((tuned.scale, tuned.edge_factor, tuned.seed, tuned.ratio), (8, 4, 7, 0.75));
    }

    #[test]
    fn suite_runs_one_small_workload() {
        let suite =
            SuiteConfig::new(8, 4).with_seed(1);
        let graph = suite.graph();
        let m = run_one("BFS-TTC", ConfigName::Baseline, &suite, &graph).unwrap();
        assert!(m.cycles > 0);
        let unlimited = run_one("BFS-TTC", ConfigName::Unlimited, &suite, &graph).unwrap();
        assert!(unlimited.memory_pages.is_none());
    }

    #[test]
    fn custom_combo_runs_and_unknown_spec_is_an_error() {
        let suite = SuiteConfig::new(8, 4).with_seed(1);
        let graph = suite.graph();
        let custom = CustomPolicy {
            eviction: "random:7".into(),
            prefetch: "none".into(),
            ..CustomPolicy::default()
        };
        assert_eq!(custom.label(), "random:7/none/none");
        let m = run_custom("BFS-TTC", &custom, &suite, &graph).unwrap();
        assert!(m.cycles > 0);
        let bad = CustomPolicy { eviction: "mru".into(), ..CustomPolicy::default() };
        let err = run_custom("BFS-TTC", &bad, &suite, &graph).unwrap_err();
        assert!(err.to_string().contains("unknown eviction policy"), "{err}");
    }

    #[test]
    fn inject_spec_is_parsed_next_to_the_policy_specs() {
        let suite = SuiteConfig::new(8, 4).with_seed(1);
        let graph = suite.graph();
        let custom = CustomPolicy::default();
        let clean = run_custom_injected("BFS-TTC", &custom, Some("off"), &suite, &graph).unwrap();
        let noisy =
            run_custom_injected("BFS-TTC", &custom, Some("noisy:7"), &suite, &graph).unwrap();
        assert_eq!(
            clean.cycles,
            run_custom("BFS-TTC", &custom, &suite, &graph).unwrap().cycles,
            "`off` must be identical to no injection"
        );
        assert_ne!(clean.cycles, noisy.cycles, "noisy injection must perturb the run");
        let err =
            run_custom_injected("BFS-TTC", &custom, Some("chaos"), &suite, &graph).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown inject policy") && msg.contains("noisy"), "{msg}");
    }

    #[test]
    fn unknown_workload_is_an_error_not_a_panic() {
        let suite =
            SuiteConfig::new(8, 4).with_seed(1);
        let graph = suite.graph();
        let err = run_one("NO-SUCH-WORKLOAD", ConfigName::Baseline, &suite, &graph).unwrap_err();
        assert!(err.to_string().contains("NO-SUCH-WORKLOAD"));
    }

    #[test]
    fn invalid_config_is_reported_per_row_not_panicked() {
        let mut suite =
            SuiteConfig::new(8, 4).with_seed(1);
        suite.sim.gpu.num_sms = 0;
        let graph = suite.graph();
        let err = run_one("BFS-TTC", ConfigName::Baseline, &suite, &graph).unwrap_err();
        assert!(err.to_string().contains("num_sms"), "{err}");
    }

    #[test]
    fn geomean_of_constants_is_the_constant() {
        let suite =
            SuiteConfig::new(8, 4).with_seed(1);
        let graph = suite.graph();
        let m = run_one("PR", ConfigName::Baseline, &suite, &graph).unwrap();
        let mut results = HashMap::new();
        for w in registry::irregular_names() {
            results.insert((w.to_string(), ConfigName::Baseline), m.clone());
        }
        let r = SuiteResults {
            workloads: registry::irregular_names().to_vec(),
            results,
            failures: Vec::new(),
        };
        let g = r.geomean(|_| 3.0);
        assert!((g - 3.0).abs() < 1e-12);
        assert_eq!(r.complete(&[ConfigName::Baseline]).len(), r.workloads.len());
        assert!(r.complete(&[ConfigName::ToUe]).is_empty());
    }
}
