//! A minimal flat-JSON codec for the artifact store.
//!
//! The build is offline (no `serde`), and the store only needs flat
//! objects of strings, unsigned integers, and booleans — so this is a
//! strict ~100-line recursive-descent parser plus the matching escaper.
//! Anything it cannot parse is, by definition, a half-written or corrupt
//! record, and the store re-runs the cell.

use std::fmt::Write as _;

/// A flat JSON value: the only shapes cell records use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// A non-negative integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (possibly multi-byte) verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("truncated value")? {
            b'"' => Ok(Value::Str(self.string()?)),
            b't' | b'f' => {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"true") {
                    self.pos += 4;
                    Ok(Value::Bool(true))
                } else if rest.starts_with(b"false") {
                    self.pos += 5;
                    Ok(Value::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .parse()
                    .map(Value::Int)
                    .map_err(|e| e.to_string())
            }
            other => Err(format!("unsupported value starting with `{}`", other as char)),
        }
    }
}

/// Parses one flat JSON object into `(key, value)` pairs, in document
/// order. Strict: trailing garbage, nesting, floats, and nulls are all
/// errors — which is exactly what makes truncated records detectable.
///
/// # Errors
///
/// A human-readable description of the first syntax violation.
pub fn parse_object(s: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.expect(b'{')?;
    let mut out = Vec::new();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let value = p.value()?;
            out.push((key, value));
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(out)
}

/// Looks up `key` in parsed pairs.
pub fn get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let pairs =
            parse_object(r#"{"a":"x","n":42,"ok":true,"no":false}"#).unwrap();
        assert_eq!(get(&pairs, "a").unwrap().as_str(), Some("x"));
        assert_eq!(get(&pairs, "n").unwrap().as_int(), Some(42));
        assert_eq!(get(&pairs, "ok").unwrap().as_bool(), Some(true));
        assert_eq!(get(&pairs, "no").unwrap().as_bool(), Some(false));
        assert!(get(&pairs, "missing").is_none());
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}é—🚀";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let pairs = parse_object(&doc).unwrap();
        assert_eq!(get(&pairs, "k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn truncated_and_malformed_records_are_rejected() {
        for bad in [
            "",
            "{",
            r#"{"a":"#,
            r#"{"a":"x""#,
            r#"{"a":"x"} extra"#,
            r#"{"a":{"nested":1}}"#,
            r#"{"a":1.5}"#,
            r#"{"a":null}"#,
            r#"{"a":"unterminated"#,
        ] {
            assert!(parse_object(bad).is_err(), "should reject: {bad}");
        }
    }
}
