//! The fault-tolerant parallel sweep service.
//!
//! A [`SweepPlan`] (cartesian spec of workloads × policies × scales ×
//! ratios × seeds) expands into content-hashed [`SweepCell`]s, which flow
//! through a bounded job queue into a pool of worker threads — each owning
//! an independent `Simulation` — while a results thread streams sealed
//! [`MetricsRow`](batmem::probes::MetricsRow)s into a resumable on-disk
//! [`ArtifactStore`]. See [`pool`] for the robustness contract (panic
//! isolation, wall-clock deadlines, retry/backoff, graceful drain) and
//! [`store`] for the resume protocol.
//!
//! ```no_run
//! use batmem_bench::sweep::{self, ArtifactStore, PoolConfig, SweepPlan};
//! use std::sync::atomic::AtomicBool;
//!
//! let plan = SweepPlan { scales: vec![8], edge_factors: vec![4], ..SweepPlan::default() };
//! let store = ArtifactStore::open("artifacts/sweep-store").unwrap();
//! let cancel = AtomicBool::new(false);
//! let runner = sweep::cell_runner(Default::default());
//! let report = sweep::run_sweep(
//!     &plan.cells().unwrap(), &store, &PoolConfig::default(), &cancel, runner,
//! ).unwrap();
//! assert!(report.failures().is_empty());
//! ```

mod json;
pub mod outcome;
pub mod plan;
pub mod pool;
pub mod store;

pub use outcome::{AttemptOutcome, CellRecord};
pub use plan::{CellPolicy, SweepCell, SweepPlan};
pub use pool::{run_sweep, CellRunner, PoolConfig, SweepReport};
pub use store::{ArtifactStore, LoadedStore};

use crate::error::BenchError;
use batmem::policies::{self, ConfigName};
use batmem::probes::{MetricsRow, MetricsSink};
use batmem::{SimConfig, Simulation};
use batmem_graph::{gen, Csr};
use batmem_uvm::InjectConfig;
use batmem_workloads::registry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A thread-safe cache of generated R-MAT graphs keyed by
/// `(scale, edge_factor, seed)`, so the pool generates each input once
/// however many cells share it.
#[derive(Debug, Default)]
pub struct GraphCache {
    graphs: Mutex<HashMap<(u32, u32, u64), Arc<Csr>>>,
}

impl GraphCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph at `(scale, edge_factor, seed)`, generating it on first
    /// use.
    pub fn get(&self, scale: u32, edge_factor: u32, seed: u64) -> Arc<Csr> {
        // Generation happens under the lock: the first requester builds the
        // graph while sharers wait, rather than racing to build duplicates.
        let mut graphs = self.graphs.lock().expect("graph cache lock poisoned");
        Arc::clone(
            graphs
                .entry((scale, edge_factor, seed))
                .or_insert_with(|| Arc::new(gen::rmat(scale, edge_factor, seed))),
        )
    }

    /// Graphs currently cached.
    pub fn len(&self) -> usize {
        self.graphs.lock().expect("graph cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The input scale for `workload` at plan scale `scale` — the coloring
/// workloads run a smaller graph, mirroring
/// [`SuiteConfig::graph_for`](crate::runner::SuiteConfig::graph_for).
fn input_scale(workload: &str, scale: u32) -> u32 {
    if workload.starts_with("GC-") {
        scale.saturating_sub(3).max(8)
    } else {
        scale
    }
}

/// Runs one cell to a sealed metrics row: builds (or reuses) the input
/// graph, resolves the cell's policy and injection spec, attaches a
/// [`MetricsSink`] labeled with the cell slug, and runs the simulation.
///
/// # Errors
///
/// Unknown workloads, unknown policy/inject specs, invalid configs, and
/// simulation failures all come back as [`BenchError`] — the pool's retry
/// and quarantine machinery consumes them.
pub fn run_cell(
    cell: &SweepCell,
    sim: &SimConfig,
    graphs: &GraphCache,
) -> Result<MetricsRow, BenchError> {
    let graph = graphs.get(input_scale(&cell.workload, cell.scale), cell.edge_factor, cell.seed);
    let workload = registry::build(&cell.workload, graph)
        .ok_or_else(|| BenchError::msg(format!("unknown workload `{}`", cell.workload)))?;
    let sink = MetricsSink::labeled(cell.label());
    let mut sim = sim.clone();
    if let CellPolicy::Custom(custom) = &cell.policy {
        sim.uvm.geometry = custom
            .geometry(sim.uvm.geometry)
            .map_err(|e| BenchError::context(&cell.label(), &e))?;
    }
    let mut b = Simulation::builder()
        .config(sim)
        .threads(cell.threads.max(1))
        .probe(sink.clone());
    match &cell.policy {
        CellPolicy::Preset(name) => {
            let (policy, etc) = policies::preset(*name);
            b = b.policy(policy);
            if let Some(e) = etc {
                b = b.etc(e);
            }
            if *name != ConfigName::Unlimited {
                b = b.memory_ratio(cell.ratio);
            }
        }
        CellPolicy::Custom(custom) => {
            let policy = if custom.compression {
                batmem::PolicyConfig::baseline_with_compression()
            } else {
                batmem::PolicyConfig::baseline()
            };
            b = b
                .policy(policy)
                .eviction(custom.eviction.clone())
                .prefetch(custom.prefetch.clone())
                .oversubscription(custom.oversubscription.clone())
                .coalesce(custom.coalesce.clone())
                .fault_servicing(custom.fault_servicing.clone())
                .memory_ratio(cell.ratio);
        }
    }
    // The plan-level coalesce and fault-servicing axes apply to presets
    // and customs alike (and, set last, win over a custom combo's own
    // spec).
    if let Some(spec) = cell.coalesce_spec() {
        b = b.coalesce(spec);
    }
    if let Some(spec) = cell.fault_servicing_spec() {
        b = b.fault_servicing(spec);
    }
    if let Some(spec) = &cell.inject {
        if let Some(inject) = InjectConfig::parse_spec(spec)
            .map_err(|e| BenchError::context(&cell.label(), &e))?
        {
            b = b.inject(inject);
        }
    }
    b.try_run(workload).map_err(|e| BenchError::context(&cell.label(), &e))?;
    Ok(sink.rows().pop().expect("finished run seals one row"))
}

/// The production [`CellRunner`]: [`run_cell`] over a fresh shared
/// [`GraphCache`], with every cell using `sim` as the base system
/// configuration.
pub fn cell_runner(sim: SimConfig) -> CellRunner {
    let graphs = Arc::new(GraphCache::new());
    Arc::new(move |cell: &SweepCell| run_cell(cell, &sim, &graphs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_cache_shares_instances() {
        let cache = GraphCache::new();
        assert!(cache.is_empty());
        let a = cache.get(6, 2, 1);
        let b = cache.get(6, 2, 1);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get(6, 2, 2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn coloring_workloads_get_the_reduced_input_scale() {
        assert_eq!(input_scale("GC-TTC", 15), 12);
        assert_eq!(input_scale("GC-DTC", 9), 8);
        assert_eq!(input_scale("BFS-TTC", 15), 15);
    }

    #[test]
    fn run_cell_reports_unknown_specs_as_typed_errors() {
        let graphs = GraphCache::new();
        let cell = SweepCell {
            workload: "BFS-TTC".into(),
            policy: CellPolicy::Preset(ConfigName::Baseline),
            scale: 6,
            edge_factor: 2,
            ratio: 0.5,
            seed: 1,
            inject: Some("chaos".into()),
            coalesce: None,
            fault_servicing: None,
            threads: 1,
            tag: String::new(),
        };
        let err = run_cell(&cell, &SimConfig::default(), &graphs).unwrap_err();
        assert!(err.to_string().contains("unknown inject policy"), "{err}");
    }
}
