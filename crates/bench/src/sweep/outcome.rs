//! Per-cell sweep outcomes: what one cell's attempts amounted to.

use batmem::probes::MetricsRow;
use batmem_types::sweep::{CellId, OutcomeKind};

/// The terminal record of one sweep cell: either a sealed metrics row or a
/// typed failure after exhausting retries. This is exactly what the
/// artifact store persists and the quarantine report lists.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's content-hash identity.
    pub id: CellId,
    /// Human-readable cell label (`workload/policy@point`).
    pub label: String,
    /// How the cell ended.
    pub outcome: OutcomeKind,
    /// Attempts made, including the first (1 = succeeded immediately).
    pub attempts: u32,
    /// The sealed metrics row; `Some` iff `outcome` is `Completed`.
    pub row: Option<MetricsRow>,
    /// The last attempt's failure rendering (typed `SimError`/`BenchError`
    /// display, panic message, or deadline description); `None` on
    /// success.
    pub error: Option<String>,
}

impl CellRecord {
    /// A completed record sealing `row` after `attempts` tries.
    pub fn completed(id: CellId, label: String, attempts: u32, row: MetricsRow) -> Self {
        Self { id, label, outcome: OutcomeKind::Completed, attempts, row: Some(row), error: None }
    }

    /// A quarantined record: the cell's last failure after `attempts`
    /// tries, classified as `outcome`.
    pub fn quarantined(
        id: CellId,
        label: String,
        outcome: OutcomeKind,
        attempts: u32,
        error: String,
    ) -> Self {
        debug_assert!(outcome != OutcomeKind::Completed);
        Self { id, label, outcome, attempts, row: None, error: Some(error) }
    }

    /// Whether this record should be skipped (not re-run) on resume.
    pub fn is_success(&self) -> bool {
        self.outcome.is_success()
    }

    /// One quarantine-report line: outcome, attempts, label, error.
    pub fn report_line(&self) -> String {
        format!(
            "{:>9}  x{}  {}  {}",
            self.outcome,
            self.attempts,
            self.label,
            self.error.as_deref().unwrap_or("-")
        )
    }
}

/// How one *attempt* at a cell ended, before retry logic is applied.
#[derive(Debug)]
pub enum AttemptOutcome {
    /// The run finished with a sealed row.
    Ok(Box<MetricsRow>),
    /// The run returned a typed error.
    Err(String),
    /// The run panicked; the payload was caught.
    Panicked(String),
    /// The run blew its wall-clock deadline and was abandoned.
    TimedOut(String),
}

impl AttemptOutcome {
    /// The outcome classification for a terminal (no more retries) record.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            AttemptOutcome::Ok(_) => OutcomeKind::Completed,
            AttemptOutcome::Err(_) => OutcomeKind::Failed,
            AttemptOutcome::Panicked(_) => OutcomeKind::Panicked,
            AttemptOutcome::TimedOut(_) => OutcomeKind::TimedOut,
        }
    }

    /// The failure rendering; empty for `Ok`.
    pub fn error_text(&self) -> String {
        match self {
            AttemptOutcome::Ok(_) => String::new(),
            AttemptOutcome::Err(e) | AttemptOutcome::Panicked(e) | AttemptOutcome::TimedOut(e) => {
                e.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_classify_success_and_quarantine() {
        let id = CellId::from_hash(7);
        let ok = CellRecord::completed(id, "w/p".into(), 1, MetricsRow::default());
        assert!(ok.is_success());
        assert!(ok.row.is_some() && ok.error.is_none());
        let bad = CellRecord::quarantined(
            id,
            "w/p".into(),
            OutcomeKind::TimedOut,
            3,
            "deadline 2s exceeded".into(),
        );
        assert!(!bad.is_success());
        let line = bad.report_line();
        assert!(line.contains("timed_out") && line.contains("x3") && line.contains("deadline"));
    }

    #[test]
    fn attempt_outcomes_map_to_kinds() {
        assert_eq!(AttemptOutcome::Ok(Box::default()).kind(), OutcomeKind::Completed);
        assert_eq!(AttemptOutcome::Err("e".into()).kind(), OutcomeKind::Failed);
        assert_eq!(AttemptOutcome::Panicked("p".into()).kind(), OutcomeKind::Panicked);
        assert_eq!(AttemptOutcome::TimedOut("t".into()).kind(), OutcomeKind::TimedOut);
        assert_eq!(AttemptOutcome::Panicked("boom".into()).error_text(), "boom");
    }
}
