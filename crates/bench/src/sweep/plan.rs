//! Sweep plans: a cartesian spec of (workload × policy × scale × ratio ×
//! seed) expanded into content-hashed cells.

use crate::error::BenchError;
use crate::runner::CustomPolicy;
use batmem::policies::ConfigName;
use batmem_types::sweep::{CellId, StableHasher};
use batmem_uvm::InjectConfig;
use batmem_workloads::registry;

/// The policy axis of one cell: a named paper preset or an arbitrary
/// registry spec combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellPolicy {
    /// A Fig. 11 preset (`BASELINE`, `TO+UE`, …).
    Preset(ConfigName),
    /// Registry spec strings (`--eviction random:7 --prefetch none`).
    Custom(CustomPolicy),
}

impl CellPolicy {
    /// Display label: the preset's figure label, or the custom combo's
    /// spec triple.
    pub fn label(&self) -> String {
        match self {
            CellPolicy::Preset(c) => c.label().to_string(),
            CellPolicy::Custom(c) => c.label(),
        }
    }
}

/// One fully-specified simulation run within a sweep.
///
/// A cell's identity is the stable content hash of every field
/// ([`SweepCell::id`]); the artifact store keys records by it, which is
/// what makes a killed sweep resumable — a cell re-expanded from the same
/// plan hashes to the same id and finds its completed record.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Workload name (`BFS-TTC`, `PR`, …).
    pub workload: String,
    /// Policy under test.
    pub policy: CellPolicy,
    /// R-MAT scale (vertices = 2^scale).
    pub scale: u32,
    /// R-MAT edge factor.
    pub edge_factor: u32,
    /// Memory oversubscription ratio.
    pub ratio: f64,
    /// Graph seed.
    pub seed: u64,
    /// Fault-injection spec (`noisy:42`, `lost:1:3`), `None` = off.
    pub inject: Option<String>,
    /// Large-page coalescing spec (`greedy`, `splinter:on-evict`),
    /// `None` = off. Only a non-off spec perturbs the cell id, so stores
    /// written before the axis existed stay valid for `--resume`.
    pub coalesce: Option<String>,
    /// Fault-servicing spec (`gpu-driven`, `gpu-driven:500`), `None` =
    /// the default `cpu` model. Like `coalesce`, only a non-default spec
    /// perturbs the cell id, keeping pre-axis stores resumable.
    pub fault_servicing: Option<String>,
    /// Engine shard threads for the cell's run (1 = the serial reference
    /// engine). Like `coalesce`, only a value above 1 perturbs the cell
    /// id, so stores written before the knob existed stay valid for
    /// `--resume`.
    pub threads: usize,
    /// Free-form discriminator hashed into the id for anything the other
    /// fields do not capture (e.g. a non-default base `SimConfig`).
    /// Empty by default.
    pub tag: String,
}

impl SweepCell {
    /// The cell's stable content hash — the artifact store key.
    pub fn id(&self) -> CellId {
        let mut h = StableHasher::new();
        h.field("batmem-sweep-cell-v1")
            .field(&self.workload)
            .field(&self.policy.label())
            .field(&self.scale.to_string())
            .field(&self.edge_factor.to_string())
            .field(&format!("{:016x}", self.ratio.to_bits()))
            .field(&self.seed.to_string())
            .field(self.inject.as_deref().unwrap_or("off"))
            .field(&self.tag);
        if let Some(spec) = self.coalesce_spec() {
            h.field("coalesce").field(spec);
        }
        if let Some(spec) = self.fault_servicing_spec() {
            h.field("fault-servicing").field(spec);
        }
        if self.threads > 1 {
            h.field("threads").field(&self.threads.to_string());
        }
        CellId::from_hash(h.finish())
    }

    /// The coalescing spec, normalized: `None` when the axis is off
    /// (unset or literally `off`).
    pub fn coalesce_spec(&self) -> Option<&str> {
        self.coalesce.as_deref().filter(|s| *s != "off")
    }

    /// The fault-servicing spec, normalized: `None` when the axis is at
    /// its default (unset or literally `cpu`).
    pub fn fault_servicing_spec(&self) -> Option<&str> {
        self.fault_servicing.as_deref().filter(|s| *s != "cpu")
    }

    /// Human-readable slug: `workload/policy@s<scale>e<ef>r<ratio>x<seed>`
    /// plus the inject spec when one is set. Doubles as the metrics-row
    /// label, so it never contains a comma.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}/{}@s{}e{}r{}x{}",
            self.workload,
            self.policy.label(),
            self.scale,
            self.edge_factor,
            self.ratio,
            self.seed
        );
        if let Some(inj) = &self.inject {
            s.push('+');
            s.push_str(inj);
        }
        if let Some(co) = self.coalesce_spec() {
            s.push_str("+co:");
            s.push_str(co);
        }
        if let Some(fs) = self.fault_servicing_spec() {
            s.push_str("+fs:");
            s.push_str(fs);
        }
        if self.threads > 1 {
            s.push_str(&format!("+t{}", self.threads));
        }
        debug_assert!(!s.contains(','), "cell labels must stay comma-free: {s}");
        s
    }
}

/// A cartesian sweep specification. [`SweepPlan::cells`] expands it into
/// the full matrix, in a deterministic order (workload-major, seed-minor).
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Workload names.
    pub workloads: Vec<String>,
    /// Policies.
    pub policies: Vec<CellPolicy>,
    /// R-MAT scales.
    pub scales: Vec<u32>,
    /// R-MAT edge factors.
    pub edge_factors: Vec<u32>,
    /// Oversubscription ratios.
    pub ratios: Vec<f64>,
    /// Graph seeds.
    pub seeds: Vec<u64>,
    /// Fault-injection spec applied to every cell (`None` = off).
    pub inject: Option<String>,
    /// Coalescing spec applied to every cell (`None` = off).
    pub coalesce: Option<String>,
    /// Fault-servicing spec applied to every cell (`None` = `cpu`).
    pub fault_servicing: Option<String>,
    /// Engine shard threads for every cell (1 = serial reference engine).
    pub threads: usize,
    /// Discriminator copied into every cell's [`SweepCell::tag`].
    pub tag: String,
}

impl Default for SweepPlan {
    /// The figure harness's historical mini-sweep: three representative
    /// workloads × {BASELINE, TO+UE} at the paper's evaluation point.
    fn default() -> Self {
        Self {
            workloads: vec!["BFS-TTC".into(), "PR".into(), "SSSP-TWC".into()],
            policies: vec![
                CellPolicy::Preset(ConfigName::Baseline),
                CellPolicy::Preset(ConfigName::ToUe),
            ],
            scales: vec![15],
            edge_factors: vec![16],
            ratios: vec![0.5],
            seeds: vec![42],
            inject: None,
            coalesce: None,
            fault_servicing: None,
            threads: 1,
            tag: String::new(),
        }
    }
}

impl SweepPlan {
    /// Checks the plan before expansion: every axis non-empty, every
    /// workload known to the registry, and the inject spec parseable.
    ///
    /// # Errors
    ///
    /// Returns a [`BenchError`] naming the offending axis or spec; unknown
    /// inject specs carry the registry-style known-names list.
    pub fn validate(&self) -> Result<(), BenchError> {
        for (axis, empty) in [
            ("workloads", self.workloads.is_empty()),
            ("policies", self.policies.is_empty()),
            ("scales", self.scales.is_empty()),
            ("edge_factors", self.edge_factors.is_empty()),
            ("ratios", self.ratios.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(BenchError::msg(format!("sweep plan axis `{axis}` is empty")));
            }
        }
        for w in &self.workloads {
            if !registry::irregular_names().contains(&w.as_str()) {
                return Err(BenchError::msg(format!(
                    "unknown workload `{w}` (known: {})",
                    registry::irregular_names().join(", ")
                )));
            }
        }
        if let Some(spec) = &self.inject {
            InjectConfig::parse_spec(spec).map_err(|e| BenchError::context("sweep plan", &e))?;
        }
        if let Some(spec) = &self.coalesce {
            batmem::PolicyRegistry::builtin()
                .build_coalesce(spec)
                .map_err(|e| BenchError::context("sweep plan", &e))?;
        }
        if let Some(spec) = &self.fault_servicing {
            batmem::PolicyRegistry::builtin()
                .build_servicing(spec)
                .map_err(|e| BenchError::context("sweep plan", &e))?;
        }
        for &r in &self.ratios {
            if !r.is_finite() || r <= 0.0 {
                return Err(BenchError::msg(format!("ratio {r} must be positive")));
            }
        }
        if self.threads == 0 {
            return Err(BenchError::msg("sweep plan threads must be at least 1"));
        }
        Ok(())
    }

    /// Expands the cartesian product into cells, after
    /// [`validate`](Self::validate)-ing the plan.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn cells(&self) -> Result<Vec<SweepCell>, BenchError> {
        self.validate()?;
        let mut out = Vec::new();
        for w in &self.workloads {
            for p in &self.policies {
                for &scale in &self.scales {
                    for &edge_factor in &self.edge_factors {
                        for &ratio in &self.ratios {
                            for &seed in &self.seeds {
                                out.push(SweepCell {
                                    workload: w.clone(),
                                    policy: p.clone(),
                                    scale,
                                    edge_factor,
                                    ratio,
                                    seed,
                                    inject: self.inject.clone(),
                                    coalesce: self.coalesce.clone(),
                                    fault_servicing: self.fault_servicing.clone(),
                                    threads: self.threads,
                                    tag: self.tag.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> SweepCell {
        SweepCell {
            workload: "BFS-TTC".into(),
            policy: CellPolicy::Preset(ConfigName::Baseline),
            scale: 8,
            edge_factor: 4,
            ratio: 0.5,
            seed: 42,
            inject: None,
            coalesce: None,
            fault_servicing: None,
            threads: 1,
            tag: String::new(),
        }
    }

    #[test]
    fn serial_threads_leave_pre_knob_cell_ids_unchanged() {
        // Same compatibility rule as the coalesce axis: sharded execution
        // is bit-identical to serial, and stores written before the knob
        // existed must stay resumable at the default.
        let base = cell();
        assert_eq!(SweepCell { threads: 1, ..cell() }.id(), base.id());
        assert_eq!(SweepCell { threads: 1, ..cell() }.label(), base.label());
        let sharded = SweepCell { threads: 8, ..cell() };
        assert_ne!(sharded.id(), base.id(), "threads > 1 must perturb the hash");
        assert_eq!(sharded.label(), "BFS-TTC/BASELINE@s8e4r0.5x42+t8");
    }

    #[test]
    fn default_fault_servicing_leaves_pre_axis_cell_ids_unchanged() {
        // Same compatibility rule as the coalesce axis: stores written
        // before fault-servicing existed must stay resumable.
        let base = cell();
        assert_eq!(SweepCell { fault_servicing: Some("cpu".into()), ..cell() }.id(), base.id());
        assert_eq!(
            SweepCell { fault_servicing: Some("cpu".into()), ..cell() }.label(),
            base.label()
        );
        let gpu = SweepCell { fault_servicing: Some("gpu-driven".into()), ..cell() };
        assert_ne!(gpu.id(), base.id(), "a live spec must perturb the hash");
        assert_eq!(gpu.label(), "BFS-TTC/BASELINE@s8e4r0.5x42+fs:gpu-driven");
    }

    #[test]
    fn off_coalesce_leaves_pre_axis_cell_ids_unchanged() {
        // Stores written before the coalesce axis existed must stay
        // resumable: both spellings of "off" hash identically to a cell
        // that never had the field.
        let base = cell();
        assert_eq!(SweepCell { coalesce: Some("off".into()), ..cell() }.id(), base.id());
        assert_eq!(SweepCell { coalesce: Some("off".into()), ..cell() }.label(), base.label());
        let greedy = SweepCell { coalesce: Some("greedy".into()), ..cell() };
        assert_ne!(greedy.id(), base.id(), "a live spec must perturb the hash");
        assert_eq!(greedy.label(), "BFS-TTC/BASELINE@s8e4r0.5x42+co:greedy");
    }

    #[test]
    fn cell_ids_are_stable_and_distinguish_every_field() {
        let base = cell();
        assert_eq!(base.id(), cell().id(), "same config hashes the same");
        let variants = [
            SweepCell { workload: "PR".into(), ..cell() },
            SweepCell { policy: CellPolicy::Preset(ConfigName::ToUe), ..cell() },
            SweepCell { scale: 9, ..cell() },
            SweepCell { edge_factor: 8, ..cell() },
            SweepCell { ratio: 0.75, ..cell() },
            SweepCell { seed: 43, ..cell() },
            SweepCell { inject: Some("noisy:42".into()), ..cell() },
            SweepCell { coalesce: Some("greedy:75".into()), ..cell() },
            SweepCell { fault_servicing: Some("gpu-driven:500".into()), ..cell() },
            SweepCell { threads: 8, ..cell() },
            SweepCell { tag: "alt-sim".into(), ..cell() },
        ];
        let mut ids: Vec<_> = variants.iter().map(SweepCell::id).collect();
        ids.push(base.id());
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "every field must perturb the hash");
    }

    #[test]
    fn labels_are_comma_free_and_name_the_point() {
        let c = SweepCell { inject: Some("lost:1:3".into()), ..cell() };
        let label = c.label();
        assert_eq!(label, "BFS-TTC/BASELINE@s8e4r0.5x42+lost:1:3");
        assert!(!label.contains(','));
    }

    #[test]
    fn default_plan_expands_to_the_historical_mini_sweep() {
        let cells = SweepPlan::default().cells().unwrap();
        assert_eq!(cells.len(), 6); // 3 workloads x 2 policies
        assert_eq!(cells[0].workload, "BFS-TTC");
        assert_eq!(cells[0].policy.label(), "BASELINE");
        assert_eq!(cells[5].workload, "SSSP-TWC");
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut p = SweepPlan { workloads: vec![], ..SweepPlan::default() };
        assert!(p.validate().unwrap_err().to_string().contains("workloads"));
        p = SweepPlan { workloads: vec!["NOPE".into()], ..SweepPlan::default() };
        assert!(p.validate().unwrap_err().to_string().contains("NOPE"));
        p = SweepPlan { inject: Some("chaos".into()), ..SweepPlan::default() };
        let err = p.validate().unwrap_err().to_string();
        assert!(err.contains("inject") && err.contains("noisy"), "{err}");
        p = SweepPlan { ratios: vec![0.0], ..SweepPlan::default() };
        assert!(p.validate().is_err());
        p = SweepPlan { coalesce: Some("eager".into()), ..SweepPlan::default() };
        let err = p.validate().unwrap_err().to_string();
        assert!(err.contains("eager"), "{err}");
        p = SweepPlan { fault_servicing: Some("dma".into()), ..SweepPlan::default() };
        let err = p.validate().unwrap_err().to_string();
        assert!(err.contains("dma") && err.contains("gpu-driven"), "{err}");
        p = SweepPlan { threads: 0, ..SweepPlan::default() };
        assert!(p.validate().unwrap_err().to_string().contains("threads"));
    }

    #[test]
    fn expansion_is_the_full_cartesian_product() {
        let plan = SweepPlan {
            workloads: vec!["BFS-TTC".into(), "PR".into()],
            policies: vec![
                CellPolicy::Preset(ConfigName::Baseline),
                CellPolicy::Custom(CustomPolicy::default()),
            ],
            scales: vec![8, 9],
            edge_factors: vec![4],
            ratios: vec![0.5, 0.75],
            seeds: vec![1, 2, 3],
            inject: None,
            coalesce: None,
            fault_servicing: None,
            threads: 1,
            tag: String::new(),
        };
        let cells = plan.cells().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2 * 3);
        let mut ids: Vec<_> = cells.iter().map(SweepCell::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len(), "cells are pairwise distinct");
    }
}
