//! The fault-tolerant worker pool: bounded job queue → N workers → one
//! results/writer thread streaming records into the artifact store.
//!
//! Robustness contract, per cell:
//!
//! * a panic is caught ([`std::panic::catch_unwind`]) and demoted to a
//!   `Panicked` record — it never takes down the pool;
//! * an optional wall-clock deadline is layered on top of the in-sim
//!   `watchdog_event_budget`: the attempt runs on a disposable thread and
//!   is abandoned if it blows the deadline (the in-sim watchdog
//!   eventually reaps the stray run);
//! * failed, panicked, and timed-out attempts are retried up to
//!   `max_retries` times under bounded exponential [`Backoff`], then
//!   quarantined as a typed [`CellRecord`];
//! * setting the cancel flag (the binary wires it to SIGINT) triggers a
//!   graceful drain: in-flight cells finish or time out, the queue is
//!   abandoned, the store is flushed — a killed sweep resumes losslessly
//!   because undecided cells simply have no record yet.

use super::outcome::{AttemptOutcome, CellRecord};
use super::plan::SweepCell;
use super::store::ArtifactStore;
use crate::error::BenchError;
use batmem::probes::MetricsRow;
use batmem_types::sweep::{Backoff, CellId};
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The function a worker applies to one cell. The production runner is
/// [`super::run_cell`] behind a shared graph cache; tests substitute
/// panicking, hanging, or flaky runners to exercise the failure paths.
pub type CellRunner = Arc<dyn Fn(&SweepCell) -> Result<MetricsRow, BenchError> + Send + Sync>;

/// Pool sizing and robustness knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (≥ 1; each owns an independent `Simulation` run).
    pub workers: usize,
    /// Retries after the first attempt before a cell is quarantined.
    pub max_retries: u32,
    /// Wall-clock deadline per attempt; `None` leaves only the in-sim
    /// watchdog.
    pub cell_timeout: Option<Duration>,
    /// Delay schedule between retries.
    pub backoff: Backoff,
    /// Period between progress logs on stderr; `None` disables them.
    pub progress_every: Option<Duration>,
}

impl Default for PoolConfig {
    /// All cores (capped at 16), two retries, no wall-clock deadline, the
    /// default backoff, no progress logs.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(16),
            max_retries: 2,
            cell_timeout: None,
            backoff: Backoff::default(),
            progress_every: None,
        }
    }
}

/// What one [`run_sweep`] invocation did.
#[derive(Debug)]
pub struct SweepReport {
    /// Records decided this run (completed and quarantined), in completion
    /// order.
    pub records: Vec<CellRecord>,
    /// Completed records found in the store and skipped (resume).
    pub resumed: Vec<CellRecord>,
    /// Store files discarded as half-written or corrupt.
    pub discarded: usize,
    /// Cells neither decided nor skipped (queue abandoned on cancel).
    pub abandoned: usize,
    /// Whether the sweep was cancelled mid-flight.
    pub cancelled: bool,
}

impl SweepReport {
    /// The quarantined records of this run.
    pub fn failures(&self) -> Vec<&CellRecord> {
        self.records.iter().filter(|r| !r.is_success()).collect()
    }

    /// Cells completed this run.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.is_success()).count()
    }
}

/// Runs `cells` through the pool, streaming records into `store`, skipping
/// cells the store already has completed, and flushing the merged roll-up
/// artifacts at the end (including on cancel).
///
/// # Errors
///
/// Returns a [`BenchError`] only for store-level I/O failures (open, scan,
/// flush). Per-cell failures never error — they become quarantine records.
pub fn run_sweep(
    cells: &[SweepCell],
    store: &ArtifactStore,
    cfg: &PoolConfig,
    cancel: &AtomicBool,
    runner: CellRunner,
) -> Result<SweepReport, BenchError> {
    let loaded = store.load().map_err(|e| BenchError::context("artifact store scan", &e))?;
    let done: HashSet<CellId> = loaded.completed_ids().into_iter().collect();
    let resumed: Vec<CellRecord> =
        loaded.records.into_iter().filter(CellRecord::is_success).collect();
    let pending: Vec<SweepCell> =
        cells.iter().filter(|c| !done.contains(&c.id())).cloned().collect();
    let total = pending.len();

    // Every worker hosts a full engine, and a sharded engine hosts its own
    // shard threads — oversubscribing the machine with workers × threads
    // would just interleave everything. Clamp the pool instead.
    let cell_threads = cells.iter().map(|c| c.threads.max(1)).max().unwrap_or(1);
    let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let workers = clamp_workers(cfg.workers.max(1), cell_threads, avail);
    if workers < cfg.workers.max(1) {
        eprintln!(
            "sweep: {} workers x {} engine threads exceeds the {} available \
             cores; clamping to {} workers",
            cfg.workers.max(1),
            cell_threads,
            avail,
            workers,
        );
    }
    let (job_tx, job_rx) = mpsc::sync_channel::<SweepCell>(workers * 2);
    let job_rx = Mutex::new(job_rx);
    let (rec_tx, rec_rx) = mpsc::channel::<CellRecord>();

    let mut records: Vec<CellRecord> = Vec::with_capacity(total);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let rec_tx = rec_tx.clone();
            let runner = Arc::clone(&runner);
            let job_rx = &job_rx;
            s.spawn(move || worker_loop(job_rx, &rec_tx, cfg, cancel, &runner));
        }
        drop(rec_tx);
        s.spawn(move || {
            // try_send + poll rather than a blocking send: a blocking send
            // could wedge forever if every worker exits on cancel while
            // the bounded buffer is full, and the scope would never join.
            'feed: for cell in pending {
                let mut cell = cell;
                loop {
                    if cancel.load(Ordering::SeqCst) {
                        break 'feed; // abandon the rest of the queue
                    }
                    match job_tx.try_send(cell) {
                        Ok(()) => break,
                        Err(mpsc::TrySendError::Full(c)) => {
                            cell = c;
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(mpsc::TrySendError::Disconnected(_)) => {
                            break 'feed; // every worker already exited
                        }
                    }
                }
            }
        });
        // This thread is the results thread: it owns all store writes, so
        // workers never contend on the filesystem.
        let started = Instant::now();
        let mut last_log = Instant::now();
        loop {
            match rec_rx.recv_timeout(Duration::from_millis(200)) {
                Ok(rec) => {
                    if let Err(e) = store.record(&rec) {
                        eprintln!("sweep: failed to persist cell {}: {e}", rec.id);
                    }
                    records.push(rec);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if let Some(every) = cfg.progress_every {
                if last_log.elapsed() >= every {
                    let failed = records.iter().filter(|r| !r.is_success()).count();
                    eprintln!(
                        "sweep: {}/{} cells decided ({} failed, {} resumed, {:.1}s elapsed)",
                        records.len(),
                        total,
                        failed,
                        resumed.len(),
                        started.elapsed().as_secs_f64()
                    );
                    last_log = Instant::now();
                }
            }
        }
    });

    let mut all: Vec<CellRecord> = resumed.clone();
    all.extend(records.iter().cloned());
    store.flush(&all).map_err(|e| BenchError::context("artifact store flush", &e))?;

    Ok(SweepReport {
        abandoned: total - records.len(),
        records,
        resumed,
        discarded: loaded.discarded,
        cancelled: cancel.load(Ordering::SeqCst),
    })
}

/// The worker count that keeps `workers × cell_threads ≤ avail` without
/// dropping below one worker. `requested` wins when it already fits.
fn clamp_workers(requested: usize, cell_threads: usize, avail: usize) -> usize {
    if requested * cell_threads <= avail {
        requested
    } else {
        (avail / cell_threads.max(1)).max(1)
    }
}

fn worker_loop(
    jobs: &Mutex<Receiver<SweepCell>>,
    out: &Sender<CellRecord>,
    cfg: &PoolConfig,
    cancel: &AtomicBool,
    runner: &CellRunner,
) {
    loop {
        if cancel.load(Ordering::SeqCst) {
            return; // graceful drain: stop taking new work
        }
        // Shared-receiver pattern: the lock is held across the blocking
        // recv, which is equivalent to every idle worker blocking on the
        // channel directly.
        let Ok(cell) = jobs.lock().expect("job queue lock poisoned").recv() else {
            return; // feeder done and queue drained
        };
        if cancel.load(Ordering::SeqCst) {
            return; // job was queued before cancel: abandon it
        }
        if let Some(rec) = decide_cell(&cell, cfg, cancel, runner) {
            if out.send(rec).is_err() {
                return;
            }
        }
    }
}

/// Runs one cell to a terminal record: attempt, retry under backoff,
/// quarantine. Returns `None` when cancelled mid-backoff — the cell stays
/// unrecorded so a resumed sweep re-runs it.
fn decide_cell(
    cell: &SweepCell,
    cfg: &PoolConfig,
    cancel: &AtomicBool,
    runner: &CellRunner,
) -> Option<CellRecord> {
    let id = cell.id();
    let label = cell.label();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match run_attempt(cell, cfg.cell_timeout, runner) {
            AttemptOutcome::Ok(row) => {
                return Some(CellRecord::completed(id, label, attempt, *row));
            }
            failure => {
                if attempt > cfg.max_retries {
                    return Some(CellRecord::quarantined(
                        id,
                        label,
                        failure.kind(),
                        attempt,
                        failure.error_text(),
                    ));
                }
                if !sleep_cancellable(cfg.backoff.delay(attempt), cancel) {
                    return None;
                }
            }
        }
    }
}

/// One attempt at one cell: inline when no deadline is set, on a
/// disposable thread when one is.
fn run_attempt(
    cell: &SweepCell,
    timeout: Option<Duration>,
    runner: &CellRunner,
) -> AttemptOutcome {
    let Some(deadline) = timeout else {
        return attempt_inline(cell, runner);
    };
    let (tx, rx) = mpsc::sync_channel(1);
    let cell_owned = cell.clone();
    let runner_owned = Arc::clone(runner);
    let spawned = std::thread::Builder::new()
        .name(format!("sweep-cell-{}", cell.id()))
        .spawn(move || {
            let _ = tx.send(attempt_inline(&cell_owned, &runner_owned));
        });
    if let Err(e) = spawned {
        return AttemptOutcome::Err(format!("could not spawn cell thread: {e}"));
    }
    match rx.recv_timeout(deadline) {
        Ok(outcome) => outcome,
        Err(_) => AttemptOutcome::TimedOut(format!(
            "wall-clock deadline {:.1}s exceeded; attempt abandoned (the in-sim \
             watchdog_event_budget reaps the stray run)",
            deadline.as_secs_f64()
        )),
    }
}

fn attempt_inline(cell: &SweepCell, runner: &CellRunner) -> AttemptOutcome {
    match panic::catch_unwind(AssertUnwindSafe(|| runner(cell))) {
        Ok(Ok(row)) => AttemptOutcome::Ok(Box::new(row)),
        Ok(Err(e)) => AttemptOutcome::Err(e.to_string()),
        // `&*payload`, not `&payload`: the Box would itself coerce to
        // `&dyn Any` and the downcast would always miss.
        Err(payload) => AttemptOutcome::Panicked(panic_message(&*payload)),
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sleeps `d` in small slices, returning `false` early if `cancel` is set.
fn sleep_cancellable(d: Duration, cancel: &AtomicBool) -> bool {
    let deadline = Instant::now() + d;
    loop {
        if cancel.load(Ordering::SeqCst) {
            return false;
        }
        let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
            return true;
        };
        if remaining.is_zero() {
            return true;
        }
        std::thread::sleep(remaining.min(Duration::from_millis(10)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_messages_are_extracted() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*p), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(&*p), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(panic_message(&*p), "non-string panic payload");
    }

    #[test]
    fn cancellable_sleep_honors_the_flag() {
        let cancel = AtomicBool::new(true);
        let start = Instant::now();
        assert!(!sleep_cancellable(Duration::from_secs(5), &cancel));
        assert!(start.elapsed() < Duration::from_secs(1));
        let cancel = AtomicBool::new(false);
        assert!(sleep_cancellable(Duration::from_millis(5), &cancel));
    }

    #[test]
    fn worker_clamp_preserves_workers_times_threads_budget() {
        // Fits: the request wins.
        assert_eq!(clamp_workers(4, 2, 16), 4);
        assert_eq!(clamp_workers(16, 1, 16), 16);
        // Oversubscribed: clamp to avail / threads, never below one.
        assert_eq!(clamp_workers(16, 8, 16), 2);
        assert_eq!(clamp_workers(4, 8, 16), 2);
        assert_eq!(clamp_workers(4, 32, 16), 1);
    }

    #[test]
    fn default_pool_config_is_sane() {
        let cfg = PoolConfig::default();
        assert!(cfg.workers >= 1 && cfg.workers <= 16);
        assert_eq!(cfg.max_retries, 2);
        assert!(cfg.cell_timeout.is_none());
    }
}
