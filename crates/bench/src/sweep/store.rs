//! The resumable on-disk artifact store.
//!
//! Layout under the store directory:
//!
//! ```text
//! <dir>/cells/<cell-id>.json   one flat JSON record per decided cell
//! <dir>/sweep.csv              merged MetricsRow CSV of completed cells
//! <dir>/sweep.json             merged JSON array of all cell records
//! <dir>/failed_cells.json      the quarantine report (empty array if none)
//! ```
//!
//! Records are written to a `.tmp` sibling and atomically renamed into
//! place, so a crash cannot leave a half-written `.json` behind — but the
//! loader does not rely on that: every record is re-parsed on resume, and
//! anything truncated, corrupt, or stale (`.tmp` leftovers, id/filename
//! mismatches, unparsable rows) is deleted and the cell re-run.

use super::json::{self, Value};
use super::outcome::CellRecord;
use batmem::probes::MetricsRow;
use batmem_types::sweep::{CellId, OutcomeKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What [`ArtifactStore::load`] found on disk.
#[derive(Debug, Default)]
pub struct LoadedStore {
    /// Valid records, in unspecified order.
    pub records: Vec<CellRecord>,
    /// Files discarded as half-written, corrupt, or stale.
    pub discarded: usize,
}

impl LoadedStore {
    /// The ids of cells whose records are complete-and-successful — the
    /// set a resumed sweep skips.
    pub fn completed_ids(&self) -> Vec<CellId> {
        self.records.iter().filter(|r| r.is_success()).map(|r| r.id).collect()
    }
}

/// A directory of per-cell sweep records plus merged roll-up artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("cells"))?;
        Ok(Self { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cells_dir(&self) -> PathBuf {
        self.dir.join("cells")
    }

    fn cell_path(&self, id: CellId) -> PathBuf {
        self.cells_dir().join(format!("{id}.json"))
    }

    /// Whether any per-cell record files exist (valid or not).
    pub fn has_cells(&self) -> bool {
        fs::read_dir(self.cells_dir())
            .map(|mut d| d.next().is_some())
            .unwrap_or(false)
    }

    /// Renders one record as its on-disk flat JSON document. The
    /// `"complete":true` field is written last, so even a non-atomic
    /// partial write is detectable.
    fn render(rec: &CellRecord) -> String {
        let mut s = format!(
            "{{\"v\":1,\"id\":\"{}\",\"label\":\"{}\",\"outcome\":\"{}\",\"attempts\":{}",
            rec.id,
            json::escape(&rec.label),
            rec.outcome,
            rec.attempts
        );
        if let Some(row) = &rec.row {
            s.push_str(&format!(",\"row\":\"{}\"", json::escape(&row.to_csv_row())));
        }
        if let Some(err) = &rec.error {
            s.push_str(&format!(",\"error\":\"{}\"", json::escape(err)));
        }
        s.push_str(",\"complete\":true}");
        s
    }

    fn parse(doc: &str) -> Result<CellRecord, String> {
        let pairs = json::parse_object(doc)?;
        let get_str = |k: &str| -> Result<&str, String> {
            json::get(&pairs, k)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        if json::get(&pairs, "complete").and_then(Value::as_bool) != Some(true) {
            return Err("record not marked complete".into());
        }
        if json::get(&pairs, "v").and_then(Value::as_int) != Some(1) {
            return Err("unknown record version".into());
        }
        let id: CellId = get_str("id")?.parse()?;
        let label = get_str("label")?.to_string();
        let outcome = OutcomeKind::from_label(get_str("outcome")?)
            .ok_or_else(|| "unknown outcome".to_string())?;
        let attempts = json::get(&pairs, "attempts")
            .and_then(Value::as_int)
            .ok_or("missing attempts")? as u32;
        let row = match json::get(&pairs, "row").and_then(Value::as_str) {
            Some(csv) => {
                Some(MetricsRow::parse_csv_row(csv).ok_or("unparsable metrics row")?)
            }
            None => None,
        };
        if (row.is_some()) != (outcome == OutcomeKind::Completed) {
            return Err("row presence contradicts outcome".into());
        }
        let error = json::get(&pairs, "error").and_then(Value::as_str).map(str::to_string);
        Ok(CellRecord { id, label, outcome, attempts, row, error })
    }

    /// Persists one record atomically (`.tmp` write + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn record(&self, rec: &CellRecord) -> io::Result<()> {
        let path = self.cell_path(rec.id);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, Self::render(rec))?;
        fs::rename(&tmp, &path)
    }

    /// Scans the store, returning every valid record and deleting anything
    /// half-written or corrupt so the corresponding cells re-run.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures; per-file problems are handled
    /// by discarding the file, not by erroring.
    pub fn load(&self) -> io::Result<LoadedStore> {
        let mut out = LoadedStore::default();
        for entry in fs::read_dir(self.cells_dir())? {
            let path = entry?.path();
            let is_record = path.extension().is_some_and(|e| e == "json");
            let valid = is_record
                .then(|| fs::read_to_string(&path).ok())
                .flatten()
                .and_then(|doc| Self::parse(&doc).ok())
                .filter(|rec| {
                    // The filename is the key: a mismatched id is stale.
                    path.file_stem().is_some_and(|s| s.to_string_lossy() == rec.id.to_string())
                });
            match valid {
                Some(rec) => out.records.push(rec),
                None => {
                    // Half-written, corrupt, or a `.tmp` leftover: discard
                    // so the pool re-runs the cell.
                    let _ = fs::remove_file(&path);
                    out.discarded += 1;
                }
            }
        }
        Ok(out)
    }

    /// Writes the merged roll-up artifacts from `records` (completed rows
    /// into `sweep.csv`, everything into `sweep.json`, failures into
    /// `failed_cells.json`). Records are sorted by label then id, so the
    /// merged artifacts are byte-identical however many workers produced
    /// them and in whatever order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn flush(&self, records: &[CellRecord]) -> io::Result<()> {
        let mut sorted: Vec<&CellRecord> = records.iter().collect();
        sorted.sort_by(|a, b| (&a.label, a.id).cmp(&(&b.label, b.id)));
        let mut csv = String::from(MetricsRow::csv_header());
        csv.push('\n');
        let mut all = Vec::new();
        let mut failed = Vec::new();
        for rec in &sorted {
            if let Some(row) = &rec.row {
                csv.push_str(&row.to_csv_row());
                csv.push('\n');
            } else {
                failed.push(Self::render(rec));
            }
            all.push(Self::render(rec));
        }
        fs::write(self.dir.join("sweep.csv"), csv)?;
        fs::write(self.dir.join("sweep.json"), format!("[{}]", all.join(",")))?;
        fs::write(self.dir.join("failed_cells.json"), format!("[{}]", failed.join(",")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("batmem-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn completed(id: u64) -> CellRecord {
        let row = MetricsRow { label: format!("w/p@{id}"), cycles: id, ..MetricsRow::default() };
        CellRecord::completed(CellId::from_hash(id), format!("w/p@{id}"), 1, row)
    }

    #[test]
    fn records_roundtrip_through_disk() {
        let store = ArtifactStore::open(tmpdir("roundtrip")).unwrap();
        let ok = completed(1);
        let bad = CellRecord::quarantined(
            CellId::from_hash(2),
            "w/q\"uote".into(),
            OutcomeKind::Panicked,
            3,
            "index out of bounds: the len is 4".into(),
        );
        store.record(&ok).unwrap();
        store.record(&bad).unwrap();
        let mut loaded = store.load().unwrap();
        loaded.records.sort_by_key(|r| r.id);
        assert_eq!(loaded.discarded, 0);
        assert_eq!(loaded.records, vec![ok.clone(), bad]);
        assert_eq!(loaded.completed_ids(), vec![ok.id]);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn half_written_and_corrupt_records_are_discarded() {
        let store = ArtifactStore::open(tmpdir("corrupt")).unwrap();
        store.record(&completed(1)).unwrap();
        let cells = store.dir().join("cells");
        // A truncated record (simulated crash mid-write without rename).
        let full = ArtifactStore::render(&completed(2));
        fs::write(cells.join(format!("{}.json", CellId::from_hash(2))), &full[..full.len() / 2])
            .unwrap();
        // A leftover tmp file.
        fs::write(cells.join("deadbeef.json.tmp"), "{").unwrap();
        // A record whose filename does not match its id.
        fs::write(cells.join(format!("{}.json", CellId::from_hash(9))), &full).unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.discarded, 3);
        // Discarded files are gone: a second load is clean.
        let again = store.load().unwrap();
        assert_eq!(again.discarded, 0);
        assert_eq!(again.records.len(), 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn flush_merges_sorted_rollups() {
        let store = ArtifactStore::open(tmpdir("flush")).unwrap();
        let recs = vec![
            completed(3),
            completed(1),
            CellRecord::quarantined(
                CellId::from_hash(5),
                "w/fail".into(),
                OutcomeKind::Failed,
                2,
                "deadlock at cycle 9".into(),
            ),
        ];
        store.flush(&recs).unwrap();
        let csv = fs::read_to_string(store.dir().join("sweep.csv")).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 completed rows
        assert!(lines[1].starts_with("w/p@1,"), "sorted by label: {}", lines[1]);
        let failed = fs::read_to_string(store.dir().join("failed_cells.json")).unwrap();
        assert!(failed.contains("deadlock") && failed.contains("\"outcome\":\"failed\""));
        let merged = fs::read_to_string(store.dir().join("sweep.json")).unwrap();
        assert_eq!(merged.matches("\"complete\":true").count(), 3);
        let _ = fs::remove_dir_all(store.dir());
    }
}
