//! Integration tests for the fault-tolerant sweep service: differential
//! (pool vs. serial), kill/resume, and failure-path (chaos) coverage.

use batmem::policies::ConfigName;
use batmem::probes::MetricsRow;
use batmem::SimConfig;
use batmem_bench::sweep::{
    self, run_sweep, ArtifactStore, CellPolicy, CellRunner, GraphCache, PoolConfig, SweepCell,
    SweepPlan,
};
use batmem_bench::BenchError;
use batmem_types::sweep::{Backoff, OutcomeKind};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("batmem-sweep-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small-but-real plan: one workload across every Fig. 11 preset.
fn preset_plan() -> SweepPlan {
    SweepPlan {
        workloads: vec!["BFS-TTC".into()],
        policies: ConfigName::all().iter().map(|&c| CellPolicy::Preset(c)).collect(),
        scales: vec![7],
        edge_factors: vec![4],
        ratios: vec![0.5],
        seeds: vec![42],
        inject: None,
        coalesce: None,
        fault_servicing: None,
        threads: 1,
        tag: String::new(),
    }
}

/// Fast retries for tests that exercise the backoff path.
fn fast_pool(workers: usize, max_retries: u32) -> PoolConfig {
    PoolConfig {
        workers,
        max_retries,
        cell_timeout: None,
        backoff: Backoff { base: Duration::from_millis(1), cap: Duration::from_millis(4) },
        progress_every: None,
    }
}

/// A synthetic cell for pool-only tests (never actually simulated).
fn synthetic_cell(workload: &str) -> SweepCell {
    SweepCell {
        workload: workload.into(),
        policy: CellPolicy::Preset(ConfigName::Baseline),
        scale: 7,
        edge_factor: 4,
        ratio: 0.5,
        seed: 42,
        inject: None,
        coalesce: None,
        fault_servicing: None,
        threads: 1,
        tag: "synthetic".into(),
    }
}

fn fake_row(label: String) -> MetricsRow {
    MetricsRow { label, cycles: 1, ..MetricsRow::default() }
}

/// Differential test: an N-worker sweep must produce byte-identical
/// per-cell metrics rows to running every cell serially through the same
/// `run_cell` path, across all eight paper presets.
#[test]
fn pool_matches_serial_run_on_every_preset() {
    let cells = preset_plan().cells().unwrap();
    assert_eq!(cells.len(), ConfigName::all().len());

    // Serial reference: one-by-one in plan order.
    let graphs = GraphCache::new();
    let sim = SimConfig::default();
    let serial: HashMap<String, String> = cells
        .iter()
        .map(|c| {
            let row = sweep::run_cell(c, &sim, &graphs).expect("serial run succeeds");
            (c.label(), row.to_csv_row())
        })
        .collect();

    // Pooled run, four workers.
    let store = ArtifactStore::open(tmpdir("differential")).unwrap();
    let cancel = AtomicBool::new(false);
    let report = run_sweep(
        &cells,
        &store,
        &fast_pool(4, 0),
        &cancel,
        sweep::cell_runner(SimConfig::default()),
    )
    .unwrap();

    assert!(report.failures().is_empty(), "{:?}", report.failures());
    assert_eq!(report.records.len(), cells.len());
    for rec in &report.records {
        let row = rec.row.as_ref().expect("completed record has a row");
        assert_eq!(
            Some(&row.to_csv_row()),
            serial.get(&rec.label),
            "pooled row for {} must be byte-identical to the serial run",
            rec.label
        );
    }
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Determinism through the pool: the merged `sweep.csv` must not depend on
/// worker count (records are sorted at flush).
#[test]
fn merged_artifacts_are_worker_count_independent() {
    let cells = preset_plan().cells().unwrap();
    let mut csvs = Vec::new();
    for workers in [1, 4] {
        let store = ArtifactStore::open(tmpdir(&format!("workers-{workers}"))).unwrap();
        let cancel = AtomicBool::new(false);
        let report = run_sweep(
            &cells,
            &store,
            &fast_pool(workers, 0),
            &cancel,
            sweep::cell_runner(SimConfig::default()),
        )
        .unwrap();
        assert!(report.failures().is_empty());
        csvs.push(std::fs::read_to_string(store.dir().join("sweep.csv")).unwrap());
        let _ = std::fs::remove_dir_all(store.dir());
    }
    assert_eq!(csvs[0], csvs[1], "sweep.csv must be identical for 1 vs 4 workers");
}

/// Kill/resume: drop cell records mid-sweep (simulated crash), restart with
/// the same plan, and the final artifact set must be complete and
/// byte-identical to an uninterrupted run.
#[test]
fn killed_sweep_resumes_losslessly() {
    let cells = preset_plan().cells().unwrap();
    let runner = || sweep::cell_runner(SimConfig::default());
    let cancel = AtomicBool::new(false);

    // Uninterrupted reference run.
    let ref_store = ArtifactStore::open(tmpdir("resume-ref")).unwrap();
    run_sweep(&cells, &ref_store, &fast_pool(2, 0), &cancel, runner()).unwrap();
    let reference = std::fs::read_to_string(ref_store.dir().join("sweep.csv")).unwrap();

    // "Crashed" run: complete everything, then destroy two records and
    // truncate a third to simulate a kill mid-write.
    let store = ArtifactStore::open(tmpdir("resume-crash")).unwrap();
    run_sweep(&cells, &store, &fast_pool(2, 0), &cancel, runner()).unwrap();
    let cell_file = |c: &SweepCell| store.dir().join("cells").join(format!("{}.json", c.id()));
    std::fs::remove_file(cell_file(&cells[0])).unwrap();
    std::fs::remove_file(cell_file(&cells[3])).unwrap();
    let half = std::fs::read_to_string(cell_file(&cells[5])).unwrap();
    std::fs::write(cell_file(&cells[5]), &half[..half.len() / 2]).unwrap();

    // Resume: only the three destroyed cells re-run.
    let report = run_sweep(&cells, &store, &fast_pool(2, 0), &cancel, runner()).unwrap();
    assert_eq!(report.discarded, 1, "the truncated record is detected and discarded");
    assert_eq!(report.resumed.len(), cells.len() - 3, "intact records are skipped");
    assert_eq!(report.records.len(), 3, "exactly the destroyed cells re-run");
    assert!(report.failures().is_empty());

    let resumed_csv = std::fs::read_to_string(store.dir().join("sweep.csv")).unwrap();
    assert_eq!(resumed_csv, reference, "resumed artifacts match the uninterrupted run");
    let _ = std::fs::remove_dir_all(ref_store.dir());
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Acceptance scenario: a matrix with an always-failing cell and an
/// always-panicking cell completes the rest and quarantines both with
/// typed outcomes — the pool itself never panics or errors.
#[test]
fn failing_and_panicking_cells_are_quarantined_not_fatal() {
    let cells: Vec<SweepCell> =
        ["ok-1", "boom", "ok-2", "fail", "ok-3", "ok-4"].map(synthetic_cell).into();
    let runner: CellRunner = Arc::new(|cell: &SweepCell| match cell.workload.as_str() {
        "boom" => panic!("deliberate test panic in {}", cell.workload),
        "fail" => Err(BenchError::msg("deliberate failure")),
        _ => Ok(fake_row(cell.label())),
    });
    let store = ArtifactStore::open(tmpdir("quarantine")).unwrap();
    let cancel = AtomicBool::new(false);
    let report = run_sweep(&cells, &store, &fast_pool(3, 1), &cancel, runner).unwrap();

    assert_eq!(report.completed(), 4, "healthy cells complete despite the sick ones");
    let failures = report.failures();
    assert_eq!(failures.len(), 2);
    for rec in &failures {
        assert_eq!(rec.attempts, 2, "one retry before quarantine");
        match rec.label.split('/').next().unwrap() {
            "boom" => {
                assert_eq!(rec.outcome, OutcomeKind::Panicked);
                assert!(rec.error.as_deref().unwrap().contains("deliberate test panic"));
            }
            "fail" => {
                assert_eq!(rec.outcome, OutcomeKind::Failed);
                assert!(rec.error.as_deref().unwrap().contains("deliberate failure"));
            }
            other => panic!("unexpected quarantined cell {other}"),
        }
    }
    let failed_json =
        std::fs::read_to_string(store.dir().join("failed_cells.json")).unwrap();
    assert!(failed_json.contains("\"outcome\":\"panicked\""));
    assert!(failed_json.contains("\"outcome\":\"failed\""));
    let _ = std::fs::remove_dir_all(store.dir());
}

/// A cell that blows its wall-clock deadline is abandoned, retried, and
/// finally quarantined as `timed_out`.
#[test]
fn hung_cells_hit_the_wall_clock_deadline() {
    let cells = vec![synthetic_cell("slow"), synthetic_cell("quick")];
    let runner: CellRunner = Arc::new(|cell: &SweepCell| {
        if cell.workload == "slow" {
            std::thread::sleep(Duration::from_secs(5));
        }
        Ok(fake_row(cell.label()))
    });
    let cfg = PoolConfig {
        cell_timeout: Some(Duration::from_millis(50)),
        ..fast_pool(2, 1)
    };
    let store = ArtifactStore::open(tmpdir("deadline")).unwrap();
    let cancel = AtomicBool::new(false);
    let report = run_sweep(&cells, &store, &cfg, &cancel, runner).unwrap();

    assert_eq!(report.completed(), 1);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].outcome, OutcomeKind::TimedOut);
    assert_eq!(failures[0].attempts, 2);
    assert!(
        failures[0].error.as_deref().unwrap().contains("watchdog_event_budget"),
        "the timeout record points at the in-sim watchdog layer"
    );
    let _ = std::fs::remove_dir_all(store.dir());
}

/// A flaky cell that fails its first attempt succeeds on retry, and the
/// record keeps the attempt count.
#[test]
fn flaky_cells_recover_under_retry_with_backoff() {
    let cells: Vec<SweepCell> = ["flaky-a", "flaky-b", "flaky-c"].map(synthetic_cell).into();
    let attempts: Arc<Mutex<HashMap<String, u32>>> = Arc::new(Mutex::new(HashMap::new()));
    let seen = Arc::clone(&attempts);
    let runner: CellRunner = Arc::new(move |cell: &SweepCell| {
        let mut seen = seen.lock().unwrap();
        let n = seen.entry(cell.workload.clone()).or_insert(0);
        *n += 1;
        if *n == 1 {
            Err(BenchError::msg("transient failure"))
        } else {
            Ok(fake_row(cell.label()))
        }
    });
    let store = ArtifactStore::open(tmpdir("flaky")).unwrap();
    let cancel = AtomicBool::new(false);
    let report = run_sweep(&cells, &store, &fast_pool(2, 2), &cancel, runner).unwrap();

    assert!(report.failures().is_empty());
    assert_eq!(report.completed(), 3);
    for rec in &report.records {
        assert_eq!(rec.attempts, 2, "{}: first attempt fails, retry succeeds", rec.label);
    }
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Cancelling mid-sweep drains gracefully (in-flight cells finish, the
/// queue is abandoned, the store is flushed) and a resumed sweep finishes
/// the abandoned cells losslessly.
#[test]
fn cancelled_sweep_drains_and_resumes() {
    let cells: Vec<SweepCell> = ["c1", "c2", "c3", "c4"].map(synthetic_cell).into();
    let cancel = Arc::new(AtomicBool::new(false));
    let tripwire = Arc::clone(&cancel);
    let runner: CellRunner = Arc::new(move |cell: &SweepCell| {
        // The first cell to run pulls the plug on the rest of the sweep.
        tripwire.store(true, Ordering::SeqCst);
        Ok(fake_row(cell.label()))
    });
    let store = ArtifactStore::open(tmpdir("drain")).unwrap();
    let report = run_sweep(&cells, &store, &fast_pool(1, 0), &cancel, runner).unwrap();

    assert!(report.cancelled);
    assert_eq!(report.records.len(), 1, "the in-flight cell finished and was recorded");
    assert_eq!(report.abandoned, 3, "queued cells were abandoned, not decided");

    // Resume with the flag cleared: only the abandoned cells run.
    cancel.store(false, Ordering::SeqCst);
    let runner: CellRunner = Arc::new(|cell: &SweepCell| Ok(fake_row(cell.label())));
    let report = run_sweep(&cells, &store, &fast_pool(2, 0), &cancel, runner).unwrap();
    assert!(!report.cancelled);
    assert_eq!(report.resumed.len(), 1);
    assert_eq!(report.records.len(), 3);
    assert_eq!(report.completed(), 3);
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Quarantined records do not block resume: a re-run sweep retries the
/// failed cell and overwrites its record on success.
#[test]
fn quarantined_cells_rerun_on_resume() {
    let cells = vec![synthetic_cell("heals")];
    let store = ArtifactStore::open(tmpdir("requarantine")).unwrap();
    let cancel = AtomicBool::new(false);

    let always_fail: CellRunner =
        Arc::new(|_: &SweepCell| Err(BenchError::msg("still broken")));
    let report = run_sweep(&cells, &store, &fast_pool(1, 0), &cancel, always_fail).unwrap();
    assert_eq!(report.failures().len(), 1);

    let healed: CellRunner = Arc::new(|cell: &SweepCell| Ok(fake_row(cell.label())));
    let report = run_sweep(&cells, &store, &fast_pool(1, 0), &cancel, healed).unwrap();
    assert!(report.resumed.is_empty(), "a quarantined record is not treated as done");
    assert_eq!(report.completed(), 1);

    let loaded = store.load().unwrap();
    assert_eq!(loaded.records.len(), 1);
    assert_eq!(loaded.records[0].outcome, OutcomeKind::Completed);
    let _ = std::fs::remove_dir_all(store.dir());
}

/// Chaos through the real simulator: `lost:seed:every` strands in-flight
/// batches, the in-sim watchdog surfaces a typed deadlock, and the pool
/// quarantines the cell as `failed` after retries.
#[test]
fn injected_lost_completions_quarantine_with_a_typed_error() {
    let plan = SweepPlan {
        workloads: vec!["BFS-TTC".into()],
        policies: vec![CellPolicy::Preset(ConfigName::Baseline)],
        scales: vec![7],
        edge_factors: vec![4],
        ratios: vec![0.5],
        seeds: vec![42],
        inject: Some("lost:1:2".into()),
        coalesce: None,
        fault_servicing: None,
        threads: 1,
        tag: String::new(),
    };
    let cells = plan.cells().unwrap();
    let store = ArtifactStore::open(tmpdir("inject-lost")).unwrap();
    let cancel = AtomicBool::new(false);
    let report = run_sweep(
        &cells,
        &store,
        &fast_pool(1, 1),
        &cancel,
        sweep::cell_runner(SimConfig::default()),
    )
    .unwrap();

    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].outcome, OutcomeKind::Failed);
    assert_eq!(failures[0].attempts, 2);
    let err = failures[0].error.as_deref().unwrap();
    assert!(
        err.contains("deadlock") || err.contains("livelock") || err.contains("watchdog"),
        "the simulator's typed diagnosis survives into the record: {err}"
    );
    let _ = std::fs::remove_dir_all(store.dir());
}
