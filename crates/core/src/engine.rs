//! The end-to-end simulation engine.
//!
//! Wires the GPU core model (`batmem-sim`) to the MMU (`batmem-vmem`), the
//! UVM runtime (`batmem-uvm`), and the ETC baseline (`batmem-etc`), and
//! drives them with a single deterministic event loop.

use crate::metrics::RunMetrics;
use batmem_etc::{CapacityCompression, EtcConfig, ThrottleController};
use batmem_sim::block::{BlockContext, BlockResidency};
use batmem_sim::cache::MemPath;
use batmem_sim::events::EventQueue;
use batmem_sim::ops::{Kernel, KernelSpec, Workload, WarpOp};
use batmem_sim::sm::{occupancy, Occupancy, Sm};
use batmem_sim::warp::{WarpContext, WarpPhase};
use batmem_types::dense::{PageMap, PageSet};
use batmem_types::policy::PolicyConfig;
use batmem_types::probe::{Probe, ProbeEvent, ProbeHub, SharedProbes};
use batmem_types::{AuditLevel, BlockId, Cycle, KernelId, PageId, SimConfig, SimError, SmId};
use batmem_uvm::registry::{eviction_spec_of, prefetch_spec_of};
use batmem_uvm::{
    AdaptiveSignals, CoalesceStrategy, EvictionStrategy, FaultServicingModel, InjectConfig,
    OversubscriptionHandler, PolicyRegistry, Prefetcher, StrategyCtx, UvmEvent, UvmOutput,
    UvmRuntime,
};
use batmem_vmem::{Mmu, TranslationOutcome};

/// Entry point: configure with [`Simulation::builder`], then
/// [`SimulationBuilder::try_run`] (returns a typed [`SimError`]).
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Starts building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }
}

/// Builder for a simulation run.
#[derive(Debug, Default)]
pub struct SimulationBuilder {
    config: SimConfig,
    etc: EtcConfig,
    memory_ratio: Option<f64>,
    inject: Option<InjectConfig>,
    probes: ProbeHub,
    registry: PolicyRegistry,
    eviction_spec: Option<String>,
    prefetch_spec: Option<String>,
    oversub_spec: Option<String>,
    coalesce_spec: Option<String>,
    fault_servicing_spec: Option<String>,
}

impl SimulationBuilder {
    /// Replaces the full system configuration (defaults to Table 1).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the policy knobs (see [`crate::policies`]).
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enables the ETC framework with `etc`.
    pub fn etc(mut self, etc: EtcConfig) -> Self {
        self.etc = etc;
        self
    }

    /// Replaces the policy registry the spec strings resolve against
    /// (defaults to [`PolicyRegistry::builtin`]). Register a custom
    /// strategy, pass the registry here, and name it via
    /// [`eviction`](Self::eviction)/[`prefetch`](Self::prefetch)/
    /// [`oversubscription`](Self::oversubscription) — no engine changes
    /// needed.
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Selects the eviction strategy by registry spec (`lru`, `ue`,
    /// `ideal`, `random:7`). Overrides the [`policy`](Self::policy)
    /// preset's eviction knob.
    pub fn eviction(mut self, spec: impl Into<String>) -> Self {
        self.eviction_spec = Some(spec.into());
        self
    }

    /// Selects the prefetcher by registry spec (`none`, `tree:50`).
    /// Overrides the [`policy`](Self::policy) preset's prefetch knob.
    pub fn prefetch(mut self, spec: impl Into<String>) -> Self {
        self.prefetch_spec = Some(spec.into());
        self
    }

    /// Selects the oversubscription handling by registry spec (`none`,
    /// `to`, `to:any`, `etc`, `etc:25`, `adaptive`, `adaptive:100000`).
    /// Overrides both the [`policy`](Self::policy) preset's TO knob and
    /// any [`etc`](Self::etc) framework configuration. The `adaptive`
    /// spec additionally attaches an internal probe that closes the
    /// sensing loop; it reads only in-simulation events, so runs stay
    /// deterministic.
    pub fn oversubscription(mut self, spec: impl Into<String>) -> Self {
        self.oversub_spec = Some(spec.into());
        self
    }

    /// Selects the fault-servicing cost model by registry spec (`cpu`,
    /// `gpu-driven`, `gpu-driven:500`). Defaults to `cpu`, the classic
    /// host-driver far-fault path, which keeps the timing arithmetic
    /// bit-identical to the classic model.
    pub fn fault_servicing(mut self, spec: impl Into<String>) -> Self {
        self.fault_servicing_spec = Some(spec.into());
        self
    }

    /// Selects the large-page coalescing policy by registry spec (`off`,
    /// `greedy`, `greedy:75`, `splinter:on-evict`). Defaults to `off`,
    /// which keeps the single-granularity translation path bit-identical
    /// to the classic model.
    pub fn coalesce(mut self, spec: impl Into<String>) -> Self {
        self.coalesce_spec = Some(spec.into());
        self
    }

    /// Sizes GPU memory as `ratio` × the workload footprint (the paper's
    /// oversubscription ratio; 0.5 = "50% memory oversubscription", 1.0 or
    /// more = everything fits).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    pub fn memory_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "memory ratio must be positive");
        self.memory_ratio = Some(ratio);
        self
    }

    /// Sizes GPU memory to an absolute number of pages.
    pub fn memory_pages(mut self, pages: u64) -> Self {
        self.config.uvm.gpu_mem_pages = Some(pages);
        self
    }

    /// Sets the invariant-audit level (see [`AuditLevel`]). When enabled,
    /// the run re-derives the UVM runtime's conservation laws after every
    /// event and fails with [`SimError::InvariantViolated`] on a breach.
    pub fn audit(mut self, level: AuditLevel) -> Self {
        self.config.audit = level;
        self
    }

    /// Arms deterministic fault injection (see [`InjectConfig`]).
    pub fn inject(mut self, inject: InjectConfig) -> Self {
        self.inject = Some(inject);
        self
    }

    /// Attaches an observer of the run's typed event stream (see
    /// [`Probe`]). Call repeatedly to attach several — events fan out to
    /// all of them in attachment order. With no probe attached the engine
    /// never constructs an event, so the hot path is unchanged.
    ///
    /// Shipped probes live in [`crate::probes`]: a bounded structured
    /// tracer, a per-batch timeline aggregator, and a CSV/JSON metrics
    /// sink. They are cheap handles: clone one, attach the clone, and read
    /// the results from the original after the run.
    pub fn probe(mut self, probe: impl Probe + 'static) -> Self {
        self.probes.attach(Box::new(probe));
        self
    }

    /// Overrides the forward-progress watchdog budget: the run fails with
    /// [`SimError::Livelock`] after this many consecutive events without
    /// forward progress. `0` disables the watchdog.
    pub fn watchdog_budget(mut self, events: u64) -> Self {
        self.config.watchdog_event_budget = events;
        self
    }

    /// Runs `workload` to completion, returning a typed [`SimError`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] / [`SimError::UnknownPolicy`] — the
    ///   configuration failed [`SimConfig::validate`], a policy spec did
    ///   not resolve, or the memory ratio / workload shape is degenerate;
    ///   nothing was simulated.
    /// * [`SimError::StateMachine`] / [`SimError::Accounting`] — an engine
    ///   bug surfaced mid-run; the error carries the cycle and state.
    /// * [`SimError::InvariantViolated`] — an enabled audit found a
    ///   conservation law broken (see [`audit`](Self::audit)).
    /// * [`SimError::Livelock`] / [`SimError::Deadlock`] — the watchdog or
    ///   the end-of-run check caught a run that stopped making progress.
    pub fn try_run(mut self, workload: Box<dyn Workload>) -> Result<RunMetrics, SimError> {
        self.config.validate()?;
        // Resolve the oversubscription spec first: it rewrites the TO knobs
        // and the ETC framework configuration that the sizing logic below
        // consumes.
        let (oversub, signals) = match &self.oversub_spec {
            Some(spec) => {
                let sel = self.registry.build_oversubscription(spec)?;
                self.config.policy.oversubscription = sel.to;
                self.etc = sel.etc.unwrap_or_default();
                // A closed-loop handler ships its own sensor: attach it to
                // the hub like any user probe so it sees the event stream.
                if let Some(probe) = sel.probe {
                    self.probes.attach(probe);
                }
                (sel.handler, sel.signals)
            }
            None => (
                Box::new(batmem_uvm::OversubController::new(self.config.policy.oversubscription))
                    as Box<dyn OversubscriptionHandler>,
                None,
            ),
        };
        let servicing: Box<dyn FaultServicingModel> =
            self.registry.build_servicing(self.fault_servicing_spec.as_deref().unwrap_or("cpu"))?;
        let ctx = StrategyCtx { pages_per_region: self.config.uvm.pages_per_region() };
        let eviction: Box<dyn EvictionStrategy> = match &self.eviction_spec {
            Some(spec) => self.registry.build_eviction(spec, &ctx)?,
            None => self.registry.build_eviction(eviction_spec_of(self.config.policy.eviction), &ctx)?,
        };
        let prefetcher: Box<dyn Prefetcher> = match &self.prefetch_spec {
            Some(spec) => self.registry.build_prefetcher(spec, &ctx)?,
            None => {
                self.registry.build_prefetcher(&prefetch_spec_of(self.config.policy.prefetch), &ctx)?
            }
        };
        let coalesce: Box<dyn CoalesceStrategy> =
            self.registry.build_coalesce(self.coalesce_spec.as_deref().unwrap_or("off"))?;
        if let Some(ratio) = self.memory_ratio {
            if !ratio.is_finite() || ratio <= 0.0 {
                return Err(SimError::invalid_config(
                    "memory_ratio",
                    format!("must be a positive finite multiple of the footprint, got {ratio}"),
                ));
            }
        }
        if workload.num_kernels() == 0 {
            return Err(SimError::invalid_config("workload", "launches no kernels"));
        }
        let footprint = workload.footprint_bytes();
        let page_bytes = self.config.uvm.page_bytes();
        let footprint_pages = footprint.div_ceil(page_bytes).max(1);
        if let Some(ratio) = self.memory_ratio {
            let pages = ((footprint_pages as f64 * ratio).ceil() as u64).max(1);
            self.config.uvm.gpu_mem_pages = Some(pages);
        }
        if self.etc.enabled {
            if let Some(p) = self.config.uvm.gpu_mem_pages {
                // Capacity compression inflates effective capacity.
                self.config.uvm.gpu_mem_pages = Some(self.etc.effective_capacity(p));
            }
            if self.etc.proactive_eviction {
                self.config.policy.proactive_eviction = true;
            }
        }
        Engine::new(
            self.config,
            self.etc,
            self.inject,
            self.probes,
            workload,
            footprint_pages,
            eviction,
            prefetcher,
            coalesce,
            oversub,
            servicing,
            signals,
        )
        .run()
    }
}

#[derive(Debug, Clone)]
enum Event {
    WarpWake { block: usize, warp: usize },
    RaiseFault { page: PageId },
    Uvm(UvmEvent),
    SwitchInDone { sm: usize, block: usize },
    Sample,
    EtcTick,
}


struct Engine {
    cfg: SimConfig,
    clock: Cycle,
    events: EventQueue<Event>,
    mmu: Mmu,
    mem: MemPath,
    uvm: UvmRuntime,
    oversub: Box<dyn OversubscriptionHandler>,
    throttle: ThrottleController,
    cc: CapacityCompression,
    etc_enabled: bool,
    workload: Box<dyn Workload>,
    kernel_idx: u32,
    kernel: Option<Box<dyn Kernel>>,
    spec: KernelSpec,
    occ: Occupancy,
    blocks: Vec<BlockContext>,
    block_sm: Vec<usize>,
    sms: Vec<Sm>,
    grid_cursor: u32,
    blocks_remaining: u32,
    waiters: PageMap<Vec<(usize, usize)>>,
    seen_fault_pages: PageSet,
    throttled_count: u16,
    probes: SharedProbes,
    // Recycled hot-loop scratch: taken, filled, cleared, and put back so
    // the steady-state event loop performs no heap allocations.
    uvm_out: Vec<UvmOutput>,
    waiter_pool: Vec<Vec<(usize, usize)>>,
    scratch_page_lat: Vec<(PageId, Cycle)>,
    scratch_faulted: Vec<(PageId, Cycle)>,
    // metrics
    finished_at: Option<Cycle>,
    memory_pages: Option<u64>,
    blocks_retired: u64,
    warps_retired: u64,
    mem_ops: u64,
    ctx_switches: u64,
    ctx_switch_cycles: Cycle,
    // watchdog progress counters
    ops_consumed: u64,
    pages_installed: u64,
    faults_recorded: u64,
}

impl Engine {
    #[allow(clippy::too_many_arguments)] // private constructor, one call site
    fn new(
        cfg: SimConfig,
        etc: EtcConfig,
        inject: Option<InjectConfig>,
        probes: ProbeHub,
        workload: Box<dyn Workload>,
        footprint_pages: u64,
        eviction: Box<dyn EvictionStrategy>,
        prefetcher: Box<dyn Prefetcher>,
        coalesce: Box<dyn CoalesceStrategy>,
        oversub: Box<dyn OversubscriptionHandler>,
        servicing: Box<dyn FaultServicingModel>,
        signals: Option<AdaptiveSignals>,
    ) -> Self {
        let probes = SharedProbes::new(probes);
        let mut uvm = UvmRuntime::with_strategies(
            &cfg.uvm,
            &cfg.policy,
            footprint_pages,
            eviction,
            prefetcher,
            coalesce,
        );
        uvm.set_audit(cfg.audit);
        uvm.set_probes(probes.clone());
        if let Some(i) = inject {
            uvm.set_injector(i);
        }
        uvm.set_servicing(servicing);
        if let Some(s) = signals {
            uvm.set_adaptive_signals(s);
        }
        let mmu = Mmu::new(&cfg);
        let mem = MemPath::new(&cfg.mem, cfg.gpu.num_sms);
        let throttle = ThrottleController::new(etc, cfg.gpu.num_sms);
        let cc = CapacityCompression::new(&etc);
        let num_sms = cfg.gpu.num_sms as usize;
        let memory_pages = cfg.uvm.gpu_mem_pages;
        // Kernel launch wakes every schedulable warp at the same cycle:
        // size the same-cycle ring for that burst up front.
        let max_warps = num_sms * (cfg.gpu.threads_per_sm / cfg.gpu.warp_size).max(1) as usize;
        Self {
            cfg,
            clock: 0,
            events: EventQueue::with_capacity(max_warps),
            mmu,
            mem,
            uvm,
            oversub,
            throttle,
            cc,
            etc_enabled: etc.enabled,
            workload,
            kernel_idx: 0,
            kernel: None,
            spec: KernelSpec { num_blocks: 0, threads_per_block: 32, regs_per_thread: 0 },
            occ: Occupancy { active_limit: 1, warps_per_block: 1 },
            blocks: Vec::new(),
            block_sm: Vec::new(),
            sms: (0..num_sms).map(|_| Sm::new()).collect(),
            grid_cursor: 0,
            blocks_remaining: 0,
            waiters: PageMap::with_capacity(footprint_pages as usize),
            seen_fault_pages: PageSet::with_capacity(footprint_pages as usize),
            throttled_count: 0,
            probes,
            finished_at: None,
            memory_pages,
            blocks_retired: 0,
            warps_retired: 0,
            mem_ops: 0,
            ctx_switches: 0,
            ctx_switch_cycles: 0,
            ops_consumed: 0,
            pages_installed: 0,
            faults_recorded: 0,
            uvm_out: Vec::new(),
            waiter_pool: Vec::new(),
            scratch_page_lat: Vec::new(),
            scratch_faulted: Vec::new(),
        }
    }

    fn to_enabled(&self) -> bool {
        self.cfg.policy.oversubscription.enabled
    }

    /// Everything that counts as forward progress for the watchdog: warp
    /// ops consumed, faults accepted by the runtime, pages installed,
    /// context switches, and retirements. Purely periodic events (Sample,
    /// EtcTick) and parked wakes leave this unchanged.
    fn progress_signature(&self) -> u64 {
        self.ops_consumed
            + self.faults_recorded
            + self.pages_installed
            + self.ctx_switches
            + self.warps_retired
            + self.blocks_retired
    }

    /// One-line dump of what is outstanding, for livelock/deadlock errors.
    fn describe_stuck(&self) -> String {
        let occ = self.events.occupancy();
        format!(
            "kernel {}/{}, {} blocks outstanding, {} pages awaited, {} events queued (ring {} / wheel {} / overflow {}); {}",
            self.kernel_idx,
            self.workload.num_kernels(),
            self.blocks_remaining,
            self.waiters.len(),
            self.events.len(),
            occ.ring,
            occ.wheel,
            occ.overflow,
            self.uvm.describe_state(),
        )
    }

    /// Cross-checks engine-level state against the MMU under `Full` audit:
    /// a page with registered fault waiters must not be installed (its
    /// waiters would sleep forever — exactly the livelock class the
    /// fault-injection tests provoke).
    fn audit_cross_state(&self) -> Result<(), SimError> {
        for (page, list) in self.waiters.iter() {
            if self.mmu.is_resident(page) {
                return Err(SimError::InvariantViolated {
                    cycle: self.clock,
                    invariant: "pages with fault waiters are not MMU-resident",
                    snapshot: format!("page {page} is installed but {} warps wait on it", list.len()),
                });
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<RunMetrics, SimError> {
        self.launch_kernel(0);
        if self.to_enabled() {
            let period = self.cfg.policy.oversubscription.lifetime_sample_period;
            self.events.push(period, Event::Sample);
        }
        if self.etc_enabled {
            self.events.push(self.throttle.next_tick(), Event::EtcTick);
        }
        let budget = self.cfg.watchdog_event_budget;
        let mut last_sig = self.progress_signature();
        let mut stagnant: u64 = 0;
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.clock, "time went backwards");
            self.clock = t;
            match ev {
                Event::WarpWake { block, warp } => self.on_warp_wake(block, warp)?,
                Event::RaiseFault { page } => self.on_raise_fault(page)?,
                Event::Uvm(e) => {
                    // Take/restore the recycled scratch so the runtime and
                    // apply step borrow independently; steady state never
                    // allocates.
                    let mut outs = std::mem::take(&mut self.uvm_out);
                    let res = self
                        .uvm
                        .on_event_into(e, self.clock, &mut outs)
                        .and_then(|()| self.apply_outputs(&mut outs));
                    outs.clear();
                    self.uvm_out = outs;
                    res?;
                    if self.cfg.audit >= AuditLevel::Full {
                        self.audit_cross_state()?;
                    }
                }
                Event::SwitchInDone { sm, block } => self.on_switch_in_done(sm, block)?,
                Event::Sample => self.on_sample(),
                Event::EtcTick => self.on_etc_tick(),
            }
            if budget > 0 {
                let sig = self.progress_signature();
                if sig == last_sig {
                    stagnant += 1;
                    let occ = self.events.occupancy();
                    self.probes.emit_with(self.clock, || ProbeEvent::WatchdogTick {
                        events_without_progress: stagnant,
                        ring: occ.ring as u64,
                        wheel: occ.wheel as u64,
                        overflow: occ.overflow as u64,
                    });
                    if stagnant >= budget {
                        return Err(SimError::Livelock {
                            cycle: self.clock,
                            events_without_progress: stagnant,
                            snapshot: self.describe_stuck(),
                        });
                    }
                } else {
                    last_sig = sig;
                    stagnant = 0;
                }
            }
        }
        if self.blocks_remaining > 0 || self.kernel_idx < self.workload.num_kernels() {
            return Err(SimError::Deadlock { cycle: self.clock, detail: self.describe_stuck() });
        }
        let Some(finished_at) = self.finished_at else {
            return Err(SimError::Deadlock {
                cycle: self.clock,
                detail: "work completed but no finish time was recorded".to_string(),
            });
        };
        let mmu_stats = self.mmu.stats();
        // Stray in-flight UVM events may have emitted after `finished_at`;
        // the summary goes out at the final drained clock so the trace
        // stays monotone.
        self.probes.emit_with(self.clock.max(finished_at), || ProbeEvent::TranslationSummary {
            l1_hits: mmu_stats.l1.hits,
            l1_misses: mmu_stats.l1.misses,
            large_hits: mmu_stats.large_hits(),
            walks: mmu_stats.walks,
            coalesces: mmu_stats.coalesces,
            splinters: mmu_stats.splinters,
        });
        // Only a non-default servicing model reports: under `cpu` the
        // counters are None and the event stream stays byte-identical to
        // the classic path.
        if let Some(c) = self.uvm.fault_servicing_counters() {
            self.probes.emit_with(self.clock.max(finished_at), || {
                ProbeEvent::FaultServicingSummary {
                    batches: c.batches,
                    faults: c.faults,
                    occupancy_cycles: c.occupancy_cycles,
                }
            });
        }
        self.probes.finish(finished_at);
        Ok(RunMetrics {
            cycles: finished_at,
            workload: self.workload.name(),
            footprint_bytes: self.workload.footprint_bytes(),
            memory_pages: self.memory_pages,
            kernels: self.workload.num_kernels(),
            blocks_retired: self.blocks_retired,
            warps_retired: self.warps_retired,
            mem_ops: self.mem_ops,
            uvm: self.uvm.stats(),
            mmu: mmu_stats,
            l1d: self.mem.l1_stats(),
            l2d: self.mem.l2_stats(),
            ctx_switches: self.ctx_switches,
            ctx_switch_cycles: self.ctx_switch_cycles,
            final_oversub_degree: self.oversub.degree(),
            oversub_decrements: self.oversub.decrements(),
            throttle_engagements: self.throttle.engagements(),
        })
    }

    // ---- kernel lifecycle -------------------------------------------------

    fn launch_kernel(&mut self, k: u32) {
        debug_assert!(self.waiters.is_empty(), "stale page waiters across kernels");
        let kernel = self.workload.kernel(KernelId::new(k));
        self.spec = kernel.spec();
        self.occ = occupancy(&self.cfg.gpu, &self.spec);
        let blocks = self.spec.num_blocks;
        self.probes
            .emit_with(self.clock, || ProbeEvent::KernelLaunched { kernel: k, blocks });
        self.kernel = Some(kernel);
        self.kernel_idx = k;
        self.blocks.clear();
        self.block_sm.clear();
        self.grid_cursor = 0;
        self.blocks_remaining = self.spec.num_blocks;
        for sm in &mut self.sms {
            debug_assert_eq!(sm.resident_blocks(), 0, "blocks left over from prior kernel");
            *sm = Sm::new();
        }
        let num_sms = self.sms.len();
        // Fill each SM's active slots round-robin, one slot depth at a time,
        // as the hardware block dispatcher does.
        for _slot in 0..self.occ.active_limit {
            for sm in 0..num_sms {
                self.dispatch_block(sm, true);
            }
        }
        // Thread oversubscription: provision extra inactive blocks (§4.1,
        // Fig. 6 step 1).
        if self.to_enabled() {
            self.top_up_inactive();
        }
    }

    fn next_kernel(&mut self) {
        let next = self.kernel_idx + 1;
        if next < self.workload.num_kernels() {
            self.launch_kernel(next);
        } else {
            // Execution time is when the last block retires; stray periodic
            // events (controller ticks, in-flight UVM work) may still drain
            // from the queue afterwards but do not count.
            self.kernel_idx = next;
            self.finished_at = Some(self.clock);
        }
    }

    /// Dispatches the next grid block onto `sm`. Returns false if the grid
    /// is exhausted.
    fn dispatch_block(&mut self, sm: usize, active: bool) -> bool {
        if self.grid_cursor >= self.spec.num_blocks {
            return false;
        }
        let id = BlockId::new(self.grid_cursor);
        self.grid_cursor += 1;
        let idx = self.blocks.len();
        self.blocks.push(BlockContext::new(id));
        self.block_sm.push(sm);
        if active {
            self.sms[sm].active.push(idx);
            self.activate_block(idx);
        } else {
            self.sms[sm].inactive.push(idx);
        }
        true
    }

    /// Marks `idx` active and (on first activation) builds its warps and
    /// schedules them.
    fn activate_block(&mut self, idx: usize) {
        self.blocks[idx].residency = BlockResidency::Active;
        if !self.blocks[idx].started {
            let kernel = self.kernel.as_ref().expect("kernel in flight");
            let id = self.blocks[idx].id;
            let warps: Vec<WarpContext> = (0..self.occ.warps_per_block)
                .map(|w| WarpContext::new(kernel.warp_stream(id, w as u16)))
                .collect();
            self.blocks[idx].warps = warps;
            self.blocks[idx].started = true;
            for w in 0..self.occ.warps_per_block as usize {
                self.events.push(self.clock, Event::WarpWake { block: idx, warp: w });
            }
        } else {
            for w in self.blocks[idx].ready_inactive_warps() {
                self.blocks[idx].warps[w].phase = WarpPhase::Ready;
                self.events.push(self.clock, Event::WarpWake { block: idx, warp: w });
            }
        }
    }

    fn top_up_inactive(&mut self) {
        let degree = self.oversub.degree() as usize;
        for sm in 0..self.sms.len() {
            while self.sms[sm].inactive.len() < degree {
                if !self.dispatch_block(sm, false) {
                    return;
                }
            }
        }
    }

    // ---- warp execution ---------------------------------------------------

    fn is_throttled(&self, sm: usize) -> bool {
        sm >= self.sms.len() - self.throttled_count as usize
    }

    fn on_warp_wake(&mut self, b: usize, w: usize) -> Result<(), SimError> {
        match self.blocks[b].residency {
            BlockResidency::Active => {}
            BlockResidency::Retired => {
                return Err(SimError::StateMachine {
                    cycle: self.clock,
                    event: format!("WarpWake(block:{b}, warp:{w})"),
                    state: "Retired".to_string(),
                    detail: "a retired block's warp was woken".to_string(),
                });
            }
            _ => {
                self.blocks[b].warps[w].phase = WarpPhase::ReadyInactive;
                return Ok(());
            }
        }
        let sm = self.block_sm[b];
        if self.is_throttled(sm) {
            // ETC memory-aware throttling: the SM is disabled; park the warp.
            self.blocks[b].warps[w].phase = WarpPhase::Ready;
            return Ok(());
        }
        match self.blocks[b].warps[w].take_next_op() {
            None => {
                self.blocks[b].warps[w].phase = WarpPhase::Finished;
                self.warps_retired += 1;
                if self.blocks[b].all_finished() {
                    self.retire_block(b)?;
                } else {
                    self.maybe_switch(sm)?;
                }
            }
            Some(WarpOp::Compute(c)) => {
                self.ops_consumed += 1;
                self.blocks[b].warps[w].phase = WarpPhase::Computing;
                self.events.push(self.clock + Cycle::from(c), Event::WarpWake { block: b, warp: w });
            }
            Some(op) => {
                self.ops_consumed += 1;
                self.exec_mem(b, w, op)?;
            }
        }
        Ok(())
    }

    fn exec_mem(&mut self, b: usize, w: usize, op: WarpOp) -> Result<(), SimError> {
        self.mem_ops += 1;
        let sm = self.block_sm[b];
        let geom = self.cfg.uvm.geometry;
        let l1_hit = self.cfg.tlb.l1_hit_latency;
        // Translate each distinct page once (the coalescer and TLB port
        // would collapse the duplicates anyway). The two per-op lists are
        // recycled engine scratch; error exits may drop them (the run is
        // aborting) but every success path hands them back empty.
        let mut page_lat = std::mem::take(&mut self.scratch_page_lat);
        let mut faulted = std::mem::take(&mut self.scratch_faulted);
        debug_assert!(page_lat.is_empty() && faulted.is_empty());
        // Coalesced addrs are line-sorted, so same-page runs are contiguous:
        // remembering the previous page skips most dedup scans (and the fall
        // through stays correct for unsorted streams).
        let mut prev_page = None;
        for a in op.addrs() {
            let page = geom.page_of(*a);
            if prev_page == Some(page) {
                continue;
            }
            prev_page = Some(page);
            if page_lat.iter().any(|&(p, _)| p == page) || faulted.iter().any(|&(p, _)| p == page)
            {
                continue;
            }
            let t = self.mmu.translate(SmId::new(sm as u16), page, self.clock)?;
            if t.latency > l1_hit {
                // L1 TLB miss: refresh the page's LRU stamp (the manager's
                // aged-LRU approximation).
                self.uvm.touch(page);
            }
            match t.outcome {
                TranslationOutcome::Resident(_) => page_lat.push((page, t.latency)),
                TranslationOutcome::Fault => faulted.push((page, t.latency)),
            }
        }
        if faulted.is_empty() {
            let cc = self.cc.access_penalty();
            let mut total: Cycle = 0;
            let mut prev: Option<(_, Cycle)> = None;
            for a in op.addrs() {
                let page = geom.page_of(*a);
                let tl = match prev {
                    Some((p, l)) if p == page => l,
                    _ => {
                        let Some(l) =
                            page_lat.iter().find(|&&(p, _)| p == page).map(|&(_, l)| l)
                        else {
                            return Err(SimError::Accounting {
                                cycle: self.clock,
                                detail: format!(
                                    "mem op touched page {page} that was never translated"
                                ),
                            });
                        };
                        prev = Some((page, l));
                        l
                    }
                };
                let dl = self.mem.access(sm, *a) + cc;
                total = total.max(tl + dl);
            }
            self.blocks[b].warps[w].phase = WarpPhase::MemWait;
            self.events.push(self.clock + total, Event::WarpWake { block: b, warp: w });
            page_lat.clear();
            self.scratch_page_lat = page_lat;
            self.scratch_faulted = faulted;
        } else {
            // The warp stalls on its faulting pages. Replay is per-lane, as
            // on real hardware: lanes whose pages were resident complete
            // now, and only the faulted addresses re-issue — this also
            // guarantees forward progress when capacity is smaller than a
            // single op's page set (each replay resolves at least the page
            // that just arrived).
            // Collects into an AddrList: at most the original op's (warp-
            // bounded) transactions, so the retry stays allocation-free.
            let retry_addrs: batmem_sim::ops::AddrList = op
                .addrs()
                .iter()
                .filter(|a| faulted.iter().any(|&(p, _)| p == geom.page_of(**a)))
                .copied()
                .collect();
            let retry_op = match &op {
                WarpOp::Store(_) => WarpOp::Store(retry_addrs),
                _ => WarpOp::Load(retry_addrs),
            };
            let n = faulted.len() as u32;
            {
                let warp = &mut self.blocks[b].warps[w];
                warp.pending_retry = Some(retry_op);
                warp.waiting_pages = n;
                warp.phase = WarpPhase::FaultBlocked;
            }
            let block_id = self.blocks[b].id;
            self.probes.emit_with(self.clock, || ProbeEvent::WarpStalled {
                sm: sm as u16,
                block: block_id.index() as u32,
                warp: w as u16,
                waiting_pages: n,
            });
            for (page, tl) in faulted.drain(..) {
                match self.waiters.get_mut(page) {
                    Some(list) => list.push((b, w)),
                    None => {
                        let mut list = self.waiter_pool.pop().unwrap_or_default();
                        list.push((b, w));
                        self.waiters.insert(page, list);
                    }
                }
                // The fault reaches the fault buffer when the walk fails.
                self.events.push(self.clock + tl, Event::RaiseFault { page });
            }
            page_lat.clear();
            self.scratch_page_lat = page_lat;
            self.scratch_faulted = faulted;
            self.maybe_switch(sm)?;
        }
        Ok(())
    }

    fn on_raise_fault(&mut self, page: PageId) -> Result<(), SimError> {
        // The page may have been migrated (or scheduled) since the walk
        // failed; replay would find it resident.
        if self.mmu.is_resident(page) || self.uvm.is_inflight(page) || self.uvm.is_resident(page) {
            return Ok(());
        }
        if self.etc_enabled {
            let refault = !self.seen_fault_pages.insert(page);
            self.throttle.on_fault(refault);
        }
        let mut outs = std::mem::take(&mut self.uvm_out);
        let res = self.uvm.record_fault_into(page, self.clock, &mut outs).and_then(|()| {
            self.faults_recorded += 1;
            self.apply_outputs(&mut outs)
        });
        outs.clear();
        self.uvm_out = outs;
        res
    }

    /// Applies and drains the runtime's commands; `outs` is the engine's
    /// recycled scratch and comes back empty.
    fn apply_outputs(&mut self, outs: &mut Vec<UvmOutput>) -> Result<(), SimError> {
        for o in outs.drain(..) {
            match o {
                UvmOutput::Schedule { at, event } => {
                    self.events.push(at.max(self.clock), Event::Uvm(event));
                }
                UvmOutput::Install { page, frame } => {
                    self.mmu.install(page, frame, self.clock)?;
                    self.pages_installed += 1;
                    self.wake_waiters(page)?;
                }
                UvmOutput::Evict { page } => {
                    self.mmu.evict(page, self.clock)?;
                }
                UvmOutput::Coalesce { region } => {
                    self.mmu.promote(region, self.clock)?;
                }
                UvmOutput::Splinter { region } => {
                    self.mmu.splinter(region, self.clock)?;
                }
            }
        }
        Ok(())
    }

    fn wake_waiters(&mut self, page: PageId) -> Result<(), SimError> {
        let Some(mut list) = self.waiters.remove(page) else { return Ok(()) };
        for &(b, w) in &list {
            if self.blocks[b].warps[w].page_arrived() {
                let block_id = self.blocks[b].id;
                let sm = self.block_sm[b];
                self.probes.emit_with(self.clock, || ProbeEvent::WarpResumed {
                    sm: sm as u16,
                    block: block_id.index() as u32,
                    warp: w as u16,
                });
                match self.blocks[b].residency {
                    BlockResidency::Active => {
                        self.blocks[b].warps[w].phase = WarpPhase::Ready;
                        self.events.push(self.clock, Event::WarpWake { block: b, warp: w });
                    }
                    _ => {
                        self.blocks[b].warps[w].phase = WarpPhase::ReadyInactive;
                        // An inactive block just became runnable: a stalled
                        // active block can now yield to it.
                        let sm = self.block_sm[b];
                        self.maybe_switch(sm)?;
                    }
                }
            }
        }
        // Recycle the waiter list's capacity for the next faulting page.
        list.clear();
        self.waiter_pool.push(list);
        Ok(())
    }

    // ---- thread oversubscription (VT context switching) --------------------

    fn maybe_switch(&mut self, sm: usize) -> Result<(), SimError> {
        if !self.to_enabled() || !self.oversub.switching_allowed() {
            return Ok(());
        }
        let trigger = self.cfg.policy.oversubscription.trigger;
        let out = self.sms[sm]
            .active
            .iter()
            .copied()
            .find(|&b| self.blocks[b].residency == BlockResidency::Active && self.blocks[b].is_fully_stalled(trigger));
        let Some(out) = out else { return Ok(()) };
        let inc = self.sms[sm]
            .inactive
            .iter()
            .copied()
            .find(|&b| self.blocks[b].residency == BlockResidency::Inactive && self.blocks[b].is_switch_in_ready());
        let Some(inc) = inc else { return Ok(()) };
        let cost = self
            .cfg
            .gpu
            .ctx_switch_cycles(self.spec.threads_per_block, self.spec.regs_per_thread);
        let done = self.sms[sm].begin_switch(self.clock, cost);
        self.ctx_switches += 1;
        self.ctx_switch_cycles += cost;
        self.probes.emit_with(self.clock, || ProbeEvent::ContextSwitch {
            sm: sm as u16,
            cost,
            restore: false,
        });
        self.blocks[out].residency = BlockResidency::Inactive;
        self.sms[sm].deactivate(out, self.clock)?;
        self.blocks[inc].residency = BlockResidency::SwitchingIn;
        self.events.push(done, Event::SwitchInDone { sm, block: inc });
        Ok(())
    }

    fn on_switch_in_done(&mut self, sm: usize, block: usize) -> Result<(), SimError> {
        self.sms[sm].activate(block, self.clock)?;
        self.activate_block(block);
        // Chain: another active block may be stalled with another inactive
        // block ready.
        self.maybe_switch(sm)
    }

    // ---- retirement and refill ---------------------------------------------

    fn retire_block(&mut self, b: usize) -> Result<(), SimError> {
        let sm = self.block_sm[b];
        self.blocks[b].residency = BlockResidency::Retired;
        self.sms[sm].remove(b, self.clock)?;
        self.blocks_retired += 1;
        self.blocks_remaining -= 1;
        if self.blocks_remaining == 0 {
            self.next_kernel();
            return Ok(());
        }
        // Refill the freed active slot: prefer a resident inactive block
        // (restore-only context cost), then a fresh grid block.
        let inactive_pick = self.sms[sm]
            .inactive
            .iter()
            .copied()
            .find(|&x| self.blocks[x].residency == BlockResidency::Inactive && self.blocks[x].is_switch_in_ready())
            .or_else(|| {
                self.sms[sm]
                    .inactive
                    .iter()
                    .copied()
                    .find(|&x| self.blocks[x].residency == BlockResidency::Inactive)
            });
        if self.to_enabled() {
            if let Some(inc) = inactive_pick {
                let restore = self
                    .cfg
                    .gpu
                    .ctx_switch_cycles(self.spec.threads_per_block, self.spec.regs_per_thread)
                    / 2;
                let done = self.sms[sm].begin_switch(self.clock, restore);
                self.ctx_switches += 1;
                self.ctx_switch_cycles += restore;
                self.probes.emit_with(self.clock, || ProbeEvent::ContextSwitch {
                    sm: sm as u16,
                    cost: restore,
                    restore: true,
                });
                self.blocks[inc].residency = BlockResidency::SwitchingIn;
                self.events.push(done, Event::SwitchInDone { sm, block: inc });
                self.top_up_inactive();
                return Ok(());
            }
        }
        self.dispatch_block(sm, true);
        if self.to_enabled() {
            self.top_up_inactive();
        }
        Ok(())
    }

    // ---- periodic controllers ----------------------------------------------

    fn on_sample(&mut self) {
        if !self.to_enabled() {
            return;
        }
        let sample = self.uvm.sample_lifetime();
        self.oversub.on_sample(sample);
        // A raised degree provisions more inactive blocks immediately.
        self.top_up_inactive();
        if self.kernel_idx < self.workload.num_kernels() {
            let period = self.cfg.policy.oversubscription.lifetime_sample_period;
            self.events.push(self.clock + period, Event::Sample);
        }
    }

    fn on_etc_tick(&mut self) {
        if self.throttle.tick(self.clock) {
            self.apply_throttle();
        }
        if self.kernel_idx < self.workload.num_kernels() {
            self.events.push(self.throttle.next_tick().max(self.clock + 1), Event::EtcTick);
        }
    }

    fn apply_throttle(&mut self) {
        let new_count = self.throttle.throttled_sms();
        let old_count = self.throttled_count;
        self.throttled_count = new_count;
        if new_count < old_count {
            // SMs came back: release their parked warps.
            let lo = self.sms.len() - old_count as usize;
            let hi = self.sms.len() - new_count as usize;
            for sm in lo..hi {
                // Nothing below mutates the SM's active list, so index into
                // it directly instead of cloning it per released SM.
                for i in 0..self.sms[sm].active.len() {
                    let b = self.sms[sm].active[i];
                    for w in 0..self.blocks[b].warps.len() {
                        if self.blocks[b].warps[w].phase == WarpPhase::Ready {
                            self.events.push(self.clock, Event::WarpWake { block: b, warp: w });
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_types::policy::{EvictionPolicy, PrefetchPolicy, SwitchTrigger, ToConfig};
    use batmem_workloads::synthetic::{SharedPages, Strided};

    fn no_prefetch(mut p: PolicyConfig) -> PolicyConfig {
        p.prefetch = PrefetchPolicy::None;
        p
    }

    #[test]
    fn single_warp_single_page_timing() {
        // One block, one warp, one page, one load: time = walk + ISR +
        // handling + transfer + retry pipeline.
        let w = Strided::new(1, 32, 32, 1, 0, 1);
        let m = Simulation::builder()
            .policy(no_prefetch(PolicyConfig::baseline()))
            .try_run(Box::new(w)).unwrap();
        assert_eq!(m.uvm.num_batches(), 1);
        assert_eq!(m.uvm.batches[0].faults, 1);
        // Lower bound: ISR (1k) + handling (20k) + page transfer (~4.2k).
        assert!(m.cycles > 25_000, "{}", m.cycles);
        assert!(m.cycles < 40_000, "{}", m.cycles);
    }

    #[test]
    fn shared_page_fault_wakes_all_waiters() {
        // 64 blocks all reading the same 3 pages: one batch serves everyone.
        let w = SharedPages::new(64, 256, 32, 3, 10);
        let m = Simulation::builder()
            .policy(no_prefetch(PolicyConfig::baseline()))
            .try_run(Box::new(w)).unwrap();
        let faults: u64 = m.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
        assert_eq!(faults, 3, "shared pages must fault once each");
        assert_eq!(m.blocks_retired, 64);
    }

    #[test]
    fn to_context_switches_on_fault_stalls() {
        // Tiny capacity + per-warp disjoint pages: active blocks stall fully
        // and the provisioned inactive blocks must switch in.
        let w = Strided::new(200, 256, 56, 2, 50, 3);
        let mut policy = no_prefetch(PolicyConfig::to_only());
        policy.oversubscription = ToConfig { max_extra_blocks: 3, ..ToConfig::enabled() };
        let m = Simulation::builder().policy(policy).memory_ratio(0.25).try_run(Box::new(w)).unwrap();
        assert!(m.ctx_switches > 0, "no switches despite fault stalls");
        assert!(m.ctx_switch_cycles > 0);
        assert_eq!(m.blocks_retired, 200);
    }

    #[test]
    fn any_stall_trigger_switches_without_faults() {
        let w = Strided::new(200, 256, 56, 2, 0, 4);
        let mut policy = no_prefetch(PolicyConfig::to_only());
        policy.oversubscription =
            ToConfig { trigger: SwitchTrigger::AnyStall, ..ToConfig::enabled() };
        let m = Simulation::builder().policy(policy).try_run(Box::new(w)).unwrap();
        assert_eq!(m.uvm.evictions, 0);
        assert!(m.ctx_switches > 0, "AnyStall must switch on memory stalls");
    }

    #[test]
    fn fault_stall_trigger_switches_no_more_than_any_stall() {
        // First-touch demand faults exist even with unlimited memory, so
        // FaultStall may switch — but AnyStall adds every memory stall as a
        // trigger, so it can never switch less.
        let run = |trigger: SwitchTrigger| {
            let w = Strided::new(200, 256, 56, 2, 0, 4);
            let mut policy = no_prefetch(PolicyConfig::to_only());
            policy.oversubscription = ToConfig { trigger, ..ToConfig::enabled() };
            Simulation::builder().policy(policy).try_run(Box::new(w)).unwrap()
        };
        let fault_stall = run(SwitchTrigger::FaultStall);
        let any_stall = run(SwitchTrigger::AnyStall);
        assert!(fault_stall.ctx_switches <= any_stall.ctx_switches);
        assert!(any_stall.ctx_switches > 0);
    }

    #[test]
    fn severe_oversubscription_still_terminates() {
        // Capacity 2 pages, ops spanning more pages than capacity: the
        // per-lane replay rule must guarantee forward progress.
        let w = SharedPages::new(8, 256, 32, 12, 5);
        let m = Simulation::builder()
            .policy(no_prefetch(PolicyConfig::baseline()))
            .memory_pages(2)
            .try_run(Box::new(w)).unwrap();
        assert_eq!(m.blocks_retired, 8);
        assert!(m.uvm.evictions > 0);
        assert!(m.uvm.peak_resident_pages <= 2);
    }

    #[test]
    fn severe_oversubscription_terminates_under_ue() {
        let w = SharedPages::new(8, 256, 32, 12, 5);
        let mut policy = no_prefetch(PolicyConfig::ue_only());
        policy.eviction = EvictionPolicy::Unobtrusive;
        let m = Simulation::builder().policy(policy).memory_pages(2).try_run(Box::new(w)).unwrap();
        assert_eq!(m.blocks_retired, 8);
    }

    #[test]
    fn compute_only_workload_never_faults() {
        // repeats * compute with one page per warp: after the first touch,
        // everything is compute; the page count equals warps.
        let w = Strided::new(4, 64, 16, 1, 1_000, 16);
        let m = Simulation::builder().policy(no_prefetch(PolicyConfig::baseline())).try_run(Box::new(w)).unwrap();
        let faults: u64 = m.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
        assert_eq!(faults, 4 * 2); // 4 blocks x 2 warps x 1 page
        assert!(m.mem_ops > faults);
    }

    #[test]
    fn mem_ops_count_replays() {
        let w = Strided::new(1, 32, 32, 4, 0, 1);
        let m = Simulation::builder().policy(no_prefetch(PolicyConfig::baseline())).try_run(Box::new(w)).unwrap();
        // 4 loads + 4 replays after their faults.
        assert_eq!(m.mem_ops, 8);
    }

    #[test]
    fn builder_ratio_sets_capacity_from_footprint() {
        let w = Strided::new(4, 256, 32, 4, 10, 1); // 4*8*4 = 128 pages
        let m = Simulation::builder()
            .policy(no_prefetch(PolicyConfig::baseline()))
            .memory_ratio(0.25)
            .try_run(Box::new(w)).unwrap();
        assert_eq!(m.memory_pages, Some(32));
    }

    #[test]
    #[should_panic(expected = "memory ratio must be positive")]
    fn zero_ratio_panics() {
        let _ = Simulation::builder().memory_ratio(0.0);
    }
}
