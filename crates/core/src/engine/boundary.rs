//! The shard boundary: every effect that escapes one SM shard.
//!
//! Splitting the engine across threads is only sound if the set of
//! cross-shard interactions is explicit. [`ShardEffect`] enumerates that
//! set — nothing else an SM-local handler does is visible outside its
//! shard — and [`ShardBoundary`] is the single channel those effects
//! travel through:
//!
//! * [`ImmediateBoundary`] — the coordinator/serial implementation. Each
//!   effect lands in the global event wheel at once, producing exactly the
//!   `(time, seq)` order the pre-split engine produced with direct pushes.
//! * [`RecordingBoundary`] — the shard-worker implementation. Effects are
//!   appended to a log in emission order with **relative** timestamps; the
//!   coordinator later replays the log at a base cycle (the barrier
//!   merge), re-establishing the serial `(time, seq)` order because logs
//!   are merged in the same key order the serial engine would have emitted
//!   them in.
//!
//! One cross-shard action is deliberately *not* a timed effect: block
//! retirement. Retirement is the coordinator's synchronous response to the
//! final warp wake (it mutates the shared `blocks_remaining` counter and
//! immediately refills the SM's active slot); routing it through the wheel
//! would defer it behind other same-cycle events and reorder the probe
//! stream relative to the serial reference. It crosses the boundary as a
//! direct call on the coordinator instead, and shard workers never retire
//! blocks.

use batmem_sim::events::EventQueue;
use batmem_types::{Cycle, PageId};
use batmem_uvm::UvmEvent;

use super::Event;

/// One cross-shard effect, tagged with the cycle it takes effect at.
///
/// Under [`RecordingBoundary`] the cycle is *relative* to the merge base
/// (the cycle the coordinator replays the log at); under
/// [`ImmediateBoundary`] it is absolute.
#[derive(Debug, Clone)]
pub(super) enum ShardEffect {
    /// Schedule warp `warp` of block `block` to issue at `at`. Covers both
    /// first-activation wakes and page-arrival waiter wakeups
    /// (`wake_waiters`): from the boundary's perspective they are the same
    /// effect — a warp becomes runnable on some SM.
    ///
    /// In a recorded log, `block` is the block's **grid index**; the
    /// coordinator remaps it to the engine's block slot at merge time
    /// (shard workers fabricate ahead of dispatch, so they cannot know
    /// slot indices).
    WakeWarp { at: Cycle, block: usize, warp: usize },
    /// A deferred memory transaction's latency has been resolved by bank
    /// replay: warp `warp` of block `block` wakes at `at`. Semantically a
    /// [`ShardEffect::WakeWarp`], but kept distinct so merge diagnostics
    /// can tell data-path wakes from fabrication wakes; `block` here is
    /// always an engine slot index (bank replay happens after activation),
    /// so merge does **not** remap it.
    MemDone { at: Cycle, block: usize, warp: usize },
    /// A failed walk delivers a far fault for `page` to the shared fault
    /// buffer at `at`.
    RaiseFault { at: Cycle, page: PageId },
    /// A scheduled UVM pipeline step (batch window close, PCIe completion,
    /// servicing occupancy) reaches the shared runtime at `at`.
    Uvm { at: Cycle, event: UvmEvent },
    /// A TO context switch-in of `block` on `sm` completes at `at`.
    SwitchIn { at: Cycle, sm: usize, block: usize },
    /// The TO lifetime-sampling controller ticks at `at`.
    Sample { at: Cycle },
    /// The ETC throttle controller ticks at `at`.
    EtcTick { at: Cycle },
}

impl ShardEffect {
    /// The cycle this effect takes effect at.
    pub(super) fn at(&self) -> Cycle {
        match *self {
            ShardEffect::WakeWarp { at, .. }
            | ShardEffect::MemDone { at, .. }
            | ShardEffect::RaiseFault { at, .. }
            | ShardEffect::Uvm { at, .. }
            | ShardEffect::SwitchIn { at, .. }
            | ShardEffect::Sample { at }
            | ShardEffect::EtcTick { at } => at,
        }
    }

    /// Whether this effect interacts with the shared UVM/controller state
    /// (everything except a warp wake). These are the points the
    /// conservative time window is derived from: a shard may not advance
    /// past the earliest pending one.
    pub(super) fn is_uvm_interaction(&self) -> bool {
        !matches!(self, ShardEffect::WakeWarp { .. } | ShardEffect::MemDone { .. })
    }
}

/// The channel cross-shard effects travel through.
pub(super) trait ShardBoundary {
    /// Delivers `effect` toward the global event wheel.
    fn cross(&mut self, events: &mut EventQueue<Event>, effect: ShardEffect);
}

/// Applies effects to the global wheel immediately (the serial reference
/// path and the coordinator's own handlers).
#[derive(Debug, Default)]
pub(super) struct ImmediateBoundary;

impl ShardBoundary for ImmediateBoundary {
    #[inline]
    fn cross(&mut self, events: &mut EventQueue<Event>, effect: ShardEffect) {
        match effect {
            ShardEffect::WakeWarp { at, block, warp }
            | ShardEffect::MemDone { at, block, warp } => {
                events.push(at, Event::WarpWake { block, warp });
            }
            ShardEffect::RaiseFault { at, page } => events.push(at, Event::RaiseFault { page }),
            ShardEffect::Uvm { at, event } => events.push(at, Event::Uvm(event)),
            ShardEffect::SwitchIn { at, sm, block } => {
                events.push(at, Event::SwitchInDone { sm, block });
            }
            ShardEffect::Sample { at } => events.push(at, Event::Sample),
            ShardEffect::EtcTick { at } => events.push(at, Event::EtcTick),
        }
    }
}

/// Records effects (with relative timestamps) instead of applying them;
/// shard workers run behind one of these and ship the log to the
/// coordinator, which replays it at the merge barrier.
#[derive(Debug, Default)]
pub(super) struct RecordingBoundary {
    log: Vec<ShardEffect>,
}

impl RecordingBoundary {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Appends `effect` to the log. Inherent (not only via the trait) so
    /// workers that never touch an event queue can record directly.
    pub(super) fn record(&mut self, effect: ShardEffect) {
        self.log.push(effect);
    }

    /// The recorded effects in emission (seq) order.
    pub(super) fn into_log(self) -> Vec<ShardEffect> {
        self.log
    }
}

impl ShardBoundary for RecordingBoundary {
    fn cross(&mut self, _events: &mut EventQueue<Event>, effect: ShardEffect) {
        self.record(effect);
    }
}

/// Replays one recorded log into the wheel at absolute base cycle `base`,
/// remapping recorded grid block indices through `remap_block`. Effects
/// land in log (seq) order, so replaying logs in the serial engine's key
/// order reproduces its `(time, seq)` order exactly.
pub(super) fn merge_log(
    events: &mut EventQueue<Event>,
    base: Cycle,
    log: Vec<ShardEffect>,
    mut remap_block: impl FnMut(usize) -> usize,
) {
    let mut boundary = ImmediateBoundary;
    for effect in log {
        let shifted = match effect {
            ShardEffect::WakeWarp { at, block, warp } => {
                ShardEffect::WakeWarp { at: base + at, block: remap_block(block), warp }
            }
            // Slot-indexed already (recorded at flush time, post-activation).
            ShardEffect::MemDone { at, block, warp } => {
                ShardEffect::MemDone { at: base + at, block, warp }
            }
            ShardEffect::RaiseFault { at, page } => {
                ShardEffect::RaiseFault { at: base + at, page }
            }
            ShardEffect::Uvm { at, event } => ShardEffect::Uvm { at: base + at, event },
            ShardEffect::SwitchIn { at, sm, block } => {
                ShardEffect::SwitchIn { at: base + at, sm, block: remap_block(block) }
            }
            ShardEffect::Sample { at } => ShardEffect::Sample { at: base + at },
            ShardEffect::EtcTick { at } => ShardEffect::EtcTick { at: base + at },
        };
        boundary.cross(events, shifted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drains a queue into a comparable `(time, debug)` trace.
    fn drain(mut q: EventQueue<Event>) -> Vec<(Cycle, String)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            out.push((t, format!("{ev:?}")));
        }
        out
    }

    proptest! {
        /// The merge oracle: partition a serial emission schedule into
        /// per-block logs recorded by round-robin shard owners, replay
        /// them in serial key order — the wheel must pop the identical
        /// `(time, seq)` sequence it pops when the effects are pushed
        /// directly. Relative times draw from a small range so same-cycle
        /// ties (where only seq breaks the tie) are common rather than
        /// exceptional.
        #[test]
        fn windowed_shard_merge_matches_serial_order(
            shards in 1usize..6,
            bases in prop::collection::vec(0u64..50, 1..12),
            rels in prop::collection::vec(prop::collection::vec(0u64..8, 1..9), 1..12),
        ) {
            let blocks = bases.len().min(rels.len());
            // Serial reference: each block's wakes pushed directly at its
            // activation base, blocks in key order.
            let mut imm = ImmediateBoundary;
            let mut serial = EventQueue::with_capacity(8);
            for b in 0..blocks {
                for (w, rel) in rels[b].iter().enumerate() {
                    imm.cross(&mut serial, ShardEffect::WakeWarp {
                        at: bases[b] + rel,
                        block: b,
                        warp: w,
                    });
                }
            }
            // Sharded: block b is fabricated by shard b % shards, which
            // records relative-time effects under grid numbering; the
            // coordinator merges per block in the same key order,
            // remapping grid ids to engine slots.
            let mut logs: Vec<(usize, Vec<ShardEffect>)> = Vec::new();
            for shard in 0..shards {
                for b in (shard..blocks).step_by(shards) {
                    let mut rec = RecordingBoundary::new();
                    for (w, rel) in rels[b].iter().enumerate() {
                        rec.record(ShardEffect::WakeWarp { at: *rel, block: b + 1000, warp: w });
                    }
                    logs.push((b, rec.into_log()));
                }
            }
            logs.sort_by_key(|&(b, _)| b); // the coordinator's activation (key) order
            let mut merged = EventQueue::with_capacity(8);
            for (b, log) in logs {
                merge_log(&mut merged, bases[b], log, |grid| {
                    prop_assert_eq!(grid, b + 1000, "grid id survived fabrication");
                    b
                });
            }
            prop_assert_eq!(drain(serial), drain(merged));
        }
    }
}
