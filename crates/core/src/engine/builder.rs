//! [`Simulation`] and [`SimulationBuilder`]: the public entry point.

use batmem_etc::EtcConfig;
use batmem_sim::ops::Workload;
use batmem_types::policy::PolicyConfig;
use batmem_types::probe::{Probe, ProbeHub};
use batmem_types::{AuditLevel, SimConfig, SimError};
use batmem_uvm::registry::{eviction_spec_of, prefetch_spec_of};
use batmem_uvm::{
    CoalesceStrategy, EvictionStrategy, FaultServicingModel, InjectConfig, OversubscriptionHandler,
    PolicyRegistry, Prefetcher, StrategyCtx,
};

use super::Engine;
use crate::metrics::RunMetrics;

/// Entry point: configure with [`Simulation::builder`], then
/// [`SimulationBuilder::try_run`] (returns a typed [`SimError`]).
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Starts building a simulation.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }
}

/// Builder for a simulation run.
#[derive(Debug, Default)]
pub struct SimulationBuilder {
    config: SimConfig,
    etc: EtcConfig,
    memory_ratio: Option<f64>,
    inject: Option<InjectConfig>,
    probes: ProbeHub,
    registry: PolicyRegistry,
    eviction_spec: Option<String>,
    prefetch_spec: Option<String>,
    oversub_spec: Option<String>,
    coalesce_spec: Option<String>,
    fault_servicing_spec: Option<String>,
    threads: usize,
}

impl SimulationBuilder {
    /// Replaces the full system configuration (defaults to Table 1).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the policy knobs (see [`crate::policies`]).
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enables the ETC framework with `etc`.
    pub fn etc(mut self, etc: EtcConfig) -> Self {
        self.etc = etc;
        self
    }

    /// Replaces the policy registry the spec strings resolve against
    /// (defaults to [`PolicyRegistry::builtin`]). Register a custom
    /// strategy, pass the registry here, and name it via
    /// [`eviction`](Self::eviction)/[`prefetch`](Self::prefetch)/
    /// [`oversubscription`](Self::oversubscription) — no engine changes
    /// needed.
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Selects the eviction strategy by registry spec (`lru`, `ue`,
    /// `ideal`, `random:7`). Overrides the [`policy`](Self::policy)
    /// preset's eviction knob.
    pub fn eviction(mut self, spec: impl Into<String>) -> Self {
        self.eviction_spec = Some(spec.into());
        self
    }

    /// Selects the prefetcher by registry spec (`none`, `tree:50`).
    /// Overrides the [`policy`](Self::policy) preset's prefetch knob.
    pub fn prefetch(mut self, spec: impl Into<String>) -> Self {
        self.prefetch_spec = Some(spec.into());
        self
    }

    /// Selects the oversubscription handling by registry spec (`none`,
    /// `to`, `to:any`, `etc`, `etc:25`, `adaptive`, `adaptive:100000`).
    /// Overrides both the [`policy`](Self::policy) preset's TO knob and
    /// any [`etc`](Self::etc) framework configuration. The `adaptive`
    /// spec additionally attaches an internal probe that closes the
    /// sensing loop; it reads only in-simulation events, so runs stay
    /// deterministic.
    pub fn oversubscription(mut self, spec: impl Into<String>) -> Self {
        self.oversub_spec = Some(spec.into());
        self
    }

    /// Selects the fault-servicing cost model by registry spec (`cpu`,
    /// `gpu-driven`, `gpu-driven:500`). Defaults to `cpu`, the classic
    /// host-driver far-fault path, which keeps the timing arithmetic
    /// bit-identical to the classic model.
    pub fn fault_servicing(mut self, spec: impl Into<String>) -> Self {
        self.fault_servicing_spec = Some(spec.into());
        self
    }

    /// Selects the large-page coalescing policy by registry spec (`off`,
    /// `greedy`, `greedy:75`, `splinter:on-evict`). Defaults to `off`,
    /// which keeps the single-granularity translation path bit-identical
    /// to the classic model.
    pub fn coalesce(mut self, spec: impl Into<String>) -> Self {
        self.coalesce_spec = Some(spec.into());
        self
    }

    /// Sets the number of execution threads (default 1, the serial
    /// reference engine). With `n > 1` the engine runs `n - 1` shard
    /// workers that prefabricate warp access streams behind the
    /// conservative-window boundary (see DESIGN.md §13) and replay the
    /// data-path accesses of each cycle partitioned by L2 cache bank
    /// (`mem.l2_banks`, see DESIGN.md §14) while the coordinator thread
    /// drives the event loop. Results are **bit-identical** for every
    /// thread count — the differential and merge-oracle tests pin this —
    /// so the knob only trades wall-clock time for cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "threads must be at least 1");
        self.threads = n;
        self
    }

    /// Sizes GPU memory as `ratio` × the workload footprint (the paper's
    /// oversubscription ratio; 0.5 = "50% memory oversubscription", 1.0 or
    /// more = everything fits).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive.
    pub fn memory_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "memory ratio must be positive");
        self.memory_ratio = Some(ratio);
        self
    }

    /// Sizes GPU memory to an absolute number of pages.
    pub fn memory_pages(mut self, pages: u64) -> Self {
        self.config.uvm.gpu_mem_pages = Some(pages);
        self
    }

    /// Sets the invariant-audit level (see [`AuditLevel`]). When enabled,
    /// the run re-derives the UVM runtime's conservation laws after every
    /// event and fails with [`SimError::InvariantViolated`] on a breach.
    pub fn audit(mut self, level: AuditLevel) -> Self {
        self.config.audit = level;
        self
    }

    /// Arms deterministic fault injection (see [`InjectConfig`]).
    pub fn inject(mut self, inject: InjectConfig) -> Self {
        self.inject = Some(inject);
        self
    }

    /// Attaches an observer of the run's typed event stream (see
    /// [`Probe`]). Call repeatedly to attach several — events fan out to
    /// all of them in attachment order. With no probe attached the engine
    /// never constructs an event, so the hot path is unchanged.
    ///
    /// Shipped probes live in [`crate::probes`]: a bounded structured
    /// tracer, a per-batch timeline aggregator, and a CSV/JSON metrics
    /// sink. They are cheap handles: clone one, attach the clone, and read
    /// the results from the original after the run.
    pub fn probe(mut self, probe: impl Probe + 'static) -> Self {
        self.probes.attach(Box::new(probe));
        self
    }

    /// Overrides the forward-progress watchdog budget: the run fails with
    /// [`SimError::Livelock`] after this many consecutive events without
    /// forward progress. `0` disables the watchdog.
    pub fn watchdog_budget(mut self, events: u64) -> Self {
        self.config.watchdog_event_budget = events;
        self
    }

    /// Runs `workload` to completion, returning a typed [`SimError`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidConfig`] / [`SimError::UnknownPolicy`] — the
    ///   configuration failed [`SimConfig::validate`], a policy spec did
    ///   not resolve, or the memory ratio / workload shape is degenerate;
    ///   nothing was simulated.
    /// * [`SimError::StateMachine`] / [`SimError::Accounting`] — an engine
    ///   bug surfaced mid-run; the error carries the cycle and state.
    /// * [`SimError::InvariantViolated`] — an enabled audit found a
    ///   conservation law broken (see [`audit`](Self::audit)).
    /// * [`SimError::Livelock`] / [`SimError::Deadlock`] — the watchdog or
    ///   the end-of-run check caught a run that stopped making progress
    ///   (under sharded execution the report names the wedged shard).
    pub fn try_run(mut self, workload: Box<dyn Workload>) -> Result<RunMetrics, SimError> {
        self.config.validate()?;
        // Resolve the oversubscription spec first: it rewrites the TO knobs
        // and the ETC framework configuration that the sizing logic below
        // consumes.
        let (oversub, signals) = match &self.oversub_spec {
            Some(spec) => {
                let sel = self.registry.build_oversubscription(spec)?;
                self.config.policy.oversubscription = sel.to;
                self.etc = sel.etc.unwrap_or_default();
                // A closed-loop handler ships its own sensor: attach it to
                // the hub like any user probe so it sees the event stream.
                if let Some(probe) = sel.probe {
                    self.probes.attach(probe);
                }
                (sel.handler, sel.signals)
            }
            None => (
                Box::new(batmem_uvm::OversubController::new(self.config.policy.oversubscription))
                    as Box<dyn OversubscriptionHandler>,
                None,
            ),
        };
        let servicing: Box<dyn FaultServicingModel> =
            self.registry.build_servicing(self.fault_servicing_spec.as_deref().unwrap_or("cpu"))?;
        let ctx = StrategyCtx { pages_per_region: self.config.uvm.pages_per_region() };
        let eviction: Box<dyn EvictionStrategy> = match &self.eviction_spec {
            Some(spec) => self.registry.build_eviction(spec, &ctx)?,
            None => self.registry.build_eviction(eviction_spec_of(self.config.policy.eviction), &ctx)?,
        };
        let prefetcher: Box<dyn Prefetcher> = match &self.prefetch_spec {
            Some(spec) => self.registry.build_prefetcher(spec, &ctx)?,
            None => {
                self.registry.build_prefetcher(&prefetch_spec_of(self.config.policy.prefetch), &ctx)?
            }
        };
        let coalesce: Box<dyn CoalesceStrategy> =
            self.registry.build_coalesce(self.coalesce_spec.as_deref().unwrap_or("off"))?;
        if let Some(ratio) = self.memory_ratio {
            if !ratio.is_finite() || ratio <= 0.0 {
                return Err(SimError::invalid_config(
                    "memory_ratio",
                    format!("must be a positive finite multiple of the footprint, got {ratio}"),
                ));
            }
        }
        if workload.num_kernels() == 0 {
            return Err(SimError::invalid_config("workload", "launches no kernels"));
        }
        let footprint = workload.footprint_bytes();
        let page_bytes = self.config.uvm.page_bytes();
        let footprint_pages = footprint.div_ceil(page_bytes).max(1);
        if let Some(ratio) = self.memory_ratio {
            let pages = ((footprint_pages as f64 * ratio).ceil() as u64).max(1);
            self.config.uvm.gpu_mem_pages = Some(pages);
        }
        if self.etc.enabled {
            if let Some(p) = self.config.uvm.gpu_mem_pages {
                // Capacity compression inflates effective capacity.
                self.config.uvm.gpu_mem_pages = Some(self.etc.effective_capacity(p));
            }
            if self.etc.proactive_eviction {
                self.config.policy.proactive_eviction = true;
            }
        }
        Engine::new(
            self.config,
            self.etc,
            self.inject,
            self.probes,
            workload,
            footprint_pages,
            eviction,
            prefetcher,
            coalesce,
            oversub,
            servicing,
            signals,
            self.threads.max(1),
        )
        .run()
    }
}
