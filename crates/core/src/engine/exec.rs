//! SM-local execution: kernel lifecycle, warp scheduling, memory
//! operations, TO context switching, and block retirement.
//!
//! Everything in this file advances the state of a single SM's blocks and
//! warps. Any effect that escapes the SM — a wake landing in the global
//! wheel, a fault reaching the shared buffer, a switch-in completion —
//! crosses the [`ShardBoundary`](super::boundary::ShardBoundary) via
//! [`Engine::cross`](super::Engine::cross). Block retirement is the one
//! synchronous boundary crossing (see [`super::boundary`]).

use batmem_sim::block::BlockResidency;
use batmem_sim::ops::{Kernel, WarpOp};
use batmem_sim::sm::occupancy;
use batmem_sim::warp::{WarpContext, WarpPhase};
use batmem_types::probe::ProbeEvent;
use batmem_types::{BlockId, Cycle, KernelId, SimError, SmId};
use batmem_vmem::TranslationOutcome;

use std::sync::Arc;

use super::boundary::{merge_log, ShardEffect};
use super::Engine;

impl Engine {
    // ---- kernel lifecycle -------------------------------------------------

    pub(super) fn launch_kernel(&mut self, k: u32) -> Result<(), SimError> {
        debug_assert!(self.waiters.is_empty(), "stale page waiters across kernels");
        let kernel: Arc<dyn Kernel> = Arc::from(self.workload.kernel(KernelId::new(k)));
        self.spec = kernel.spec();
        self.occ = occupancy(&self.cfg.gpu, &self.spec);
        // Sharded execution: start fabricating this kernel's blocks before
        // the first dispatch so the workers run ahead of the event loop.
        if let Some(pool) = &mut self.pool {
            pool.begin_kernel(&kernel, self.spec.num_blocks, self.occ.warps_per_block);
        }
        let blocks = self.spec.num_blocks;
        self.probes
            .emit_with(self.clock, || ProbeEvent::KernelLaunched { kernel: k, blocks });
        self.kernel = Some(kernel);
        self.kernel_idx = k;
        self.blocks.clear();
        self.block_sm.clear();
        self.grid_cursor = 0;
        self.blocks_remaining = self.spec.num_blocks;
        for sm in &mut self.sms {
            debug_assert_eq!(sm.resident_blocks(), 0, "blocks left over from prior kernel");
            *sm = batmem_sim::sm::Sm::new();
        }
        let num_sms = self.sms.len();
        // Fill each SM's active slots round-robin, one slot depth at a time,
        // as the hardware block dispatcher does.
        for _slot in 0..self.occ.active_limit {
            for sm in 0..num_sms {
                self.dispatch_block(sm, true)?;
            }
        }
        // Thread oversubscription: provision extra inactive blocks (§4.1,
        // Fig. 6 step 1).
        if self.to_enabled() {
            self.top_up_inactive()?;
        }
        Ok(())
    }

    fn next_kernel(&mut self) -> Result<(), SimError> {
        let next = self.kernel_idx + 1;
        if next < self.workload.num_kernels() {
            self.launch_kernel(next)?;
        } else {
            // Execution time is when the last block retires; stray periodic
            // events (controller ticks, in-flight UVM work) may still drain
            // from the queue afterwards but do not count.
            self.kernel_idx = next;
            self.finished_at = Some(self.clock);
        }
        Ok(())
    }

    /// Dispatches the next grid block onto `sm`. Returns false if the grid
    /// is exhausted.
    fn dispatch_block(&mut self, sm: usize, active: bool) -> Result<bool, SimError> {
        if self.grid_cursor >= self.spec.num_blocks {
            return Ok(false);
        }
        let id = BlockId::new(self.grid_cursor);
        self.grid_cursor += 1;
        let idx = self.blocks.len();
        self.blocks.push(batmem_sim::block::BlockContext::new(id));
        self.block_sm.push(sm);
        if active {
            self.sms[sm].active.push(idx);
            self.activate_block(idx)?;
        } else {
            self.sms[sm].inactive.push(idx);
        }
        Ok(true)
    }

    /// Marks `idx` active and (on first activation) installs its warps and
    /// schedules them — built on the spot on the serial path, consumed
    /// from the shard pool under sharded execution.
    fn activate_block(&mut self, idx: usize) -> Result<(), SimError> {
        self.blocks[idx].residency = BlockResidency::Active;
        if !self.blocks[idx].started {
            let id = self.blocks[idx].id;
            if let Some(pool) = &mut self.pool {
                // The merge barrier: take the block's fabrication (waiting
                // for its shard if it is still ahead of us) and replay the
                // recorded activation effects into the global wheel at the
                // activation cycle, in log order — reproducing the serial
                // `(time, seq)` order exactly.
                let clock = self.clock;
                let fab = pool.take(id.index() as u32, clock)?;
                debug_assert_eq!(fab.streams.len(), self.occ.warps_per_block as usize);
                self.blocks[idx].warps =
                    fab.streams.into_iter().map(WarpContext::new).collect();
                self.blocks[idx].started = true;
                self.merged_window = Some((clock, self.window.horizon_at(clock)));
                merge_log(&mut self.events, clock, fab.log, |_grid| idx);
            } else {
                let kernel = self.kernel.as_ref().expect("kernel in flight");
                let warps: Vec<WarpContext> = (0..self.occ.warps_per_block)
                    .map(|w| WarpContext::new(kernel.warp_stream(id, w as u16)))
                    .collect();
                self.blocks[idx].warps = warps;
                self.blocks[idx].started = true;
                for w in 0..self.occ.warps_per_block as usize {
                    self.cross(ShardEffect::WakeWarp { at: self.clock, block: idx, warp: w });
                }
            }
        } else {
            for w in self.blocks[idx].ready_inactive_warps() {
                self.blocks[idx].warps[w].phase = WarpPhase::Ready;
                self.cross(ShardEffect::WakeWarp { at: self.clock, block: idx, warp: w });
            }
        }
        Ok(())
    }

    pub(super) fn top_up_inactive(&mut self) -> Result<(), SimError> {
        let degree = self.oversub.degree() as usize;
        for sm in 0..self.sms.len() {
            while self.sms[sm].inactive.len() < degree {
                if !self.dispatch_block(sm, false)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    // ---- warp execution ---------------------------------------------------

    fn is_throttled(&self, sm: usize) -> bool {
        sm >= self.sms.len() - self.throttled_count as usize
    }

    pub(super) fn on_warp_wake(&mut self, b: usize, w: usize) -> Result<(), SimError> {
        match self.blocks[b].residency {
            BlockResidency::Active => {}
            BlockResidency::Retired => {
                return Err(SimError::StateMachine {
                    cycle: self.clock,
                    event: format!("WarpWake(block:{b}, warp:{w})"),
                    state: "Retired".to_string(),
                    detail: "a retired block's warp was woken".to_string(),
                });
            }
            _ => {
                self.blocks[b].warps[w].phase = WarpPhase::ReadyInactive;
                return Ok(());
            }
        }
        let sm = self.block_sm[b];
        if self.is_throttled(sm) {
            // ETC memory-aware throttling: the SM is disabled; park the warp.
            self.blocks[b].warps[w].phase = WarpPhase::Ready;
            return Ok(());
        }
        match self.blocks[b].warps[w].take_next_op() {
            None => {
                // Retirement may refill blocks, switch contexts, or launch
                // the next kernel — all of which push and emit probes:
                // flush deferred data-path work to preserve serial order.
                self.flush_mem_batch()?;
                self.blocks[b].warps[w].phase = WarpPhase::Finished;
                self.warps_retired += 1;
                if self.blocks[b].all_finished() {
                    self.retire_block(b)?;
                } else {
                    self.maybe_switch(sm)?;
                }
            }
            Some(WarpOp::Compute(c)) => {
                // The compute wake pushes into the wheel: flush first so
                // the deferred ops' wakes keep their earlier seq slots.
                self.flush_mem_batch()?;
                self.ops_consumed += 1;
                self.blocks[b].warps[w].phase = WarpPhase::Computing;
                self.cross(ShardEffect::WakeWarp {
                    at: self.clock + Cycle::from(c),
                    block: b,
                    warp: w,
                });
            }
            Some(op) => {
                self.ops_consumed += 1;
                self.exec_mem(b, w, op)?;
            }
        }
        Ok(())
    }

    fn exec_mem(&mut self, b: usize, w: usize, op: WarpOp) -> Result<(), SimError> {
        self.mem_ops += 1;
        let sm = self.block_sm[b];
        let geom = self.cfg.uvm.geometry;
        let l1_hit = self.cfg.tlb.l1_hit_latency;
        // Translate each distinct page once (the coalescer and TLB port
        // would collapse the duplicates anyway). The two per-op lists are
        // recycled engine scratch; error exits may drop them (the run is
        // aborting) but every success path hands them back empty.
        let mut page_lat = std::mem::take(&mut self.scratch_page_lat);
        let mut faulted = std::mem::take(&mut self.scratch_faulted);
        debug_assert!(page_lat.is_empty() && faulted.is_empty());
        // Coalesced addrs are line-sorted, so same-page runs are contiguous:
        // remembering the previous page skips most dedup scans (and the fall
        // through stays correct for unsorted streams).
        let mut prev_page = None;
        for a in op.addrs() {
            let page = geom.page_of(*a);
            if prev_page == Some(page) {
                continue;
            }
            prev_page = Some(page);
            if page_lat.iter().any(|&(p, _)| p == page) || faulted.iter().any(|&(p, _)| p == page)
            {
                continue;
            }
            let t = self.mmu.translate(SmId::new(sm as u16), page, self.clock)?;
            if t.latency > l1_hit {
                // L1 TLB miss: refresh the page's LRU stamp (the manager's
                // aged-LRU approximation).
                self.uvm.touch(page);
            }
            match t.outcome {
                TranslationOutcome::Resident(_) => page_lat.push((page, t.latency)),
                TranslationOutcome::Fault => faulted.push((page, t.latency)),
            }
        }
        if faulted.is_empty() {
            let cc = self.cc.access_penalty();
            if self.pool.is_some() {
                // Sharded execution: defer the data-path accesses to the
                // cycle-barrier batch (replayed — bank-parallel when large
                // enough — by `flush_mem_batch` before the clock advances
                // or any non-wake handler runs). The translation latencies
                // were resolved inline above, exactly as on the serial
                // path; only the cache walk and the wake are deferred.
                let start = self.batch_accesses.len();
                let mut prev: Option<(_, Cycle)> = None;
                for a in op.addrs() {
                    let page = geom.page_of(*a);
                    let tl = match prev {
                        Some((p, l)) if p == page => l,
                        _ => {
                            let Some(l) =
                                page_lat.iter().find(|&&(p, _)| p == page).map(|&(_, l)| l)
                            else {
                                return Err(SimError::Accounting {
                                    cycle: self.clock,
                                    detail: format!(
                                        "mem op touched page {page} that was never translated"
                                    ),
                                });
                            };
                            prev = Some((page, l));
                            l
                        }
                    };
                    self.batch_accesses.push((sm as u16, *a, tl + cc));
                }
                self.batch_ops.push(super::DeferredOp { block: b, warp: w, start });
                self.blocks[b].warps[w].phase = WarpPhase::MemWait;
            } else {
                let mut total: Cycle = 0;
                let mut prev: Option<(_, Cycle)> = None;
                for a in op.addrs() {
                    let page = geom.page_of(*a);
                    let tl = match prev {
                        Some((p, l)) if p == page => l,
                        _ => {
                            let Some(l) =
                                page_lat.iter().find(|&&(p, _)| p == page).map(|&(_, l)| l)
                            else {
                                return Err(SimError::Accounting {
                                    cycle: self.clock,
                                    detail: format!(
                                        "mem op touched page {page} that was never translated"
                                    ),
                                });
                            };
                            prev = Some((page, l));
                            l
                        }
                    };
                    let dl = self.mem.access(sm, *a) + cc;
                    total = total.max(tl + dl);
                }
                self.blocks[b].warps[w].phase = WarpPhase::MemWait;
                self.cross(ShardEffect::WakeWarp { at: self.clock + total, block: b, warp: w });
            }
            page_lat.clear();
            self.scratch_page_lat = page_lat;
            self.scratch_faulted = faulted;
        } else {
            // A faulting op pushes into the wheel and emits a probe below:
            // replay any deferred data-path work first so push and probe
            // order match the serial engine.
            self.flush_mem_batch()?;
            // The warp stalls on its faulting pages. Replay is per-lane, as
            // on real hardware: lanes whose pages were resident complete
            // now, and only the faulted addresses re-issue — this also
            // guarantees forward progress when capacity is smaller than a
            // single op's page set (each replay resolves at least the page
            // that just arrived).
            // Collects into an AddrList: at most the original op's (warp-
            // bounded) transactions, so the retry stays allocation-free.
            let retry_addrs: batmem_sim::ops::AddrList = op
                .addrs()
                .iter()
                .filter(|a| faulted.iter().any(|&(p, _)| p == geom.page_of(**a)))
                .copied()
                .collect();
            let retry_op = match &op {
                WarpOp::Store(_) => WarpOp::Store(retry_addrs),
                _ => WarpOp::Load(retry_addrs),
            };
            let n = faulted.len() as u32;
            {
                let warp = &mut self.blocks[b].warps[w];
                warp.pending_retry = Some(retry_op);
                warp.waiting_pages = n;
                warp.phase = WarpPhase::FaultBlocked;
            }
            let block_id = self.blocks[b].id;
            self.probes.emit_with(self.clock, || ProbeEvent::WarpStalled {
                sm: sm as u16,
                block: block_id.index() as u32,
                warp: w as u16,
                waiting_pages: n,
            });
            for (page, tl) in faulted.drain(..) {
                match self.waiters.get_mut(page) {
                    Some(list) => list.push((b, w)),
                    None => {
                        let mut list = self.waiter_pool.pop().unwrap_or_default();
                        list.push((b, w));
                        self.waiters.insert(page, list);
                    }
                }
                // The fault reaches the fault buffer when the walk fails.
                self.cross(ShardEffect::RaiseFault { at: self.clock + tl, page });
            }
            page_lat.clear();
            self.scratch_page_lat = page_lat;
            self.scratch_faulted = faulted;
            self.maybe_switch(sm)?;
        }
        Ok(())
    }

    // ---- thread oversubscription (VT context switching) --------------------

    pub(super) fn maybe_switch(&mut self, sm: usize) -> Result<(), SimError> {
        if !self.to_enabled() || !self.oversub.switching_allowed() {
            return Ok(());
        }
        let trigger = self.cfg.policy.oversubscription.trigger;
        let out = self.sms[sm]
            .active
            .iter()
            .copied()
            .find(|&b| self.blocks[b].residency == BlockResidency::Active && self.blocks[b].is_fully_stalled(trigger));
        let Some(out) = out else { return Ok(()) };
        let inc = self.sms[sm]
            .inactive
            .iter()
            .copied()
            .find(|&b| self.blocks[b].residency == BlockResidency::Inactive && self.blocks[b].is_switch_in_ready());
        let Some(inc) = inc else { return Ok(()) };
        let cost = self
            .cfg
            .gpu
            .ctx_switch_cycles(self.spec.threads_per_block, self.spec.regs_per_thread);
        let done = self.sms[sm].begin_switch(self.clock, cost);
        self.ctx_switches += 1;
        self.ctx_switch_cycles += cost;
        self.probes.emit_with(self.clock, || ProbeEvent::ContextSwitch {
            sm: sm as u16,
            cost,
            restore: false,
        });
        self.blocks[out].residency = BlockResidency::Inactive;
        self.sms[sm].deactivate(out, self.clock)?;
        self.blocks[inc].residency = BlockResidency::SwitchingIn;
        self.cross(ShardEffect::SwitchIn { at: done, sm, block: inc });
        Ok(())
    }

    pub(super) fn on_switch_in_done(&mut self, sm: usize, block: usize) -> Result<(), SimError> {
        self.sms[sm].activate(block, self.clock)?;
        self.activate_block(block)?;
        // Chain: another active block may be stalled with another inactive
        // block ready.
        self.maybe_switch(sm)
    }

    // ---- retirement and refill ---------------------------------------------

    fn retire_block(&mut self, b: usize) -> Result<(), SimError> {
        let sm = self.block_sm[b];
        self.blocks[b].residency = BlockResidency::Retired;
        self.sms[sm].remove(b, self.clock)?;
        self.blocks_retired += 1;
        self.blocks_remaining -= 1;
        if self.blocks_remaining == 0 {
            self.next_kernel()?;
            return Ok(());
        }
        // Refill the freed active slot: prefer a resident inactive block
        // (restore-only context cost), then a fresh grid block.
        let inactive_pick = self.sms[sm]
            .inactive
            .iter()
            .copied()
            .find(|&x| self.blocks[x].residency == BlockResidency::Inactive && self.blocks[x].is_switch_in_ready())
            .or_else(|| {
                self.sms[sm]
                    .inactive
                    .iter()
                    .copied()
                    .find(|&x| self.blocks[x].residency == BlockResidency::Inactive)
            });
        if self.to_enabled() {
            if let Some(inc) = inactive_pick {
                let restore = self
                    .cfg
                    .gpu
                    .ctx_switch_cycles(self.spec.threads_per_block, self.spec.regs_per_thread)
                    / 2;
                let done = self.sms[sm].begin_switch(self.clock, restore);
                self.ctx_switches += 1;
                self.ctx_switch_cycles += restore;
                self.probes.emit_with(self.clock, || ProbeEvent::ContextSwitch {
                    sm: sm as u16,
                    cost: restore,
                    restore: true,
                });
                self.blocks[inc].residency = BlockResidency::SwitchingIn;
                self.cross(ShardEffect::SwitchIn { at: done, sm, block: inc });
                self.top_up_inactive()?;
                return Ok(());
            }
        }
        self.dispatch_block(sm, true)?;
        if self.to_enabled() {
            self.top_up_inactive()?;
        }
        Ok(())
    }
}
