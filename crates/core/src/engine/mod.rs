//! The end-to-end simulation engine.
//!
//! Wires the GPU core model (`batmem-sim`) to the MMU (`batmem-vmem`), the
//! UVM runtime (`batmem-uvm`), and the ETC baseline (`batmem-etc`), and
//! drives them with a deterministic discrete-event loop.
//!
//! # Module layout
//!
//! The engine separates **SM-local** state and handlers from **shared**
//! state (see DESIGN.md §13):
//!
//! * [`exec`] — SM-local execution: kernel lifecycle, warp wakes, memory
//!   ops, TO context switching, block retirement. Everything here advances
//!   a single SM's warps and blocks; any effect that escapes the SM crosses
//!   the [`boundary::ShardBoundary`].
//! * [`uvm_glue`] — shared-state side: the UVM pipeline's outputs, fault
//!   recording, page-arrival wakeups, and the periodic controllers.
//! * [`boundary`] — the explicit [`ShardBoundary`](boundary::ShardBoundary)
//!   trait naming every cross-shard effect, with the immediate (serial
//!   reference) and recording (parallel shard) implementations plus the
//!   deterministic log merge.
//! * [`window`] — conservative time-window derivation: the horizon before
//!   the next pending UVM interaction (batch window, PCIe completion,
//!   fault-servicing occupancy, controller tick).
//! * [`parallel`] — the sharded executor: a pool of shard workers that
//!   prefabricate warp streams ahead of the coordinator, bit-identical to
//!   the serial path for every thread count.
//! * [`builder`] — [`Simulation`] / [`SimulationBuilder`], including the
//!   [`threads`](SimulationBuilder::threads) knob.

mod boundary;
mod builder;
mod exec;
mod parallel;
mod uvm_glue;
mod window;

#[cfg(test)]
mod tests;

pub use builder::{Simulation, SimulationBuilder};

use crate::metrics::RunMetrics;
use batmem_etc::{CapacityCompression, EtcConfig, ThrottleController};
use batmem_sim::block::BlockContext;
use batmem_sim::cache::MemPath;
use batmem_sim::events::EventQueue;
use batmem_sim::ops::{Kernel, KernelSpec, Workload};
use batmem_sim::sm::{Occupancy, Sm};
use batmem_types::dense::{PageMap, PageSet};
use batmem_types::probe::{ProbeEvent, ProbeHub, SharedProbes};
use batmem_types::{AuditLevel, Cycle, PageId, SimConfig, SimError};
use batmem_uvm::{
    AdaptiveSignals, CoalesceStrategy, EvictionStrategy, FaultServicingModel, InjectConfig,
    OversubscriptionHandler, Prefetcher, UvmEvent, UvmRuntime,
};
use batmem_vmem::Mmu;

use boundary::{ImmediateBoundary, ShardBoundary, ShardEffect};
use parallel::ShardPool;
use window::WindowTracker;

use std::sync::Arc;

#[derive(Debug, Clone)]
enum Event {
    WarpWake { block: usize, warp: usize },
    RaiseFault { page: PageId },
    Uvm(UvmEvent),
    SwitchInDone { sm: usize, block: usize },
    Sample,
    EtcTick,
}

struct Engine {
    cfg: SimConfig,
    clock: Cycle,
    events: EventQueue<Event>,
    mmu: Mmu,
    mem: MemPath,
    uvm: UvmRuntime,
    oversub: Box<dyn OversubscriptionHandler>,
    throttle: ThrottleController,
    cc: CapacityCompression,
    etc_enabled: bool,
    workload: Box<dyn Workload>,
    kernel_idx: u32,
    kernel: Option<Arc<dyn Kernel>>,
    spec: KernelSpec,
    occ: Occupancy,
    blocks: Vec<BlockContext>,
    block_sm: Vec<usize>,
    sms: Vec<Sm>,
    grid_cursor: u32,
    blocks_remaining: u32,
    waiters: PageMap<Vec<(usize, usize)>>,
    seen_fault_pages: PageSet,
    throttled_count: u16,
    probes: SharedProbes,
    // The cross-shard boundary the SM-local handlers emit through (the
    // coordinator always applies immediately; shard workers record).
    boundary: ImmediateBoundary,
    // Pending UVM-interaction times: the conservative window's horizon.
    window: WindowTracker,
    // The shard pool (threads > 1): prefabricates warp streams ahead of
    // the coordinator. `None` is the serial reference path.
    pool: Option<ShardPool>,
    // Clock of the last shard-log merge and the window horizon it landed
    // in, for wedged-run diagnostics.
    merged_window: Option<(Cycle, Option<Cycle>)>,
    // Recycled hot-loop scratch: taken, filled, cleared, and put back so
    // the steady-state event loop performs no heap allocations.
    uvm_out: Vec<batmem_uvm::UvmOutput>,
    waiter_pool: Vec<Vec<(usize, usize)>>,
    scratch_page_lat: Vec<(PageId, Cycle)>,
    scratch_faulted: Vec<(PageId, Cycle)>,
    // metrics
    finished_at: Option<Cycle>,
    memory_pages: Option<u64>,
    blocks_retired: u64,
    warps_retired: u64,
    mem_ops: u64,
    ctx_switches: u64,
    ctx_switch_cycles: Cycle,
    // watchdog progress counters
    ops_consumed: u64,
    pages_installed: u64,
    faults_recorded: u64,
}

impl Engine {
    #[allow(clippy::too_many_arguments)] // private constructor, one call site
    fn new(
        cfg: SimConfig,
        etc: EtcConfig,
        inject: Option<InjectConfig>,
        probes: ProbeHub,
        workload: Box<dyn Workload>,
        footprint_pages: u64,
        eviction: Box<dyn EvictionStrategy>,
        prefetcher: Box<dyn Prefetcher>,
        coalesce: Box<dyn CoalesceStrategy>,
        oversub: Box<dyn OversubscriptionHandler>,
        servicing: Box<dyn FaultServicingModel>,
        signals: Option<AdaptiveSignals>,
        threads: usize,
    ) -> Self {
        let probes = SharedProbes::new(probes);
        let mut uvm = UvmRuntime::with_strategies(
            &cfg.uvm,
            &cfg.policy,
            footprint_pages,
            eviction,
            prefetcher,
            coalesce,
        );
        uvm.set_audit(cfg.audit);
        uvm.set_probes(probes.clone());
        if let Some(i) = inject {
            uvm.set_injector(i);
        }
        uvm.set_servicing(servicing);
        if let Some(s) = signals {
            uvm.set_adaptive_signals(s);
        }
        let mmu = Mmu::new(&cfg);
        let mem = MemPath::new(&cfg.mem, cfg.gpu.num_sms);
        let throttle = ThrottleController::new(etc, cfg.gpu.num_sms);
        let cc = CapacityCompression::new(&etc);
        let num_sms = cfg.gpu.num_sms as usize;
        let memory_pages = cfg.uvm.gpu_mem_pages;
        // Kernel launch wakes every schedulable warp at the same cycle:
        // size the same-cycle ring for that burst up front.
        let max_warps = num_sms * (cfg.gpu.threads_per_sm / cfg.gpu.warp_size).max(1) as usize;
        let pool = (threads > 1).then(|| ShardPool::spawn(threads - 1));
        Self {
            cfg,
            clock: 0,
            events: EventQueue::with_capacity(max_warps),
            mmu,
            mem,
            uvm,
            oversub,
            throttle,
            cc,
            etc_enabled: etc.enabled,
            workload,
            kernel_idx: 0,
            kernel: None,
            spec: KernelSpec { num_blocks: 0, threads_per_block: 32, regs_per_thread: 0 },
            occ: Occupancy { active_limit: 1, warps_per_block: 1 },
            blocks: Vec::new(),
            block_sm: Vec::new(),
            sms: (0..num_sms).map(|_| Sm::new()).collect(),
            grid_cursor: 0,
            blocks_remaining: 0,
            waiters: PageMap::with_capacity(footprint_pages as usize),
            seen_fault_pages: PageSet::with_capacity(footprint_pages as usize),
            throttled_count: 0,
            probes,
            boundary: ImmediateBoundary,
            window: WindowTracker::new(),
            pool,
            merged_window: None,
            finished_at: None,
            memory_pages,
            blocks_retired: 0,
            warps_retired: 0,
            mem_ops: 0,
            ctx_switches: 0,
            ctx_switch_cycles: 0,
            ops_consumed: 0,
            pages_installed: 0,
            faults_recorded: 0,
            uvm_out: Vec::new(),
            waiter_pool: Vec::new(),
            scratch_page_lat: Vec::new(),
            scratch_faulted: Vec::new(),
        }
    }

    fn to_enabled(&self) -> bool {
        self.cfg.policy.oversubscription.enabled
    }

    /// Emits one cross-shard effect through the boundary. On the
    /// coordinator the boundary is immediate (the effect lands in the
    /// global wheel at once, exactly like the pre-split direct pushes);
    /// shard workers record effects instead and the logs are merged at the
    /// barrier (see [`boundary`]). UVM-interaction effects also feed the
    /// conservative window horizon.
    #[inline]
    fn cross(&mut self, effect: ShardEffect) {
        self.window.note(self.clock, &effect);
        self.boundary.cross(&mut self.events, effect);
    }

    /// Everything that counts as forward progress for the watchdog: warp
    /// ops consumed, faults accepted by the runtime, pages installed,
    /// context switches, retirements — and, under sharded execution, warp
    /// streams prefabricated by shard workers (a pool that is still
    /// fabricating is progressing even while the coordinator waits).
    /// Purely periodic events (Sample, EtcTick) and parked wakes leave
    /// this unchanged.
    fn progress_signature(&self) -> u64 {
        self.ops_consumed
            + self.faults_recorded
            + self.pages_installed
            + self.ctx_switches
            + self.warps_retired
            + self.blocks_retired
            + self.pool.as_ref().map_or(0, |p| p.blocks_fabricated())
    }

    /// One-line dump of what is outstanding, for livelock/deadlock errors.
    /// Under sharded execution this names per-shard fabrication occupancy
    /// and the merged-window position, so a wedged shard is identified
    /// instead of appearing as a global livelock.
    fn describe_stuck(&self) -> String {
        let occ = self.events.occupancy();
        let mut s = format!(
            "kernel {}/{}, {} blocks outstanding, {} pages awaited, {} events queued (ring {} / wheel {} / overflow {}); {}; window [{}, {})",
            self.kernel_idx,
            self.workload.num_kernels(),
            self.blocks_remaining,
            self.waiters.len(),
            self.events.len(),
            occ.ring,
            occ.wheel,
            occ.overflow,
            self.uvm.describe_state(),
            self.clock,
            self.window
                .horizon_at(self.clock)
                .map_or("∞".to_string(), |h| h.to_string()),
        );
        if let Some(pool) = &self.pool {
            s.push_str("; ");
            s.push_str(&pool.describe_occupancy());
            if let Some((at, horizon)) = self.merged_window {
                s.push_str(&format!(
                    ", last merge at cycle {} (window horizon {})",
                    at,
                    horizon.map_or("∞".to_string(), |h| h.to_string()),
                ));
            }
        }
        s
    }

    /// Cross-checks engine-level state against the MMU under `Full` audit:
    /// a page with registered fault waiters must not be installed (its
    /// waiters would sleep forever — exactly the livelock class the
    /// fault-injection tests provoke).
    fn audit_cross_state(&self) -> Result<(), SimError> {
        for (page, list) in self.waiters.iter() {
            if self.mmu.is_resident(page) {
                return Err(SimError::InvariantViolated {
                    cycle: self.clock,
                    invariant: "pages with fault waiters are not MMU-resident",
                    snapshot: format!("page {page} is installed but {} warps wait on it", list.len()),
                });
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<RunMetrics, SimError> {
        self.launch_kernel(0)?;
        if self.to_enabled() {
            let period = self.cfg.policy.oversubscription.lifetime_sample_period;
            self.cross(ShardEffect::Sample { at: period });
        }
        if self.etc_enabled {
            self.cross(ShardEffect::EtcTick { at: self.throttle.next_tick() });
        }
        let budget = self.cfg.watchdog_event_budget;
        let mut last_sig = self.progress_signature();
        let mut stagnant: u64 = 0;
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.clock, "time went backwards");
            self.clock = t;
            match ev {
                Event::WarpWake { block, warp } => self.on_warp_wake(block, warp)?,
                Event::RaiseFault { page } => self.on_raise_fault(page)?,
                Event::Uvm(e) => {
                    // Take/restore the recycled scratch so the runtime and
                    // apply step borrow independently; steady state never
                    // allocates.
                    let mut outs = std::mem::take(&mut self.uvm_out);
                    let res = self
                        .uvm
                        .on_event_into(e, self.clock, &mut outs)
                        .and_then(|()| self.apply_outputs(&mut outs));
                    outs.clear();
                    self.uvm_out = outs;
                    res?;
                    if self.cfg.audit >= AuditLevel::Full {
                        self.audit_cross_state()?;
                    }
                }
                Event::SwitchInDone { sm, block } => self.on_switch_in_done(sm, block)?,
                Event::Sample => self.on_sample()?,
                Event::EtcTick => self.on_etc_tick(),
            }
            if budget > 0 {
                let sig = self.progress_signature();
                if sig == last_sig {
                    stagnant += 1;
                    let occ = self.events.occupancy();
                    self.probes.emit_with(self.clock, || ProbeEvent::WatchdogTick {
                        events_without_progress: stagnant,
                        ring: occ.ring as u64,
                        wheel: occ.wheel as u64,
                        overflow: occ.overflow as u64,
                    });
                    if stagnant >= budget {
                        return Err(SimError::Livelock {
                            cycle: self.clock,
                            events_without_progress: stagnant,
                            snapshot: self.describe_stuck(),
                        });
                    }
                } else {
                    last_sig = sig;
                    stagnant = 0;
                }
            }
        }
        if self.blocks_remaining > 0 || self.kernel_idx < self.workload.num_kernels() {
            return Err(SimError::Deadlock { cycle: self.clock, detail: self.describe_stuck() });
        }
        let Some(finished_at) = self.finished_at else {
            return Err(SimError::Deadlock {
                cycle: self.clock,
                detail: "work completed but no finish time was recorded".to_string(),
            });
        };
        let mmu_stats = self.mmu.stats();
        // Stray in-flight UVM events may have emitted after `finished_at`;
        // the summary goes out at the final drained clock so the trace
        // stays monotone.
        self.probes.emit_with(self.clock.max(finished_at), || ProbeEvent::TranslationSummary {
            l1_hits: mmu_stats.l1.hits,
            l1_misses: mmu_stats.l1.misses,
            large_hits: mmu_stats.large_hits(),
            walks: mmu_stats.walks,
            coalesces: mmu_stats.coalesces,
            splinters: mmu_stats.splinters,
        });
        // Only a non-default servicing model reports: under `cpu` the
        // counters are None and the event stream stays byte-identical to
        // the classic path.
        if let Some(c) = self.uvm.fault_servicing_counters() {
            self.probes.emit_with(self.clock.max(finished_at), || {
                ProbeEvent::FaultServicingSummary {
                    batches: c.batches,
                    faults: c.faults,
                    occupancy_cycles: c.occupancy_cycles,
                }
            });
        }
        self.probes.finish(finished_at);
        Ok(RunMetrics {
            cycles: finished_at,
            workload: self.workload.name(),
            footprint_bytes: self.workload.footprint_bytes(),
            memory_pages: self.memory_pages,
            kernels: self.workload.num_kernels(),
            blocks_retired: self.blocks_retired,
            warps_retired: self.warps_retired,
            mem_ops: self.mem_ops,
            uvm: self.uvm.stats(),
            mmu: mmu_stats,
            l1d: self.mem.l1_stats(),
            l2d: self.mem.l2_stats(),
            ctx_switches: self.ctx_switches,
            ctx_switch_cycles: self.ctx_switch_cycles,
            final_oversub_degree: self.oversub.degree(),
            oversub_decrements: self.oversub.decrements(),
            throttle_engagements: self.throttle.engagements(),
        })
    }
}
