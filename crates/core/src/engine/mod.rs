//! The end-to-end simulation engine.
//!
//! Wires the GPU core model (`batmem-sim`) to the MMU (`batmem-vmem`), the
//! UVM runtime (`batmem-uvm`), and the ETC baseline (`batmem-etc`), and
//! drives them with a deterministic discrete-event loop.
//!
//! # Module layout
//!
//! The engine separates **SM-local** state and handlers from **shared**
//! state (see DESIGN.md §13):
//!
//! * [`exec`] — SM-local execution: kernel lifecycle, warp wakes, memory
//!   ops, TO context switching, block retirement. Everything here advances
//!   a single SM's warps and blocks; any effect that escapes the SM crosses
//!   the [`boundary::ShardBoundary`].
//! * [`uvm_glue`] — shared-state side: the UVM pipeline's outputs, fault
//!   recording, page-arrival wakeups, and the periodic controllers.
//! * [`boundary`] — the explicit [`ShardBoundary`](boundary::ShardBoundary)
//!   trait naming every cross-shard effect, with the immediate (serial
//!   reference) and recording (parallel shard) implementations plus the
//!   deterministic log merge.
//! * [`window`] — conservative time-window derivation: the horizon before
//!   the next pending UVM interaction (batch window, PCIe completion,
//!   fault-servicing occupancy, controller tick).
//! * [`parallel`] — the sharded executor: a pool of shard workers that
//!   prefabricate warp streams ahead of the coordinator and replay
//!   bank-partitioned data-path batches at the cycle barrier,
//!   bit-identical to the serial path for every thread count.
//! * [`builder`] — [`Simulation`] / [`SimulationBuilder`], including the
//!   [`threads`](SimulationBuilder::threads) knob.

mod boundary;
mod builder;
mod exec;
mod parallel;
mod uvm_glue;
mod window;

#[cfg(test)]
mod tests;

pub use builder::{Simulation, SimulationBuilder};

use crate::metrics::RunMetrics;
use batmem_etc::{CapacityCompression, EtcConfig, ThrottleController};
use batmem_sim::block::BlockContext;
use batmem_sim::cache::MemPath;
use batmem_sim::events::EventQueue;
use batmem_sim::ops::{Kernel, KernelSpec, Workload};
use batmem_sim::sm::{Occupancy, Sm};
use batmem_types::dense::{PageMap, PageSet};
use batmem_types::probe::{ProbeEvent, ProbeHub, SharedProbes};
use batmem_types::{AuditLevel, Cycle, PageId, SimConfig, SimError, VirtAddr};
use batmem_uvm::{
    AdaptiveSignals, CoalesceStrategy, EvictionStrategy, FaultServicingModel, InjectConfig,
    OversubscriptionHandler, Prefetcher, UvmEvent, UvmRuntime,
};
use batmem_vmem::Mmu;

use boundary::{merge_log, ImmediateBoundary, RecordingBoundary, ShardBoundary, ShardEffect};
use parallel::{run_bank, BankJob, BankResult, ShardPool};
use window::{BankLoad, WindowTracker};

use std::sync::Arc;

#[derive(Debug, Clone)]
enum Event {
    WarpWake { block: usize, warp: usize },
    RaiseFault { page: PageId },
    Uvm(UvmEvent),
    SwitchInDone { sm: usize, block: usize },
    Sample,
    EtcTick,
}

/// One deferred (non-faulted) memory operation: its warp plus the start
/// of its access run in the batch's flat access list (it extends to the
/// next op's start, or the list's end).
struct DeferredOp {
    block: usize,
    warp: usize,
    start: usize,
}

struct Engine {
    cfg: SimConfig,
    clock: Cycle,
    events: EventQueue<Event>,
    mmu: Mmu,
    mem: MemPath,
    uvm: UvmRuntime,
    oversub: Box<dyn OversubscriptionHandler>,
    throttle: ThrottleController,
    cc: CapacityCompression,
    etc_enabled: bool,
    workload: Box<dyn Workload>,
    kernel_idx: u32,
    kernel: Option<Arc<dyn Kernel>>,
    spec: KernelSpec,
    occ: Occupancy,
    blocks: Vec<BlockContext>,
    block_sm: Vec<usize>,
    sms: Vec<Sm>,
    grid_cursor: u32,
    blocks_remaining: u32,
    waiters: PageMap<Vec<(usize, usize)>>,
    seen_fault_pages: PageSet,
    throttled_count: u16,
    probes: SharedProbes,
    // The cross-shard boundary the SM-local handlers emit through (the
    // coordinator always applies immediately; shard workers record).
    boundary: ImmediateBoundary,
    // Pending UVM-interaction times: the conservative window's horizon.
    window: WindowTracker,
    // The shard pool (threads > 1): prefabricates warp streams ahead of
    // the coordinator. `None` is the serial reference path.
    pool: Option<ShardPool>,
    // Clock of the last shard-log merge and the window horizon it landed
    // in, for wedged-run diagnostics.
    merged_window: Option<(Cycle, Option<Cycle>)>,
    // Recycled hot-loop scratch: taken, filled, cleared, and put back so
    // the steady-state event loop performs no heap allocations.
    uvm_out: Vec<batmem_uvm::UvmOutput>,
    waiter_pool: Vec<Vec<(usize, usize)>>,
    scratch_page_lat: Vec<(PageId, Cycle)>,
    scratch_faulted: Vec<(PageId, Cycle)>,
    // The deferred data-path batch (threads > 1 only; serial runs keep the
    // inline path and never populate these). Non-faulted mem ops of one
    // cycle collect here and replay — bank-parallel above the dispatch
    // threshold — at the cycle barrier (`flush_mem_batch`).
    batch_ops: Vec<DeferredOp>,
    batch_accesses: Vec<(u16, VirtAddr, Cycle)>,
    batch_bank: Vec<u32>,
    batch_lat: Vec<Cycle>,
    // Per-bank fan-out scratch, all recycled: arrival-order queues, replay
    // outputs, and merge cursors.
    bank_queues: Vec<Vec<(u16, VirtAddr)>>,
    bank_lat: Vec<Vec<Cycle>>,
    bank_cursor: Vec<usize>,
    bank_load: BankLoad,
    // metrics
    finished_at: Option<Cycle>,
    memory_pages: Option<u64>,
    blocks_retired: u64,
    warps_retired: u64,
    mem_ops: u64,
    ctx_switches: u64,
    ctx_switch_cycles: Cycle,
    // watchdog progress counters
    ops_consumed: u64,
    pages_installed: u64,
    faults_recorded: u64,
}

impl Engine {
    #[allow(clippy::too_many_arguments)] // private constructor, one call site
    fn new(
        cfg: SimConfig,
        etc: EtcConfig,
        inject: Option<InjectConfig>,
        probes: ProbeHub,
        workload: Box<dyn Workload>,
        footprint_pages: u64,
        eviction: Box<dyn EvictionStrategy>,
        prefetcher: Box<dyn Prefetcher>,
        coalesce: Box<dyn CoalesceStrategy>,
        oversub: Box<dyn OversubscriptionHandler>,
        servicing: Box<dyn FaultServicingModel>,
        signals: Option<AdaptiveSignals>,
        threads: usize,
    ) -> Self {
        let probes = SharedProbes::new(probes);
        let mut uvm = UvmRuntime::with_strategies(
            &cfg.uvm,
            &cfg.policy,
            footprint_pages,
            eviction,
            prefetcher,
            coalesce,
        );
        uvm.set_audit(cfg.audit);
        uvm.set_probes(probes.clone());
        if let Some(i) = inject {
            uvm.set_injector(i);
        }
        uvm.set_servicing(servicing);
        if let Some(s) = signals {
            uvm.set_adaptive_signals(s);
        }
        let mmu = Mmu::new(&cfg);
        let mem = MemPath::new(&cfg.mem, cfg.gpu.num_sms);
        let throttle = ThrottleController::new(etc, cfg.gpu.num_sms);
        let cc = CapacityCompression::new(&etc);
        let num_sms = cfg.gpu.num_sms as usize;
        let memory_pages = cfg.uvm.gpu_mem_pages;
        // Kernel launch wakes every schedulable warp at the same cycle:
        // size the same-cycle ring for that burst up front.
        let max_warps = num_sms * (cfg.gpu.threads_per_sm / cfg.gpu.warp_size).max(1) as usize;
        let pool = (threads > 1).then(|| ShardPool::spawn(threads - 1));
        let num_banks = mem.num_banks();
        Self {
            cfg,
            clock: 0,
            events: EventQueue::with_capacity(max_warps),
            mmu,
            mem,
            uvm,
            oversub,
            throttle,
            cc,
            etc_enabled: etc.enabled,
            workload,
            kernel_idx: 0,
            kernel: None,
            spec: KernelSpec { num_blocks: 0, threads_per_block: 32, regs_per_thread: 0 },
            occ: Occupancy { active_limit: 1, warps_per_block: 1 },
            blocks: Vec::new(),
            block_sm: Vec::new(),
            sms: (0..num_sms).map(|_| Sm::new()).collect(),
            grid_cursor: 0,
            blocks_remaining: 0,
            waiters: PageMap::with_capacity(footprint_pages as usize),
            seen_fault_pages: PageSet::with_capacity(footprint_pages as usize),
            throttled_count: 0,
            probes,
            boundary: ImmediateBoundary,
            window: WindowTracker::new(),
            pool,
            merged_window: None,
            finished_at: None,
            memory_pages,
            blocks_retired: 0,
            warps_retired: 0,
            mem_ops: 0,
            ctx_switches: 0,
            ctx_switch_cycles: 0,
            ops_consumed: 0,
            pages_installed: 0,
            faults_recorded: 0,
            uvm_out: Vec::new(),
            waiter_pool: Vec::new(),
            scratch_page_lat: Vec::new(),
            scratch_faulted: Vec::new(),
            batch_ops: Vec::new(),
            batch_accesses: Vec::new(),
            batch_bank: Vec::new(),
            batch_lat: Vec::new(),
            bank_queues: (0..num_banks).map(|_| Vec::new()).collect(),
            bank_lat: (0..num_banks).map(|_| Vec::new()).collect(),
            bank_cursor: vec![0; num_banks],
            bank_load: BankLoad::default(),
        }
    }

    fn to_enabled(&self) -> bool {
        self.cfg.policy.oversubscription.enabled
    }

    /// Emits one cross-shard effect through the boundary. On the
    /// coordinator the boundary is immediate (the effect lands in the
    /// global wheel at once, exactly like the pre-split direct pushes);
    /// shard workers record effects instead and the logs are merged at the
    /// barrier (see [`boundary`]). UVM-interaction effects also feed the
    /// conservative window horizon.
    #[inline]
    fn cross(&mut self, effect: ShardEffect) {
        self.window.note(self.clock, &effect);
        self.boundary.cross(&mut self.events, effect);
    }

    /// Replays the deferred data-path batch at the cycle barrier.
    ///
    /// Deferred accesses replay in arrival (pop) order against the caches
    /// — bank-partitioned across the shard workers when the batch clears
    /// [`MemConfig::bank_dispatch_min`](batmem_types::config::MemConfig),
    /// serially on the coordinator otherwise — and the resulting wakes
    /// merge into the wheel in op order through a [`RecordingBoundary`]
    /// log, reproducing the serial engine's `(time, seq)` push order
    /// exactly. Partitioning by bank preserves per-set access order (a
    /// line's bank is a pure function of its address), so every hit/miss,
    /// latency, and LRU update is bit-identical to the serial replay no
    /// matter how the banks are scheduled.
    fn flush_mem_batch(&mut self) -> Result<(), SimError> {
        if self.batch_ops.is_empty() {
            return Ok(());
        }
        debug_assert!(self.pool.is_some(), "serial runs never defer mem ops");
        let banks = self.mem.num_banks();
        let fan_out = banks > 1
            && self.pool.is_some()
            && self.batch_accesses.len() >= self.cfg.mem.bank_dispatch_min as usize;
        self.bank_load.note_flush(fan_out);
        debug_assert!(self.batch_lat.is_empty());
        if fan_out {
            // Partition by bank, preserving arrival order within each bank.
            for &(sm, addr, _) in &self.batch_accesses {
                let bank = self.mem.bank_of(addr);
                self.batch_bank.push(bank as u32);
                self.bank_queues[bank].push((sm, addr));
            }
            self.bank_load.note_counts(&self.bank_queues);
            // Ship every non-empty bank but the first to the workers; the
            // coordinator replays that first one itself while they run.
            // Which thread replays which bank never affects the outcome.
            let mut inline_bank = None;
            let mut outstanding = 0usize;
            for bank in 0..banks {
                if self.bank_queues[bank].is_empty() {
                    continue;
                }
                if inline_bank.is_none() {
                    inline_bank = Some(bank);
                    continue;
                }
                let job = BankJob {
                    view: self.mem.detach_bank(bank),
                    queue: std::mem::take(&mut self.bank_queues[bank]),
                    latencies: std::mem::take(&mut self.bank_lat[bank]),
                };
                match self.pool.as_mut().expect("fan-out requires a pool").dispatch_bank(job) {
                    None => outstanding += 1,
                    // The worker died (the run is about to be reported
                    // wedged); the replay completed inline instead.
                    Some(result) => self.finish_bank(result),
                }
            }
            if let Some(bank) = inline_bank {
                let job = BankJob {
                    view: self.mem.detach_bank(bank),
                    queue: std::mem::take(&mut self.bank_queues[bank]),
                    latencies: std::mem::take(&mut self.bank_lat[bank]),
                };
                let result = run_bank(job);
                self.finish_bank(result);
            }
            while outstanding > 0 {
                let clock = self.clock;
                let result =
                    self.pool.as_mut().expect("fan-out requires a pool").collect_bank(clock)?;
                self.finish_bank(result);
                outstanding -= 1;
            }
            // Stitch per-bank latencies back into arrival order.
            for &bank in &self.batch_bank {
                let cursor = &mut self.bank_cursor[bank as usize];
                self.batch_lat.push(self.bank_lat[bank as usize][*cursor]);
                *cursor += 1;
            }
            for bank in 0..banks {
                debug_assert_eq!(self.bank_cursor[bank], self.bank_lat[bank].len());
                self.bank_lat[bank].clear();
                self.bank_cursor[bank] = 0;
            }
            self.batch_bank.clear();
        } else {
            // Below the dispatch threshold (or a single bank): replay the
            // whole batch serially — identical outcome, no fan-out cost.
            for &(sm, addr, _) in &self.batch_accesses {
                let lat = self.mem.access(sm as usize, addr);
                self.batch_lat.push(lat);
            }
        }
        // Emit each op's wake at its max (translation + data) latency, in
        // op order, through the recording boundary + merge — the same seam
        // prefabricated activation wakes use.
        let mut rec = RecordingBoundary::new();
        for (i, op) in self.batch_ops.iter().enumerate() {
            let end =
                self.batch_ops.get(i + 1).map_or(self.batch_accesses.len(), |next| next.start);
            let mut total: Cycle = 0;
            for k in op.start..end {
                let (_, _, tl_cc) = self.batch_accesses[k];
                total = total.max(tl_cc + self.batch_lat[k]);
            }
            rec.record(ShardEffect::MemDone { at: total, block: op.block, warp: op.warp });
        }
        merge_log(&mut self.events, self.clock, rec.into_log(), |slot| slot);
        self.batch_ops.clear();
        self.batch_accesses.clear();
        self.batch_lat.clear();
        Ok(())
    }

    /// Reattaches a replayed bank and parks its buffers for the merge.
    fn finish_bank(&mut self, result: BankResult) {
        let bank = result.view.bank();
        self.mem.attach_bank(result.view);
        let mut queue = result.queue;
        queue.clear();
        self.bank_queues[bank] = queue;
        debug_assert!(self.bank_lat[bank].is_empty());
        self.bank_lat[bank] = result.latencies;
    }

    /// Everything that counts as forward progress for the watchdog: warp
    /// ops consumed, faults accepted by the runtime, pages installed,
    /// context switches, retirements — and, under sharded execution, warp
    /// streams prefabricated by shard workers (a pool that is still
    /// fabricating is progressing even while the coordinator waits).
    /// Purely periodic events (Sample, EtcTick) and parked wakes leave
    /// this unchanged.
    fn progress_signature(&self) -> u64 {
        self.ops_consumed
            + self.faults_recorded
            + self.pages_installed
            + self.ctx_switches
            + self.warps_retired
            + self.blocks_retired
            + self.pool.as_ref().map_or(0, |p| p.blocks_fabricated())
    }

    /// One-line dump of what is outstanding, for livelock/deadlock errors.
    /// Under sharded execution this names per-shard fabrication occupancy
    /// and the merged-window position, so a wedged shard is identified
    /// instead of appearing as a global livelock.
    fn describe_stuck(&self) -> String {
        let occ = self.events.occupancy();
        let mut s = format!(
            "kernel {}/{}, {} blocks outstanding, {} pages awaited, {} events queued (ring {} / wheel {} / overflow {}); {}; window [{}, {})",
            self.kernel_idx,
            self.workload.num_kernels(),
            self.blocks_remaining,
            self.waiters.len(),
            self.events.len(),
            occ.ring,
            occ.wheel,
            occ.overflow,
            self.uvm.describe_state(),
            self.clock,
            self.window
                .horizon_at(self.clock)
                .map_or("∞".to_string(), |h| h.to_string()),
        );
        if let Some(pool) = &self.pool {
            s.push_str("; ");
            s.push_str(&pool.describe_occupancy());
            if let Some((at, horizon)) = self.merged_window {
                s.push_str(&format!(
                    ", last merge at cycle {} (window horizon {})",
                    at,
                    horizon.map_or("∞".to_string(), |h| h.to_string()),
                ));
            }
            s.push_str("; ");
            s.push_str(&self.bank_load.describe());
        }
        s
    }

    /// Cross-checks engine-level state against the MMU under `Full` audit:
    /// a page with registered fault waiters must not be installed (its
    /// waiters would sleep forever — exactly the livelock class the
    /// fault-injection tests provoke).
    fn audit_cross_state(&self) -> Result<(), SimError> {
        for (page, list) in self.waiters.iter() {
            if self.mmu.is_resident(page) {
                return Err(SimError::InvariantViolated {
                    cycle: self.clock,
                    invariant: "pages with fault waiters are not MMU-resident",
                    snapshot: format!("page {page} is installed but {} warps wait on it", list.len()),
                });
            }
        }
        Ok(())
    }

    fn run(mut self) -> Result<RunMetrics, SimError> {
        self.launch_kernel(0)?;
        if self.to_enabled() {
            let period = self.cfg.policy.oversubscription.lifetime_sample_period;
            self.cross(ShardEffect::Sample { at: period });
        }
        if self.etc_enabled {
            self.cross(ShardEffect::EtcTick { at: self.throttle.next_tick() });
        }
        let budget = self.cfg.watchdog_event_budget;
        let mut last_sig = self.progress_signature();
        let mut stagnant: u64 = 0;
        loop {
            // The cycle barrier: deferred data-path work must replay
            // before the clock can advance past it (its wakes may precede
            // whatever is queued next) and before the queue can drain.
            if !self.batch_ops.is_empty() && self.events.peek_time() != Some(self.clock) {
                self.flush_mem_batch()?;
            }
            let Some((t, ev)) = self.events.pop() else { break };
            debug_assert!(t >= self.clock, "time went backwards");
            self.clock = t;
            // Any non-wake handler may push events, emit probes, or touch
            // shared state the deferred accesses were ordered against:
            // flush first so the (time, seq) order matches the serial
            // engine's direct pushes.
            if !matches!(ev, Event::WarpWake { .. }) {
                self.flush_mem_batch()?;
            }
            match ev {
                Event::WarpWake { block, warp } => self.on_warp_wake(block, warp)?,
                Event::RaiseFault { page } => self.on_raise_fault(page)?,
                Event::Uvm(e) => {
                    // Take/restore the recycled scratch so the runtime and
                    // apply step borrow independently; steady state never
                    // allocates.
                    let mut outs = std::mem::take(&mut self.uvm_out);
                    let res = self
                        .uvm
                        .on_event_into(e, self.clock, &mut outs)
                        .and_then(|()| self.apply_outputs(&mut outs));
                    outs.clear();
                    self.uvm_out = outs;
                    res?;
                    if self.cfg.audit >= AuditLevel::Full {
                        self.audit_cross_state()?;
                    }
                }
                Event::SwitchInDone { sm, block } => self.on_switch_in_done(sm, block)?,
                Event::Sample => self.on_sample()?,
                Event::EtcTick => self.on_etc_tick(),
            }
            if budget > 0 {
                let sig = self.progress_signature();
                if sig == last_sig {
                    stagnant += 1;
                    let occ = self.events.occupancy();
                    self.probes.emit_with(self.clock, || ProbeEvent::WatchdogTick {
                        events_without_progress: stagnant,
                        ring: occ.ring as u64,
                        wheel: occ.wheel as u64,
                        overflow: occ.overflow as u64,
                    });
                    if stagnant >= budget {
                        return Err(SimError::Livelock {
                            cycle: self.clock,
                            events_without_progress: stagnant,
                            snapshot: self.describe_stuck(),
                        });
                    }
                } else {
                    last_sig = sig;
                    stagnant = 0;
                }
            }
        }
        debug_assert!(self.batch_ops.is_empty(), "deferred mem ops survived the drain");
        if self.blocks_remaining > 0 || self.kernel_idx < self.workload.num_kernels() {
            return Err(SimError::Deadlock { cycle: self.clock, detail: self.describe_stuck() });
        }
        let Some(finished_at) = self.finished_at else {
            return Err(SimError::Deadlock {
                cycle: self.clock,
                detail: "work completed but no finish time was recorded".to_string(),
            });
        };
        let mmu_stats = self.mmu.stats();
        // Stray in-flight UVM events may have emitted after `finished_at`;
        // the summary goes out at the final drained clock so the trace
        // stays monotone.
        self.probes.emit_with(self.clock.max(finished_at), || ProbeEvent::TranslationSummary {
            l1_hits: mmu_stats.l1.hits,
            l1_misses: mmu_stats.l1.misses,
            large_hits: mmu_stats.large_hits(),
            walks: mmu_stats.walks,
            coalesces: mmu_stats.coalesces,
            splinters: mmu_stats.splinters,
        });
        // Only a non-default servicing model reports: under `cpu` the
        // counters are None and the event stream stays byte-identical to
        // the classic path.
        if let Some(c) = self.uvm.fault_servicing_counters() {
            self.probes.emit_with(self.clock.max(finished_at), || {
                ProbeEvent::FaultServicingSummary {
                    batches: c.batches,
                    faults: c.faults,
                    occupancy_cycles: c.occupancy_cycles,
                }
            });
        }
        let l2d = self.mem.l2_stats();
        let l2d_banks = self.mem.l2_bank_stats();
        self.probes.emit_with(self.clock.max(finished_at), || {
            let total: u64 = l2d_banks.iter().map(|s| s.accesses()).sum();
            let hottest = l2d_banks.iter().map(|s| s.accesses()).max().unwrap_or(0);
            ProbeEvent::DataPathSummary {
                l2_hits: l2d.hits,
                l2_misses: l2d.misses,
                l2_conflict_evictions: l2d.conflict_evictions,
                l2_banks: l2d_banks.len() as u32,
                l2_hot_bank_pct: (hottest * 100).checked_div(total).unwrap_or(0) as u32,
            }
        });
        self.probes.finish(finished_at);
        Ok(RunMetrics {
            cycles: finished_at,
            workload: self.workload.name(),
            footprint_bytes: self.workload.footprint_bytes(),
            memory_pages: self.memory_pages,
            kernels: self.workload.num_kernels(),
            blocks_retired: self.blocks_retired,
            warps_retired: self.warps_retired,
            mem_ops: self.mem_ops,
            uvm: self.uvm.stats(),
            mmu: mmu_stats,
            l1d: self.mem.l1_stats(),
            l2d,
            l2d_banks,
            ctx_switches: self.ctx_switches,
            ctx_switch_cycles: self.ctx_switch_cycles,
            final_oversub_degree: self.oversub.degree(),
            oversub_decrements: self.oversub.decrements(),
            throttle_engagements: self.throttle.engagements(),
        })
    }
}
