//! The sharded executor: parallel warp-stream prefabrication.
//!
//! # Why prefabrication is the parallel decomposition
//!
//! The simulated machine is memory-bound by construction — the paper's
//! whole subject is page-fault handling — so in steady state *every* warp
//! is within one memory operation of a UVM interaction (a translation, a
//! fault, a batch). The conservative window `[clock, horizon)` between
//! UVM interactions is therefore usually a single event wide, and
//! executing events inside it on competing threads buys nothing while
//! threatening the bit-identity oracle (the shared L2 TLB and data cache
//! are true-LRU: their state depends on global access order).
//!
//! What *is* embarrassingly parallel is the engine's single largest cost
//! centre: building warp access streams (≈40% of BFS simulation time).
//! Stream construction is a pure function of `(block, warp)` over the
//! kernel's shared immutable data ([`Kernel`] is `Send + Sync` and
//! `warp_stream` is required to be call-order independent), and every
//! grid block is activated exactly once before its kernel can end — a
//! block retires only after activating, and the kernel advances only when
//! every block has retired. Fabricating blocks eagerly on shard workers is
//! therefore **zero-speculation**: every fabricated stream is consumed,
//! and its contents are identical no matter which thread built it or
//! when.
//!
//! # Sharding and the merge
//!
//! Grid block `g` is owned by shard `g % shards`. Each worker walks its
//! blocks in grid order, builds the block's warp streams behind a
//! [`RecordingBoundary`] (the activation wakes, at relative cycle 0), and
//! ships `(streams, log)` over a bounded channel — the bound is the
//! conservative-window backpressure: workers at most `4 × shards` blocks
//! ahead of the coordinator block on `send`, so lookahead memory is flat.
//! The coordinator consumes fabrications at activation time and replays
//! each block's log into the global wheel at the activation cycle in
//! activation (key) order, reproducing the serial engine's `(time, seq)`
//! push order exactly — which is what makes `threads = N` bit-identical
//! to `threads = 1` for every `N`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use batmem_sim::ops::{BoxedStream, Kernel};
use batmem_types::{BlockId, Cycle, SimError};

use super::boundary::{RecordingBoundary, ShardEffect};

/// How long the coordinator waits on a missing fabrication before calling
/// the run wedged. Fabricating one block is microseconds of work; this
/// only trips if a worker died or a kernel's `warp_stream` hangs.
const FABRICATION_TIMEOUT: Duration = Duration::from_secs(120);

/// One fabricated block: its warp streams plus the boundary effects its
/// activation emits (recorded at relative cycle 0, under grid numbering).
pub(super) struct Fabricated {
    pub(super) grid_block: u32,
    pub(super) streams: Vec<BoxedStream>,
    pub(super) log: Vec<ShardEffect>,
}

/// A kernel handed to the shard workers.
struct KernelJob {
    kernel: Arc<dyn Kernel>,
    num_blocks: u32,
    warps_per_block: u32,
}

/// The pool of shard workers plus the coordinator-side fabrication store.
pub(super) struct ShardPool {
    shards: usize,
    job_txs: Vec<Sender<KernelJob>>,
    done_rx: Option<Receiver<Fabricated>>,
    // Fabrications received but not yet activated, keyed by grid block.
    // Bounded by the channel backpressure plus activation skew.
    store: Vec<Option<Fabricated>>,
    store_len: usize,
    // Per-shard fabricated-block counters (shared with the workers) for
    // progress signatures and wedged-run reports.
    fabricated: Vec<Arc<AtomicU64>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `shards` workers (callers pass `threads - 1`; the calling
    /// thread is the coordinator).
    pub(super) fn spawn(shards: usize) -> Self {
        let shards = shards.max(1);
        // The bounded channel IS the lookahead limit: workers collectively
        // stay at most this many fabrications ahead of activation.
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(shards * 4);
        let mut job_txs = Vec::with_capacity(shards);
        let mut fabricated = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<KernelJob>();
            let done_tx: SyncSender<Fabricated> = done_tx.clone();
            let counter = Arc::new(AtomicU64::new(0));
            let worker_counter = counter.clone();
            let handle = std::thread::Builder::new()
                .name(format!("batmem-shard-{shard}"))
                .spawn(move || worker(shard, shards, &job_rx, &done_tx, &worker_counter))
                .expect("spawning a shard worker");
            job_txs.push(job_tx);
            fabricated.push(counter);
            handles.push(handle);
        }
        Self {
            shards,
            job_txs,
            done_rx: Some(done_rx),
            store: Vec::new(),
            store_len: 0,
            fabricated,
            handles,
        }
    }

    /// Starts fabrication for a kernel. All of the previous kernel's
    /// fabrications have been consumed by now (every block activates
    /// exactly once before its kernel ends), so workers are idle and the
    /// channel is empty.
    pub(super) fn begin_kernel(
        &mut self,
        kernel: &Arc<dyn Kernel>,
        num_blocks: u32,
        warps_per_block: u32,
    ) {
        debug_assert_eq!(self.store_len, 0, "unconsumed fabrications across kernels");
        self.store.clear();
        self.store.resize_with(num_blocks as usize, || None);
        for tx in &self.job_txs {
            // A worker can only be gone if it panicked; the coordinator
            // then reports the wedge on the next `take`.
            let _ = tx.send(KernelJob {
                kernel: kernel.clone(),
                num_blocks,
                warps_per_block,
            });
        }
    }

    /// Hands over grid block `grid_block`'s fabrication, receiving from
    /// the workers until it arrives.
    pub(super) fn take(&mut self, grid_block: u32, clock: Cycle) -> Result<Fabricated, SimError> {
        loop {
            if let Some(fab) = self.store[grid_block as usize].take() {
                self.store_len -= 1;
                return Ok(fab);
            }
            let rx = self.done_rx.as_ref().expect("pool receiver live while running");
            match rx.recv_timeout(FABRICATION_TIMEOUT) {
                Ok(fab) => {
                    let slot = fab.grid_block as usize;
                    debug_assert!(self.store[slot].is_none(), "block fabricated twice");
                    self.store[slot] = Some(fab);
                    self.store_len += 1;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(SimError::Deadlock {
                        cycle: clock,
                        detail: format!(
                            "shard {} never delivered prefabricated block {}; {}",
                            grid_block as usize % self.shards,
                            grid_block,
                            self.describe_occupancy(),
                        ),
                    });
                }
            }
        }
    }

    /// Total blocks fabricated across all shards (monotone; feeds the
    /// watchdog's progress signature so a pool that is still fabricating
    /// is never mistaken for a stalled run).
    pub(super) fn blocks_fabricated(&self) -> u64 {
        self.fabricated.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard queue occupancy for wedged-run reports: how many blocks
    /// each shard has fabricated and how many sit merged-but-unactivated
    /// in the coordinator's store.
    pub(super) fn describe_occupancy(&self) -> String {
        let per_shard: Vec<String> = self
            .fabricated
            .iter()
            .enumerate()
            .map(|(s, c)| format!("shard {s}: {} fabricated", c.load(Ordering::Relaxed)))
            .collect();
        format!("{} awaiting activation [{}]", self.store_len, per_shard.join(", "))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the job channels ends the workers' outer loops; dropping
        // the receiver unblocks any worker parked on a full `send`.
        self.job_txs.clear();
        self.done_rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Shard worker: fabricate owned blocks of each kernel, in grid order.
fn worker(
    shard: usize,
    shards: usize,
    jobs: &Receiver<KernelJob>,
    done: &SyncSender<Fabricated>,
    fabricated: &AtomicU64,
) {
    while let Ok(job) = jobs.recv() {
        let mut g = shard as u32;
        while g < job.num_blocks {
            let streams: Vec<BoxedStream> = (0..job.warps_per_block)
                .map(|w| job.kernel.warp_stream(BlockId::new(g), w as u16))
                .collect();
            // The activation effects, exactly as the serial engine emits
            // them: one wake per warp, in warp order, at the activation
            // cycle (relative 0).
            let mut boundary = RecordingBoundary::new();
            for w in 0..job.warps_per_block as usize {
                boundary.record(ShardEffect::WakeWarp { at: 0, block: g as usize, warp: w });
            }
            fabricated.fetch_add(1, Ordering::Relaxed);
            let fab = Fabricated { grid_block: g, streams, log: boundary.into_log() };
            if done.send(fab).is_err() {
                return; // coordinator is gone (run ended or aborted)
            }
            g += shards as u32;
        }
    }
}
