//! The sharded executor: parallel warp-stream prefabrication and
//! bank-parallel data-path replay.
//!
//! # Why prefabrication is one parallel decomposition
//!
//! The simulated machine is memory-bound by construction — the paper's
//! whole subject is page-fault handling — so in steady state *every* warp
//! is within one memory operation of a UVM interaction (a translation, a
//! fault, a batch). The conservative window `[clock, horizon)` between
//! UVM interactions is therefore usually a single event wide, and
//! executing *events* inside it on competing threads buys nothing while
//! threatening the bit-identity oracle (the shared L2 TLB is true-LRU:
//! its state depends on global access order).
//!
//! What *is* embarrassingly parallel is building warp access streams
//! (≈40% of BFS simulation time). Stream construction is a pure function
//! of `(block, warp)` over the kernel's shared immutable data ([`Kernel`]
//! is `Send + Sync` and `warp_stream` is required to be call-order
//! independent), and every grid block is activated exactly once before
//! its kernel can end. Fabricating blocks eagerly on shard workers is
//! therefore **zero-speculation**: every fabricated stream is consumed,
//! and its contents are identical no matter which thread built it.
//!
//! # Why bank replay is the other
//!
//! PR 9 left memory-op execution serial because sharding *by SM* would
//! interleave accesses to the shared true-LRU caches in thread-schedule
//! order. Sharding *by cache bank* has no such hazard: hit/miss under
//! per-set LRU depends only on the access order within a set, and a
//! line's bank is a pure function of its address. The engine batches the
//! data-path accesses of one cycle, partitions them by bank **preserving
//! arrival order within each bank**, and ships each bank's queue together
//! with that bank's detached cache stripes
//! ([`MemPathBank`](batmem_sim::cache::MemPathBank)) to a worker. Workers
//! replay their queues serially; the resulting latencies are merged back
//! in the original arrival order, so every latency — and every LRU update
//! — is bit-identical to the serial replay. See `DESIGN.md` §14.
//!
//! # Sharding and the merge
//!
//! Grid block `g` is owned by shard `g % shards`. Each worker walks its
//! blocks in grid order, builds the block's warp streams behind a
//! [`RecordingBoundary`] (the activation wakes, at relative cycle 0), and
//! ships `(streams, log)` over a bounded channel — the bound is the
//! conservative-window backpressure: workers stay at most `4 × shards`
//! blocks ahead of the coordinator, so lookahead memory is flat. The
//! coordinator consumes fabrications at activation time and replays each
//! block's log into the global wheel at the activation cycle in
//! activation (key) order, reproducing the serial engine's `(time, seq)`
//! push order exactly — which is what makes `threads = N` bit-identical
//! to `threads = 1` for every `N`.
//!
//! Bank jobs ride the same per-worker channels as kernel jobs. A worker
//! that is fabricating ahead (or parked on a full lookahead channel)
//! polls for bank work instead of blocking, so a bank replay is never
//! stuck behind prefabrication lookahead — the coordinator is waiting on
//! that replay *now*, while fabrications are consumed lazily.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use batmem_sim::cache::MemPathBank;
use batmem_sim::ops::{BoxedStream, Kernel};
use batmem_types::{BlockId, Cycle, SimError, VirtAddr};

use super::boundary::{RecordingBoundary, ShardEffect};

/// How long the coordinator waits on a missing fabrication or bank result
/// before calling the run wedged. Both are microseconds of work; this
/// only trips if a worker died or a kernel's `warp_stream` hangs.
const FABRICATION_TIMEOUT: Duration = Duration::from_secs(120);

/// How long a lookahead-blocked worker sleeps between polls for bank work.
const BUSY_POLL: Duration = Duration::from_micros(50);

/// One fabricated block: its warp streams plus the boundary effects its
/// activation emits (recorded at relative cycle 0, under grid numbering).
pub(super) struct Fabricated {
    pub(super) grid_block: u32,
    pub(super) streams: Vec<BoxedStream>,
    pub(super) log: Vec<ShardEffect>,
}

/// A kernel handed to the shard workers.
struct KernelJob {
    kernel: Arc<dyn Kernel>,
    num_blocks: u32,
    warps_per_block: u32,
}

/// One bank's share of a deferred-transaction batch: the detached cache
/// stripes plus the accesses to replay against them, in arrival order.
pub(super) struct BankJob {
    pub(super) view: MemPathBank,
    pub(super) queue: Vec<(u16, VirtAddr)>,
    /// Recycled output buffer (cleared by the engine between batches).
    pub(super) latencies: Vec<Cycle>,
}

/// A replayed bank: the stripes to reattach, the queue buffer to recycle,
/// and one latency per queued access, in queue order.
pub(super) struct BankResult {
    pub(super) view: MemPathBank,
    pub(super) queue: Vec<(u16, VirtAddr)>,
    pub(super) latencies: Vec<Cycle>,
}

/// Replays a bank job to completion. Shared by the workers and the
/// coordinator's fallback path so both produce identical results.
pub(super) fn run_bank(mut job: BankJob) -> BankResult {
    job.view.replay(&job.queue, &mut job.latencies);
    BankResult { view: job.view, queue: job.queue, latencies: job.latencies }
}

/// Work shipped to a shard worker.
enum Job {
    Kernel(KernelJob),
    Bank(BankJob),
}

/// In-progress fabrication state on a worker: the kernel and the next
/// owned grid block to build.
struct FabState {
    job: KernelJob,
    next: u32,
}

/// The pool of shard workers plus the coordinator-side fabrication store.
pub(super) struct ShardPool {
    shards: usize,
    job_txs: Vec<Sender<Job>>,
    done_rx: Option<Receiver<Fabricated>>,
    bank_rx: Receiver<BankResult>,
    // Fabrications received but not yet activated, keyed by grid block.
    // Bounded by the channel backpressure plus activation skew.
    store: Vec<Option<Fabricated>>,
    store_len: usize,
    // Round-robin cursor for bank-job placement.
    next_bank_worker: usize,
    // Per-shard counters (shared with the workers) for progress
    // signatures and wedged-run reports.
    fabricated: Vec<Arc<AtomicU64>>,
    banks_replayed: Vec<Arc<AtomicU64>>,
    handles: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `shards` workers (callers pass `threads - 1`; the calling
    /// thread is the coordinator).
    pub(super) fn spawn(shards: usize) -> Self {
        let shards = shards.max(1);
        // The bounded channel IS the lookahead limit: workers collectively
        // stay at most this many fabrications ahead of activation.
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(shards * 4);
        // Bank results are pulled eagerly at the flush barrier, so this
        // channel needs no backpressure.
        let (bank_tx, bank_rx) = std::sync::mpsc::channel();
        let mut job_txs = Vec::with_capacity(shards);
        let mut fabricated = Vec::with_capacity(shards);
        let mut banks_replayed = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
            let done_tx: SyncSender<Fabricated> = done_tx.clone();
            let bank_tx: Sender<BankResult> = bank_tx.clone();
            let counter = Arc::new(AtomicU64::new(0));
            let bank_counter = Arc::new(AtomicU64::new(0));
            let worker_counter = counter.clone();
            let worker_bank_counter = bank_counter.clone();
            let handle = std::thread::Builder::new()
                .name(format!("batmem-shard-{shard}"))
                .spawn(move || {
                    worker(shard, shards, &job_rx, &done_tx, &bank_tx, &worker_counter, &worker_bank_counter)
                })
                .expect("spawning a shard worker");
            job_txs.push(job_tx);
            fabricated.push(counter);
            banks_replayed.push(bank_counter);
            handles.push(handle);
        }
        Self {
            shards,
            job_txs,
            done_rx: Some(done_rx),
            bank_rx,
            store: Vec::new(),
            store_len: 0,
            next_bank_worker: 0,
            fabricated,
            banks_replayed,
            handles,
        }
    }

    /// Starts fabrication for a kernel. All of the previous kernel's
    /// fabrications have been consumed by now (every block activates
    /// exactly once before its kernel ends), so workers are idle and the
    /// channel is empty.
    pub(super) fn begin_kernel(
        &mut self,
        kernel: &Arc<dyn Kernel>,
        num_blocks: u32,
        warps_per_block: u32,
    ) {
        debug_assert_eq!(self.store_len, 0, "unconsumed fabrications across kernels");
        self.store.clear();
        self.store.resize_with(num_blocks as usize, || None);
        for tx in &self.job_txs {
            // A worker can only be gone if it panicked; the coordinator
            // then reports the wedge on the next `take`.
            let _ = tx.send(Job::Kernel(KernelJob {
                kernel: kernel.clone(),
                num_blocks,
                warps_per_block,
            }));
        }
    }

    /// Hands over grid block `grid_block`'s fabrication, receiving from
    /// the workers until it arrives.
    pub(super) fn take(&mut self, grid_block: u32, clock: Cycle) -> Result<Fabricated, SimError> {
        loop {
            if let Some(fab) = self.store[grid_block as usize].take() {
                self.store_len -= 1;
                return Ok(fab);
            }
            let rx = self.done_rx.as_ref().expect("pool receiver live while running");
            match rx.recv_timeout(FABRICATION_TIMEOUT) {
                Ok(fab) => {
                    let slot = fab.grid_block as usize;
                    debug_assert!(self.store[slot].is_none(), "block fabricated twice");
                    self.store[slot] = Some(fab);
                    self.store_len += 1;
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    return Err(SimError::Deadlock {
                        cycle: clock,
                        detail: format!(
                            "shard {} never delivered prefabricated block {}; {}",
                            grid_block as usize % self.shards,
                            grid_block,
                            self.describe_occupancy(),
                        ),
                    });
                }
            }
        }
    }

    /// Ships one bank's replay to a worker (round-robin). Returns the
    /// finished result immediately if the worker is gone (it panicked and
    /// the run is about to be reported wedged) — the replay then happens
    /// inline so the cache stripes are never lost.
    pub(super) fn dispatch_bank(&mut self, job: BankJob) -> Option<BankResult> {
        let w = self.next_bank_worker;
        self.next_bank_worker = (w + 1) % self.shards;
        match self.job_txs[w].send(Job::Bank(job)) {
            Ok(()) => None,
            Err(std::sync::mpsc::SendError(Job::Bank(job))) => Some(run_bank(job)),
            Err(std::sync::mpsc::SendError(Job::Kernel(_))) => {
                unreachable!("send returns the job it was given")
            }
        }
    }

    /// Receives one replayed bank (in completion order — the caller
    /// reattaches by [`MemPathBank::bank`] index, so arrival order does
    /// not matter).
    pub(super) fn collect_bank(&mut self, clock: Cycle) -> Result<BankResult, SimError> {
        match self.bank_rx.recv_timeout(FABRICATION_TIMEOUT) {
            Ok(result) => Ok(result),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                Err(SimError::Deadlock {
                    cycle: clock,
                    detail: format!(
                        "a dispatched bank replay never completed; {}",
                        self.describe_occupancy()
                    ),
                })
            }
        }
    }

    /// Total blocks fabricated across all shards (monotone; feeds the
    /// watchdog's progress signature so a pool that is still fabricating
    /// is never mistaken for a stalled run).
    pub(super) fn blocks_fabricated(&self) -> u64 {
        self.fabricated.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard queue occupancy for wedged-run reports: how many blocks
    /// each shard has fabricated, how many banks it has replayed, and how
    /// many fabrications sit merged-but-unactivated in the coordinator's
    /// store.
    pub(super) fn describe_occupancy(&self) -> String {
        let per_shard: Vec<String> = self
            .fabricated
            .iter()
            .zip(&self.banks_replayed)
            .enumerate()
            .map(|(s, (c, b))| {
                format!(
                    "shard {s}: {} fabricated, {} banks replayed",
                    c.load(Ordering::Relaxed),
                    b.load(Ordering::Relaxed)
                )
            })
            .collect();
        format!("{} awaiting activation [{}]", self.store_len, per_shard.join(", "))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the job channels ends the workers' outer loops; dropping
        // the receiver unblocks any worker parked on a full `send` (and the
        // busy-poll path observes the disconnect on its next `try_send`).
        self.job_txs.clear();
        self.done_rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Shard worker: fabricate owned blocks of each kernel in grid order, and
/// replay dispatched cache banks with priority.
///
/// The worker never blocks on the fabrication channel while it holds (or
/// could receive) bank work: a full lookahead channel turns into a short
/// poll loop that keeps draining the job queue, because the coordinator
/// waits on bank results *synchronously* at the flush barrier while
/// fabrications are consumed lazily at activation time.
#[allow(clippy::too_many_arguments)]
fn worker(
    shard: usize,
    shards: usize,
    jobs: &Receiver<Job>,
    done: &SyncSender<Fabricated>,
    bank_done: &Sender<BankResult>,
    fabricated: &AtomicU64,
    banks_replayed: &AtomicU64,
) {
    let mut fab: Option<FabState> = None;
    let mut unsent: Option<Fabricated> = None;
    loop {
        if fab.is_none() && unsent.is_none() {
            // Idle: park on the job queue.
            match jobs.recv() {
                Ok(Job::Bank(job)) => {
                    banks_replayed.fetch_add(1, Ordering::Relaxed);
                    if bank_done.send(run_bank(job)).is_err() {
                        return; // coordinator is gone (run ended or aborted)
                    }
                    continue;
                }
                Ok(Job::Kernel(job)) => fab = Some(FabState { next: shard as u32, job }),
                Err(_) => return,
            }
        } else {
            // Busy: drain everything already queued without blocking, so
            // bank replays never wait behind fabrication lookahead.
            loop {
                match jobs.try_recv() {
                    Ok(Job::Bank(job)) => {
                        banks_replayed.fetch_add(1, Ordering::Relaxed);
                        if bank_done.send(run_bank(job)).is_err() {
                            return;
                        }
                    }
                    Ok(Job::Kernel(job)) => {
                        debug_assert!(
                            fab.is_none(),
                            "next kernel arrived while the previous one was fabricating"
                        );
                        fab = Some(FabState { next: shard as u32, job });
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return,
                }
            }
        }
        // Flush the held fabrication; if the lookahead channel is full,
        // poll briefly (re-checking for bank jobs) instead of parking.
        if let Some(block) = unsent.take() {
            match done.try_send(block) {
                Ok(()) => {}
                Err(TrySendError::Full(block)) => {
                    unsent = Some(block);
                    std::thread::sleep(BUSY_POLL);
                    continue;
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
        // Fabricate the next owned block, if a kernel is in progress.
        if let Some(state) = fab.as_mut() {
            if state.next < state.job.num_blocks {
                let g = state.next;
                let streams: Vec<BoxedStream> = (0..state.job.warps_per_block)
                    .map(|w| state.job.kernel.warp_stream(BlockId::new(g), w as u16))
                    .collect();
                // The activation effects, exactly as the serial engine
                // emits them: one wake per warp, in warp order, at the
                // activation cycle (relative 0).
                let mut boundary = RecordingBoundary::new();
                for w in 0..state.job.warps_per_block as usize {
                    boundary.record(ShardEffect::WakeWarp { at: 0, block: g as usize, warp: w });
                }
                fabricated.fetch_add(1, Ordering::Relaxed);
                unsent = Some(Fabricated { grid_block: g, streams, log: boundary.into_log() });
                state.next += shards as u32;
            } else {
                fab = None;
            }
        }
    }
}
