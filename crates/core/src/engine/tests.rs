use super::*;
use batmem_types::policy::{EvictionPolicy, PolicyConfig, PrefetchPolicy, SwitchTrigger, ToConfig};
use batmem_workloads::synthetic::{SharedPages, Strided};

fn no_prefetch(mut p: PolicyConfig) -> PolicyConfig {
    p.prefetch = PrefetchPolicy::None;
    p
}

#[test]
fn single_warp_single_page_timing() {
    // One block, one warp, one page, one load: time = walk + ISR +
    // handling + transfer + retry pipeline.
    let w = Strided::new(1, 32, 32, 1, 0, 1);
    let m = Simulation::builder()
        .policy(no_prefetch(PolicyConfig::baseline()))
        .try_run(Box::new(w)).unwrap();
    assert_eq!(m.uvm.num_batches(), 1);
    assert_eq!(m.uvm.batches[0].faults, 1);
    // Lower bound: ISR (1k) + handling (20k) + page transfer (~4.2k).
    assert!(m.cycles > 25_000, "{}", m.cycles);
    assert!(m.cycles < 40_000, "{}", m.cycles);
}

#[test]
fn shared_page_fault_wakes_all_waiters() {
    // 64 blocks all reading the same 3 pages: one batch serves everyone.
    let w = SharedPages::new(64, 256, 32, 3, 10);
    let m = Simulation::builder()
        .policy(no_prefetch(PolicyConfig::baseline()))
        .try_run(Box::new(w)).unwrap();
    let faults: u64 = m.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
    assert_eq!(faults, 3, "shared pages must fault once each");
    assert_eq!(m.blocks_retired, 64);
}

#[test]
fn to_context_switches_on_fault_stalls() {
    // Tiny capacity + per-warp disjoint pages: active blocks stall fully
    // and the provisioned inactive blocks must switch in.
    let w = Strided::new(200, 256, 56, 2, 50, 3);
    let mut policy = no_prefetch(PolicyConfig::to_only());
    policy.oversubscription = ToConfig { max_extra_blocks: 3, ..ToConfig::enabled() };
    let m = Simulation::builder().policy(policy).memory_ratio(0.25).try_run(Box::new(w)).unwrap();
    assert!(m.ctx_switches > 0, "no switches despite fault stalls");
    assert!(m.ctx_switch_cycles > 0);
    assert_eq!(m.blocks_retired, 200);
}

#[test]
fn any_stall_trigger_switches_without_faults() {
    let w = Strided::new(200, 256, 56, 2, 0, 4);
    let mut policy = no_prefetch(PolicyConfig::to_only());
    policy.oversubscription =
        ToConfig { trigger: SwitchTrigger::AnyStall, ..ToConfig::enabled() };
    let m = Simulation::builder().policy(policy).try_run(Box::new(w)).unwrap();
    assert_eq!(m.uvm.evictions, 0);
    assert!(m.ctx_switches > 0, "AnyStall must switch on memory stalls");
}

#[test]
fn fault_stall_trigger_switches_no_more_than_any_stall() {
    // First-touch demand faults exist even with unlimited memory, so
    // FaultStall may switch — but AnyStall adds every memory stall as a
    // trigger, so it can never switch less.
    let run = |trigger: SwitchTrigger| {
        let w = Strided::new(200, 256, 56, 2, 0, 4);
        let mut policy = no_prefetch(PolicyConfig::to_only());
        policy.oversubscription = ToConfig { trigger, ..ToConfig::enabled() };
        Simulation::builder().policy(policy).try_run(Box::new(w)).unwrap()
    };
    let fault_stall = run(SwitchTrigger::FaultStall);
    let any_stall = run(SwitchTrigger::AnyStall);
    assert!(fault_stall.ctx_switches <= any_stall.ctx_switches);
    assert!(any_stall.ctx_switches > 0);
}

#[test]
fn severe_oversubscription_still_terminates() {
    // Capacity 2 pages, ops spanning more pages than capacity: the
    // per-lane replay rule must guarantee forward progress.
    let w = SharedPages::new(8, 256, 32, 12, 5);
    let m = Simulation::builder()
        .policy(no_prefetch(PolicyConfig::baseline()))
        .memory_pages(2)
        .try_run(Box::new(w)).unwrap();
    assert_eq!(m.blocks_retired, 8);
    assert!(m.uvm.evictions > 0);
    assert!(m.uvm.peak_resident_pages <= 2);
}

#[test]
fn severe_oversubscription_terminates_under_ue() {
    let w = SharedPages::new(8, 256, 32, 12, 5);
    let mut policy = no_prefetch(PolicyConfig::ue_only());
    policy.eviction = EvictionPolicy::Unobtrusive;
    let m = Simulation::builder().policy(policy).memory_pages(2).try_run(Box::new(w)).unwrap();
    assert_eq!(m.blocks_retired, 8);
}

#[test]
fn compute_only_workload_never_faults() {
    // repeats * compute with one page per warp: after the first touch,
    // everything is compute; the page count equals warps.
    let w = Strided::new(4, 64, 16, 1, 1_000, 16);
    let m = Simulation::builder().policy(no_prefetch(PolicyConfig::baseline())).try_run(Box::new(w)).unwrap();
    let faults: u64 = m.uvm.batches.iter().map(|b| u64::from(b.faults)).sum();
    assert_eq!(faults, 4 * 2); // 4 blocks x 2 warps x 1 page
    assert!(m.mem_ops > faults);
}

#[test]
fn mem_ops_count_replays() {
    let w = Strided::new(1, 32, 32, 4, 0, 1);
    let m = Simulation::builder().policy(no_prefetch(PolicyConfig::baseline())).try_run(Box::new(w)).unwrap();
    // 4 loads + 4 replays after their faults.
    assert_eq!(m.mem_ops, 8);
}

#[test]
fn builder_ratio_sets_capacity_from_footprint() {
    let w = Strided::new(4, 256, 32, 4, 10, 1); // 4*8*4 = 128 pages
    let m = Simulation::builder()
        .policy(no_prefetch(PolicyConfig::baseline()))
        .memory_ratio(0.25)
        .try_run(Box::new(w)).unwrap();
    assert_eq!(m.memory_pages, Some(32));
}

#[test]
#[should_panic(expected = "memory ratio must be positive")]
fn zero_ratio_panics() {
    let _ = Simulation::builder().memory_ratio(0.0);
}

#[test]
fn sharded_run_matches_serial_on_unit_tests_shape() {
    // The cheap in-crate determinism check (the full differential matrix
    // lives in tests/threads.rs): a TO+UE run under pressure, serial vs
    // sharded, compared field-for-field via Debug formatting.
    let run = |threads: usize| {
        let w = Strided::new(64, 256, 56, 2, 50, 3);
        let mut policy = no_prefetch(PolicyConfig::to_only());
        policy.oversubscription = ToConfig { max_extra_blocks: 3, ..ToConfig::enabled() };
        Simulation::builder()
            .policy(policy)
            .memory_ratio(0.25)
            .threads(threads)
            .try_run(Box::new(w))
            .unwrap()
    };
    let serial = run(1);
    for threads in [2, 3, 8] {
        let sharded = run(threads);
        assert_eq!(
            format!("{serial:?}"),
            format!("{sharded:?}"),
            "metrics diverged at {threads} threads"
        );
    }
}

#[test]
#[should_panic(expected = "threads must be at least 1")]
fn zero_threads_panics() {
    let _ = Simulation::builder().threads(0);
}
