//! Shared-state handlers: the UVM runtime's outputs, fault recording,
//! page-arrival wakeups, and the periodic controllers.
//!
//! These run only on the coordinator thread — the far-fault buffer, the
//! MMU residency map, the ETC throttle, and the TO sampler are global
//! structures whose update order is part of the simulated semantics. The
//! wakes they emit toward SM shards cross the boundary like any other
//! effect.

use batmem_sim::block::BlockResidency;
use batmem_sim::warp::WarpPhase;
use batmem_types::probe::ProbeEvent;
use batmem_types::{PageId, SimError};
use batmem_uvm::UvmOutput;

use super::boundary::ShardEffect;
use super::Engine;

impl Engine {
    pub(super) fn on_raise_fault(&mut self, page: PageId) -> Result<(), SimError> {
        // The page may have been migrated (or scheduled) since the walk
        // failed; replay would find it resident.
        if self.mmu.is_resident(page) || self.uvm.is_inflight(page) || self.uvm.is_resident(page) {
            return Ok(());
        }
        if self.etc_enabled {
            let refault = !self.seen_fault_pages.insert(page);
            self.throttle.on_fault(refault);
        }
        let mut outs = std::mem::take(&mut self.uvm_out);
        let res = self.uvm.record_fault_into(page, self.clock, &mut outs).and_then(|()| {
            self.faults_recorded += 1;
            self.apply_outputs(&mut outs)
        });
        outs.clear();
        self.uvm_out = outs;
        res
    }

    /// Applies and drains the runtime's commands; `outs` is the engine's
    /// recycled scratch and comes back empty.
    pub(super) fn apply_outputs(&mut self, outs: &mut Vec<UvmOutput>) -> Result<(), SimError> {
        for o in outs.drain(..) {
            match o {
                UvmOutput::Schedule { at, event } => {
                    self.cross(ShardEffect::Uvm { at: at.max(self.clock), event });
                }
                UvmOutput::Install { page, frame } => {
                    self.mmu.install(page, frame, self.clock)?;
                    self.pages_installed += 1;
                    self.wake_waiters(page)?;
                }
                UvmOutput::Evict { page } => {
                    self.mmu.evict(page, self.clock)?;
                }
                UvmOutput::Coalesce { region } => {
                    self.mmu.promote(region, self.clock)?;
                }
                UvmOutput::Splinter { region } => {
                    self.mmu.splinter(region, self.clock)?;
                }
            }
        }
        Ok(())
    }

    fn wake_waiters(&mut self, page: PageId) -> Result<(), SimError> {
        let Some(mut list) = self.waiters.remove(page) else { return Ok(()) };
        for &(b, w) in &list {
            if self.blocks[b].warps[w].page_arrived() {
                let block_id = self.blocks[b].id;
                let sm = self.block_sm[b];
                self.probes.emit_with(self.clock, || ProbeEvent::WarpResumed {
                    sm: sm as u16,
                    block: block_id.index() as u32,
                    warp: w as u16,
                });
                match self.blocks[b].residency {
                    BlockResidency::Active => {
                        self.blocks[b].warps[w].phase = WarpPhase::Ready;
                        self.cross(ShardEffect::WakeWarp { at: self.clock, block: b, warp: w });
                    }
                    _ => {
                        self.blocks[b].warps[w].phase = WarpPhase::ReadyInactive;
                        // An inactive block just became runnable: a stalled
                        // active block can now yield to it.
                        let sm = self.block_sm[b];
                        self.maybe_switch(sm)?;
                    }
                }
            }
        }
        // Recycle the waiter list's capacity for the next faulting page.
        list.clear();
        self.waiter_pool.push(list);
        Ok(())
    }

    // ---- periodic controllers ----------------------------------------------

    pub(super) fn on_sample(&mut self) -> Result<(), SimError> {
        if !self.to_enabled() {
            return Ok(());
        }
        let sample = self.uvm.sample_lifetime();
        self.oversub.on_sample(sample);
        // A raised degree provisions more inactive blocks immediately.
        self.top_up_inactive()?;
        if self.kernel_idx < self.workload.num_kernels() {
            let period = self.cfg.policy.oversubscription.lifetime_sample_period;
            self.cross(ShardEffect::Sample { at: self.clock + period });
        }
        Ok(())
    }

    pub(super) fn on_etc_tick(&mut self) {
        if self.throttle.tick(self.clock) {
            self.apply_throttle();
        }
        if self.kernel_idx < self.workload.num_kernels() {
            self.cross(ShardEffect::EtcTick { at: self.throttle.next_tick().max(self.clock + 1) });
        }
    }

    fn apply_throttle(&mut self) {
        let new_count = self.throttle.throttled_sms();
        let old_count = self.throttled_count;
        self.throttled_count = new_count;
        if new_count < old_count {
            // SMs came back: release their parked warps.
            let lo = self.sms.len() - old_count as usize;
            let hi = self.sms.len() - new_count as usize;
            for sm in lo..hi {
                // Nothing below mutates the SM's active list, so index into
                // it directly instead of cloning it per released SM.
                for i in 0..self.sms[sm].active.len() {
                    let b = self.sms[sm].active[i];
                    for w in 0..self.blocks[b].warps.len() {
                        if self.blocks[b].warps[w].phase == WarpPhase::Ready {
                            self.cross(ShardEffect::WakeWarp {
                                at: self.clock,
                                block: b,
                                warp: w,
                            });
                        }
                    }
                }
            }
        }
    }
}
