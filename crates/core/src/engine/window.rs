//! Conservative time-window derivation.
//!
//! A shard may run ahead of the global clock only up to the earliest
//! pending **UVM interaction** — the next cycle at which shared state
//! (fault buffer, batch pipeline, TO sampler, ETC controller) can change
//! in a way the shard would observe. [`WindowTracker`] keeps that horizon:
//! every UVM-interaction effect crossing the boundary notes its due cycle
//! here, and `[clock, horizon)` is the window within which SM-local work
//! is safe to advance.
//!
//! The engine's prefabrication pool exploits a stronger property for the
//! work it parallelises (warp-stream construction is *time-free*, see
//! [`super::parallel`]), so the tracker's horizon is not used to gate
//! execution; it is reported in [`super::Engine::describe_stuck`] and at
//! merge points, where "how far could a shard legally have advanced"
//! is exactly the datum a wedged-run report needs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use batmem_types::Cycle;

use super::boundary::ShardEffect;

/// Min-heap of pending UVM-interaction cycles.
#[derive(Debug, Default)]
pub(super) struct WindowTracker {
    pending: BinaryHeap<Reverse<Cycle>>,
}

impl WindowTracker {
    pub(super) fn new() -> Self {
        Self::default()
    }

    /// Notes `effect` crossing the boundary at current cycle `now`.
    /// Warp wakes are SM-local and do not bound the window; everything
    /// else does. Entries already in the past are pruned opportunistically
    /// so the heap tracks the event population instead of growing with run
    /// length.
    #[inline]
    pub(super) fn note(&mut self, now: Cycle, effect: &ShardEffect) {
        if !effect.is_uvm_interaction() {
            return;
        }
        while let Some(&Reverse(t)) = self.pending.peek() {
            if t >= now {
                break;
            }
            self.pending.pop();
        }
        self.pending.push(Reverse(effect.at()));
    }

    /// The window's exclusive upper bound as of `now`: the earliest
    /// pending UVM interaction at or after `now`, or `None` when nothing
    /// is pending (the window is unbounded — shards could run to kernel
    /// end). A scan rather than a pop so diagnostic call sites can hold
    /// `&self`; `note`'s opportunistic pruning keeps the population small.
    pub(super) fn horizon_at(&self, now: Cycle) -> Option<Cycle> {
        self.pending.iter().map(|&Reverse(t)| t).filter(|&t| t >= now).min()
    }
}

/// Running diagnostics of the bank-parallel data path: how many cycle
/// batches have flushed, how many fanned out to bank workers (the rest
/// replayed inline below the dispatch threshold), and the per-bank queue
/// occupancy of the most recent fan-out. Reported by
/// [`super::Engine::describe_stuck`], where a skewed bank distribution
/// explains why fan-out bought nothing on a wedged or slow run.
#[derive(Debug, Default)]
pub(super) struct BankLoad {
    flushes: u64,
    dispatched: u64,
    last_counts: Vec<usize>,
}

impl BankLoad {
    /// Records one batch flush and whether it fanned out to workers.
    pub(super) fn note_flush(&mut self, dispatched: bool) {
        self.flushes += 1;
        if dispatched {
            self.dispatched += 1;
        }
    }

    /// Snapshots the per-bank queue lengths of a fan-out.
    pub(super) fn note_counts<T>(&mut self, queues: &[Vec<T>]) {
        self.last_counts.clear();
        self.last_counts.extend(queues.iter().map(Vec::len));
    }

    /// One-line occupancy report for wedged-run diagnostics.
    pub(super) fn describe(&self) -> String {
        format!(
            "{} data-path flushes ({} fanned out), last fan-out bank occupancy {:?}",
            self.flushes, self.dispatched, self.last_counts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_types::PageId;

    fn fault_at(at: Cycle) -> ShardEffect {
        ShardEffect::RaiseFault { at, page: PageId::new(0) }
    }

    #[test]
    fn horizon_is_earliest_pending_interaction() {
        let mut w = WindowTracker::new();
        assert_eq!(w.horizon_at(0), None);
        w.note(0, &fault_at(30));
        w.note(0, &fault_at(10));
        w.note(0, &ShardEffect::Sample { at: 20 });
        assert_eq!(w.horizon_at(0), Some(10));
        // Wakes are SM-local: they never tighten the window.
        w.note(0, &ShardEffect::WakeWarp { at: 5, block: 0, warp: 0 });
        assert_eq!(w.horizon_at(0), Some(10));
        // Advancing past an entry retires it.
        assert_eq!(w.horizon_at(11), Some(20));
        assert_eq!(w.horizon_at(31), None);
    }

    #[test]
    fn stale_entries_prune_on_note() {
        let mut w = WindowTracker::new();
        for t in 0..100 {
            w.note(t, &fault_at(t + 1));
        }
        // Only the final entry can still be pending.
        assert!(w.pending.len() <= 2, "heap retained stale entries: {}", w.pending.len());
    }

    #[test]
    fn bank_load_tracks_flushes_and_last_occupancy() {
        let mut b = BankLoad::default();
        assert_eq!(b.flushes, 0);
        b.note_flush(false);
        b.note_counts::<u32>(&[vec![], vec![]]);
        b.note_flush(true);
        b.note_counts(&[vec![1u32, 2], vec![3]]);
        assert_eq!(b.flushes, 2);
        let report = b.describe();
        assert!(report.contains("2 data-path flushes (1 fanned out)"), "{report}");
        assert!(report.contains("[2, 1]"), "{report}");
    }
}
