//! Experiment helpers used by the figure-regeneration harness.

use batmem_sim::ops::Workload;
use batmem_sim::sm::occupancy;
use batmem_types::addr::PageGeometry;
use batmem_types::config::GpuConfig;
use batmem_types::{BlockId, KernelId};
use std::collections::HashSet;

/// Fig. 1's metric: the fraction of the workload's pages that the thread
/// blocks *concurrently resident* on `active_sms` SMs touch, relative to
/// the pages the whole grid touches.
///
/// For tiled regular workloads this scales with `active_sms` (core
/// throttling shrinks the working set); for graph workloads nearly all
/// pages are shared across blocks, so the curve is flat — the paper's
/// argument for why memory-aware throttling cannot help irregular
/// applications.
///
/// # Panics
///
/// Panics if `active_sms` is zero.
pub fn working_set_fraction(workload: &dyn Workload, active_sms: u16, gpu: &GpuConfig) -> f64 {
    assert!(active_sms > 0, "need at least one active SM");
    let geom = PageGeometry::default();
    let mut wave_pages: HashSet<u64> = HashSet::new();
    let mut all_pages: HashSet<u64> = HashSet::new();
    for k in 0..workload.num_kernels() {
        let kernel = workload.kernel(KernelId::new(k));
        let spec = kernel.spec();
        let occ = occupancy(gpu, &spec);
        let wave_blocks = u64::from(active_sms) * u64::from(occ.active_limit);
        for blk in 0..spec.num_blocks {
            for warp in 0..spec.warps_per_block(gpu.warp_size) {
                let mut s = kernel.warp_stream(BlockId::new(blk), warp as u16);
                while let Some(op) = s.next_op() {
                    for a in op.addrs() {
                        let p = geom.page_of(*a).index();
                        all_pages.insert(p);
                        if u64::from(blk) < wave_blocks {
                            wave_pages.insert(p);
                        }
                    }
                }
            }
        }
    }
    if all_pages.is_empty() {
        return 0.0;
    }
    wave_pages.len() as f64 / all_pages.len() as f64
}

/// [`working_set_fraction`] for every SM count `1..=max_sms` in a single
/// pass over the workload's streams (what Fig. 1 plots).
///
/// # Panics
///
/// Panics if `max_sms` is zero.
pub fn working_set_curve(workload: &dyn Workload, max_sms: u16, gpu: &GpuConfig) -> Vec<f64> {
    assert!(max_sms > 0, "need at least one SM");
    let geom = PageGeometry::default();
    // For each page, the smallest SM count whose first wave touches it.
    let mut min_wave: std::collections::HashMap<u64, u16> = std::collections::HashMap::new();
    for k in 0..workload.num_kernels() {
        let kernel = workload.kernel(KernelId::new(k));
        let spec = kernel.spec();
        let occ = occupancy(gpu, &spec);
        for blk in 0..spec.num_blocks {
            // Block `blk` is in the first wave of n SMs iff blk < n * limit.
            let n_min = (u64::from(blk) / u64::from(occ.active_limit) + 1)
                .min(u64::from(max_sms) + 1) as u16;
            for warp in 0..spec.warps_per_block(gpu.warp_size) {
                let mut s = kernel.warp_stream(BlockId::new(blk), warp as u16);
                while let Some(op) = s.next_op() {
                    for a in op.addrs() {
                        let p = geom.page_of(*a).index();
                        min_wave
                            .entry(p)
                            .and_modify(|m| *m = (*m).min(n_min))
                            .or_insert(n_min);
                    }
                }
            }
        }
    }
    let total = min_wave.len().max(1) as f64;
    (1..=max_sms)
        .map(|n| min_wave.values().filter(|&&m| m <= n).count() as f64 / total)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_workloads::regular::TiledRegular;
    use batmem_workloads::synthetic::SharedPages;

    #[test]
    fn tiled_working_set_scales_with_sms() {
        let w = TiledRegular::new("T", 1 << 20, 2, 1, 0, 4);
        let gpu = GpuConfig::default();
        let f1 = working_set_fraction(&w, 1, &gpu);
        let f8 = working_set_fraction(&w, 8, &gpu);
        let f16 = working_set_fraction(&w, 16, &gpu);
        assert!(f1 < f8 && f8 < f16, "{f1} {f8} {f16}");
        assert!(f8 / f1 > 4.0, "tiled scaling too weak: {f1} -> {f8}");
    }

    #[test]
    fn shared_working_set_is_flat() {
        let w = SharedPages::new(64, 256, 32, 20, 4);
        let gpu = GpuConfig::default();
        let f1 = working_set_fraction(&w, 1, &gpu);
        let f16 = working_set_fraction(&w, 16, &gpu);
        assert_eq!(f1, 1.0);
        assert_eq!(f16, 1.0);
    }

    #[test]
    fn curve_matches_pointwise_fractions() {
        let w = TiledRegular::new("T", 1 << 20, 2, 1, 0, 4);
        let gpu = GpuConfig::default();
        let curve = working_set_curve(&w, 16, &gpu);
        assert_eq!(curve.len(), 16);
        for (i, &c) in curve.iter().enumerate() {
            let f = working_set_fraction(&w, (i + 1) as u16, &gpu);
            assert!((c - f).abs() < 1e-12, "n={}: {c} vs {f}", i + 1);
        }
        // Monotone non-decreasing.
        assert!(curve.windows(2).all(|p| p[0] <= p[1]));
    }
}
