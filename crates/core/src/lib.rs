//! `batmem` — batch-aware unified memory management for GPUs.
//!
//! A from-scratch Rust reproduction of Kim et al., *Batch-Aware Unified
//! Memory Management in GPUs for Irregular Workloads* (ASPLOS 2020): a
//! cycle-level GPU + UVM demand-paging simulator implementing the paper's
//! baseline (tree prefetching, serialized LRU eviction), its two proposed
//! mechanisms — **Thread Oversubscription (TO)** and **Unobtrusive Eviction
//! (UE)** — and the ETC comparison framework.
//!
//! # Quickstart
//!
//! ```
//! use batmem::{Simulation, policies};
//! use batmem_workloads::registry;
//! use batmem_graph::gen;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(gen::rmat(8, 4, 42));
//! let workload = registry::build("BFS-TTC", graph).unwrap();
//!
//! let metrics = Simulation::builder()
//!     .policy(policies::to_ue())        // the paper's proposal
//!     .memory_ratio(0.5)                // 50% memory oversubscription
//!     .run(workload);
//!
//! assert!(metrics.cycles > 0);
//! assert!(metrics.uvm.num_batches() > 0);
//! ```
//!
//! The [`Simulation`] builder selects policies; [`RunMetrics`] carries
//! everything the paper's figures plot (batch counts and sizes, batch
//! processing times, premature evictions; speedups are ratios of
//! `cycles`). The `batmem-bench` crate regenerates every figure and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod experiments;
mod metrics;

pub use engine::{Simulation, SimulationBuilder};
pub use metrics::RunMetrics;

pub use batmem_etc::EtcConfig;
pub use batmem_types::config::SimConfig;
pub use batmem_types::policy::PolicyConfig;

/// The policy presets of Fig. 11, by their names in the paper.
pub mod policies {
    use batmem_etc::EtcConfig;
    use batmem_types::policy::PolicyConfig;

    /// `BASELINE`: state-of-the-art tree prefetching, serialized eviction.
    pub fn baseline() -> PolicyConfig {
        PolicyConfig::baseline()
    }

    /// `BASELINE with PCIe Compression`.
    pub fn baseline_with_compression() -> PolicyConfig {
        PolicyConfig::baseline_with_compression()
    }

    /// `TO`: thread oversubscription only.
    pub fn to_only() -> PolicyConfig {
        PolicyConfig::to_only()
    }

    /// `UE`: unobtrusive eviction only.
    pub fn ue_only() -> PolicyConfig {
        PolicyConfig::ue_only()
    }

    /// `TO+UE`: the paper's full proposal.
    pub fn to_ue() -> PolicyConfig {
        PolicyConfig::to_ue()
    }

    /// `IDEAL EVICTION` (Fig. 8 limit study).
    pub fn ideal_eviction() -> PolicyConfig {
        PolicyConfig::ideal_eviction()
    }

    /// `ETC` (Li et al.), irregular-application mode.
    pub fn etc() -> (PolicyConfig, EtcConfig) {
        (PolicyConfig::baseline(), EtcConfig::irregular())
    }
}
