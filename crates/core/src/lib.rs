//! `batmem` — batch-aware unified memory management for GPUs.
//!
//! A from-scratch Rust reproduction of Kim et al., *Batch-Aware Unified
//! Memory Management in GPUs for Irregular Workloads* (ASPLOS 2020): a
//! cycle-level GPU + UVM demand-paging simulator implementing the paper's
//! baseline (tree prefetching, serialized LRU eviction), its two proposed
//! mechanisms — **Thread Oversubscription (TO)** and **Unobtrusive Eviction
//! (UE)** — and the ETC comparison framework.
//!
//! # Quickstart
//!
//! ```
//! use batmem::{Simulation, policies};
//! use batmem_workloads::registry;
//! use batmem_graph::gen;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(gen::rmat(8, 4, 42));
//! let workload = registry::build("BFS-TTC", graph).unwrap();
//!
//! let metrics = Simulation::builder()
//!     .policy(policies::to_ue())        // the paper's proposal
//!     .memory_ratio(0.5)                // 50% memory oversubscription
//!     .try_run(workload)
//!     .unwrap();
//!
//! assert!(metrics.cycles > 0);
//! assert!(metrics.uvm.num_batches() > 0);
//! ```
//!
//! To observe a run rather than just its end-state, attach probes (see
//! [`probes`] and [`SimulationBuilder::probe`]):
//!
//! ```
//! use batmem::{policies, Simulation};
//! use batmem::probes::{Timeline, Tracer};
//! use batmem_workloads::synthetic::Strided;
//!
//! let tracer = Tracer::bounded(64 * 1024);
//! let timeline = Timeline::new();
//! let _ = Simulation::builder()
//!     .policy(policies::baseline())
//!     .probe(tracer.clone())
//!     .probe(timeline.clone())
//!     .try_run(Box::new(Strided::new(1, 32, 32, 2, 0, 1)))
//!     .unwrap();
//! assert!(tracer.len() > 0);               // structured JSONL events
//! assert_eq!(timeline.num_batches(), 1);   // per-batch spans
//! ```
//!
//! The [`Simulation`] builder selects policies; [`RunMetrics`] carries
//! everything the paper's figures plot (batch counts and sizes, batch
//! processing times, premature evictions; speedups are ratios of
//! `cycles`). The `batmem-bench` crate regenerates every figure and table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod experiments;
mod metrics;
pub mod probes;

pub use engine::{Simulation, SimulationBuilder};
pub use metrics::RunMetrics;

pub use batmem_types::probe::{EvictionCause, Probe, ProbeEvent};

pub use batmem_etc::EtcConfig;
pub use batmem_types::config::SimConfig;
pub use batmem_types::policy::{PolicyAxis, PolicyConfig, PolicyDescriptor};
pub use batmem_uvm::{OversubSelection, PolicyRegistry, StrategyCtx};

/// The policy presets of Fig. 11, by their names in the paper.
pub mod policies {
    use batmem_etc::EtcConfig;
    use batmem_types::policy::PolicyConfig;

    /// The named configurations of Fig. 11, in presentation order.
    ///
    /// [`preset`] maps each name to its policy knobs; this is the single
    /// source of truth the bench harness and examples share.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
    pub enum ConfigName {
        /// `BASELINE` (tree prefetching, serialized eviction).
        Baseline,
        /// `BASELINE with PCIe Compression`.
        BaselineCompressed,
        /// `TO`.
        To,
        /// `UE`.
        Ue,
        /// `TO+UE`.
        ToUe,
        /// `ETC`.
        Etc,
        /// `IDEAL EVICTION` (Fig. 8).
        IdealEviction,
        /// Unlimited GPU memory (the Fig. 8 normalization point).
        Unlimited,
    }

    impl ConfigName {
        /// Every preset, in presentation order — the sweep service's
        /// default policy axis.
        pub fn all() -> &'static [ConfigName] {
            &[
                ConfigName::Baseline,
                ConfigName::BaselineCompressed,
                ConfigName::To,
                ConfigName::Ue,
                ConfigName::ToUe,
                ConfigName::Etc,
                ConfigName::IdealEviction,
                ConfigName::Unlimited,
            ]
        }

        /// Parses a figure label (`BASELINE`, `TO+UE`, …) back into the
        /// preset; `None` for unknown labels. Inverse of
        /// [`ConfigName::label`], used by sweep plans and artifact resume.
        pub fn from_label(s: &str) -> Option<ConfigName> {
            Self::all().iter().copied().find(|c| c.label() == s)
        }

        /// Display label matching the paper's figures.
        pub fn label(self) -> &'static str {
            match self {
                ConfigName::Baseline => "BASELINE",
                ConfigName::BaselineCompressed => "BASELINE+PCIeC",
                ConfigName::To => "TO",
                ConfigName::Ue => "UE",
                ConfigName::ToUe => "TO+UE",
                ConfigName::Etc => "ETC",
                ConfigName::IdealEviction => "IDEAL-EVICT",
                ConfigName::Unlimited => "UNLIMITED",
            }
        }

        /// The policy knobs of this configuration; shorthand for
        /// [`preset`].
        pub fn preset(self) -> (PolicyConfig, Option<EtcConfig>) {
            preset(self)
        }
    }

    /// The policy knobs (and, for `ETC`, the framework configuration) of
    /// the named preset. `Unlimited` shares the baseline policy — only its
    /// memory sizing differs, which is the caller's concern.
    pub fn preset(name: ConfigName) -> (PolicyConfig, Option<EtcConfig>) {
        match name {
            ConfigName::Baseline | ConfigName::Unlimited => (baseline(), None),
            ConfigName::BaselineCompressed => (baseline_with_compression(), None),
            ConfigName::To => (to_only(), None),
            ConfigName::Ue => (ue_only(), None),
            ConfigName::ToUe => (to_ue(), None),
            ConfigName::Etc => {
                let (p, e) = etc();
                (p, Some(e))
            }
            ConfigName::IdealEviction => (ideal_eviction(), None),
        }
    }

    /// `BASELINE`: state-of-the-art tree prefetching, serialized eviction.
    pub fn baseline() -> PolicyConfig {
        PolicyConfig::baseline()
    }

    /// `BASELINE with PCIe Compression`.
    pub fn baseline_with_compression() -> PolicyConfig {
        PolicyConfig::baseline_with_compression()
    }

    /// `TO`: thread oversubscription only.
    pub fn to_only() -> PolicyConfig {
        PolicyConfig::to_only()
    }

    /// `UE`: unobtrusive eviction only.
    pub fn ue_only() -> PolicyConfig {
        PolicyConfig::ue_only()
    }

    /// `TO+UE`: the paper's full proposal.
    pub fn to_ue() -> PolicyConfig {
        PolicyConfig::to_ue()
    }

    /// `IDEAL EVICTION` (Fig. 8 limit study).
    pub fn ideal_eviction() -> PolicyConfig {
        PolicyConfig::ideal_eviction()
    }

    /// `ETC` (Li et al.), irregular-application mode.
    pub fn etc() -> (PolicyConfig, EtcConfig) {
        (PolicyConfig::baseline(), EtcConfig::irregular())
    }

    /// A preset expressed as the registry spec strings that reproduce it —
    /// what `--eviction`/`--prefetch`/`--oversubscription` would be passed
    /// on a bench binary's command line to run the same configuration.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PresetSpecs {
        /// Eviction strategy spec (`lru`, `ue`, `ideal`).
        pub eviction: &'static str,
        /// Prefetcher spec (`none`, `tree:50`).
        pub prefetch: &'static str,
        /// Oversubscription spec (`none`, `to`, `etc`).
        pub oversubscription: &'static str,
        /// Whether PCIe compression is on. Not a registry axis — it shapes
        /// the transfer pipes rather than a pipeline decision point.
        pub compression: bool,
    }

    /// The registry spec strings of each named preset: the same knobs as
    /// [`preset`], expressed as the names the
    /// [`PolicyRegistry`](crate::PolicyRegistry) resolves.
    pub fn registry_specs(name: ConfigName) -> PresetSpecs {
        let base = PresetSpecs {
            eviction: "lru",
            prefetch: "tree:50",
            oversubscription: "none",
            compression: false,
        };
        match name {
            ConfigName::Baseline | ConfigName::Unlimited => base,
            ConfigName::BaselineCompressed => PresetSpecs { compression: true, ..base },
            ConfigName::To => PresetSpecs { oversubscription: "to", ..base },
            ConfigName::Ue => PresetSpecs { eviction: "ue", ..base },
            ConfigName::ToUe => PresetSpecs { eviction: "ue", oversubscription: "to", ..base },
            ConfigName::Etc => PresetSpecs { oversubscription: "etc", ..base },
            ConfigName::IdealEviction => PresetSpecs { eviction: "ideal", ..base },
        }
    }
}
