//! End-to-end run metrics.

use batmem_sim::cache::CacheStats;
use batmem_types::Cycle;
use batmem_uvm::UvmStats;
use batmem_vmem::MmuStats;

/// Everything a simulation run produces.
///
/// Speedups between configurations are ratios of [`RunMetrics::cycles`];
/// the batch-level metrics of Figs. 12-16 come from [`RunMetrics::uvm`].
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Total execution time in cycles (= ns at the 1 GHz clock).
    pub cycles: Cycle,
    /// Workload name.
    pub workload: String,
    /// Workload footprint in bytes.
    pub footprint_bytes: u64,
    /// Configured GPU memory capacity in pages (`None` = unlimited).
    pub memory_pages: Option<u64>,
    /// Kernels launched.
    pub kernels: u32,
    /// Thread blocks retired.
    pub blocks_retired: u64,
    /// Warps retired.
    pub warps_retired: u64,
    /// Warp-level memory operations executed (including fault replays).
    pub mem_ops: u64,
    /// UVM runtime statistics (batches, faults, evictions, ...).
    pub uvm: UvmStats,
    /// MMU statistics (TLBs, walks, faults).
    pub mmu: MmuStats,
    /// Combined L1 data-cache statistics.
    pub l1d: CacheStats,
    /// L2 data-cache statistics.
    pub l2d: CacheStats,
    /// Per-bank L2 statistics, in bank order (sums to [`RunMetrics::l2d`]).
    pub l2d_banks: Vec<CacheStats>,
    /// Thread-block context switches performed.
    pub ctx_switches: u64,
    /// Cycles spent in context-switch transfers.
    pub ctx_switch_cycles: Cycle,
    /// Final thread-oversubscription degree (extra blocks per SM).
    pub final_oversub_degree: u32,
    /// Times the TO controller lowered the degree.
    pub oversub_decrements: u64,
    /// Times ETC's memory-aware throttling engaged.
    pub throttle_engagements: u64,
}

impl RunMetrics {
    /// Speedup of this run relative to `baseline` (>1 means faster).
    ///
    /// # Panics
    ///
    /// Panics if this run took zero cycles.
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        assert!(self.cycles > 0, "run took zero cycles");
        baseline.cycles as f64 / self.cycles as f64
    }

    /// The CSV column names matching [`RunMetrics::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "workload,cycles,footprint_bytes,memory_pages,kernels,blocks,warps,mem_ops,\
         batches,avg_batch_pages,avg_batch_time,avg_handling_time,faults,prefetches,\
         evictions,premature_evictions,h2d_bytes,d2h_bytes,ctx_switches,\
         throttle_engagements"
    }

    /// One CSV row of the headline quantities (for spreadsheet analysis of
    /// harness sweeps).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{:.2},{:.0},{:.0},{},{},{},{},{},{},{},{}",
            self.workload,
            self.cycles,
            self.footprint_bytes,
            self.memory_pages.map_or(String::from("unlimited"), |p| p.to_string()),
            self.kernels,
            self.blocks_retired,
            self.warps_retired,
            self.mem_ops,
            self.uvm.num_batches(),
            self.uvm.avg_batch_pages(),
            self.uvm.avg_processing_time(),
            self.uvm.avg_fault_handling_time(),
            self.uvm.faults_raised,
            self.uvm.prefetches,
            self.uvm.evictions,
            self.uvm.premature_evictions,
            self.uvm.h2d_bytes,
            self.uvm.d2h_bytes,
            self.ctx_switches,
            self.throttle_engagements,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: Cycle) -> RunMetrics {
        RunMetrics {
            cycles,
            workload: "T".into(),
            footprint_bytes: 0,
            memory_pages: None,
            kernels: 1,
            blocks_retired: 0,
            warps_retired: 0,
            mem_ops: 0,
            uvm: UvmStats::default(),
            mmu: MmuStats::default(),
            l1d: CacheStats::default(),
            l2d: CacheStats::default(),
            l2d_banks: Vec::new(),
            ctx_switches: 0,
            ctx_switch_cycles: 0,
            final_oversub_degree: 0,
            oversub_decrements: 0,
            throttle_engagements: 0,
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = metrics(100);
        let slow = metrics(200);
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(slow.speedup_over(&fast), 0.5);
    }

    #[test]
    fn csv_row_has_header_arity() {
        let m = metrics(100);
        let header_cols = RunMetrics::csv_header().split(',').count();
        let row_cols = m.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(m.to_csv_row().contains("unlimited"));
    }
}
