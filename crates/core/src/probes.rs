//! Production-shaped probes for the [`Probe`] observation layer.
//!
//! Three observers cover the common diagnostic shapes:
//!
//! * [`Tracer`] — a ring-buffered structured trace with JSONL export.
//!   Memory is bounded: once the buffer is full the oldest events are
//!   dropped and counted, so a tracer can be left attached to an
//!   arbitrarily long run.
//! * [`Timeline`] — a per-batch aggregator that regenerates the paper's
//!   Fig. 6/10-style data (batch sizes, batch processing times, phase
//!   cycle breakdowns) directly from the event stream.
//! * [`MetricsSink`] — a per-run counter sink with CSV and JSON export,
//!   used by the bench harness for machine-readable sweep output.
//!
//! All three are cheap **handles** over shared state: clone one, attach
//! the clone via [`SimulationBuilder::probe`], and read the results from
//! the original after the run:
//!
//! ```
//! use batmem::probes::Tracer;
//! use batmem::{policies, Simulation};
//! use batmem_workloads::synthetic::Strided;
//!
//! let tracer = Tracer::bounded(64 * 1024);
//! let metrics = Simulation::builder()
//!     .policy(policies::baseline())
//!     .probe(tracer.clone())
//!     .try_run(Box::new(Strided::new(1, 32, 32, 2, 0, 1)))
//!     .unwrap();
//!
//! assert!(tracer.len() > 0);
//! assert_eq!(tracer.dropped(), 0);
//! let jsonl = tracer.to_jsonl(); // one JSON object per line
//! assert!(jsonl.lines().count() == tracer.len());
//! assert!(metrics.cycles > 0);
//! ```
//!
//! [`SimulationBuilder::probe`]: crate::SimulationBuilder::probe

use batmem_types::probe::{Probe, ProbeEvent};
use batmem_types::Cycle;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

// ---- JSON encoding (hand-rolled: the build is offline) ---------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSONL line for `event` emitted at `at`: the emission cycle, the
/// stable `kind` discriminant, and the flattened payload fields.
pub fn event_to_json(at: Cycle, event: &ProbeEvent) -> String {
    let mut s = format!("{{\"at\":{at},\"kind\":\"{}\"", event.kind());
    match *event {
        ProbeEvent::FaultRaised { page }
        | ProbeEvent::FaultAbsorbed { page }
        | ProbeEvent::PrematureEviction { page } => {
            let _ = write!(s, ",\"page\":{}", page.index());
        }
        ProbeEvent::BatchOpened { batch, faults, prefetches, handling_cycles } => {
            let _ = write!(
                s,
                ",\"batch\":{batch},\"faults\":{faults},\"prefetches\":{prefetches},\
                 \"handling_cycles\":{handling_cycles}"
            );
        }
        ProbeEvent::BatchClosed {
            batch,
            faults,
            prefetches,
            evictions,
            forced_pinned_evictions,
            migrated_bytes,
            opened_at,
            first_migration_start,
        } => {
            let _ = write!(
                s,
                ",\"batch\":{batch},\"faults\":{faults},\"prefetches\":{prefetches},\
                 \"evictions\":{evictions},\"forced_pinned_evictions\":{forced_pinned_evictions},\
                 \"migrated_bytes\":{migrated_bytes},\"opened_at\":{opened_at},\
                 \"first_migration_start\":{first_migration_start}"
            );
        }
        ProbeEvent::MigrationStarted { batch, page, start, end } => {
            let _ = write!(
                s,
                ",\"batch\":{batch},\"page\":{},\"start\":{start},\"end\":{end}",
                page.index()
            );
        }
        ProbeEvent::MigrationCompleted { page, frame } => {
            let _ = write!(s, ",\"page\":{},\"frame\":{}", page.index(), frame.index());
        }
        ProbeEvent::EvictionBegun { page, cause, forced_pinned, start } => {
            let _ = write!(
                s,
                ",\"page\":{},\"cause\":\"{}\",\"forced_pinned\":{forced_pinned},\"start\":{start}",
                page.index(),
                cause.label()
            );
        }
        ProbeEvent::EvictionFinished { page, ready } => {
            let _ = write!(s, ",\"page\":{},\"ready\":{ready}", page.index());
        }
        ProbeEvent::WarpStalled { sm, block, warp, waiting_pages } => {
            let _ = write!(
                s,
                ",\"sm\":{sm},\"block\":{block},\"warp\":{warp},\"waiting_pages\":{waiting_pages}"
            );
        }
        ProbeEvent::WarpResumed { sm, block, warp } => {
            let _ = write!(s, ",\"sm\":{sm},\"block\":{block},\"warp\":{warp}");
        }
        ProbeEvent::ContextSwitch { sm, cost, restore } => {
            let _ = write!(s, ",\"sm\":{sm},\"cost\":{cost},\"restore\":{restore}");
        }
        ProbeEvent::WatchdogTick { events_without_progress, ring, wheel, overflow } => {
            let _ = write!(
                s,
                ",\"events_without_progress\":{events_without_progress},\"ring\":{ring},\"wheel\":{wheel},\"overflow\":{overflow}"
            );
        }
        ProbeEvent::KernelLaunched { kernel, blocks } => {
            let _ = write!(s, ",\"kernel\":{kernel},\"blocks\":{blocks}");
        }
        ProbeEvent::RegionCoalesced { region, pages } => {
            let _ = write!(s, ",\"region\":{},\"pages\":{pages}", region.index());
        }
        ProbeEvent::RegionSplintered { region } => {
            let _ = write!(s, ",\"region\":{}", region.index());
        }
        ProbeEvent::TranslationSummary { l1_hits, l1_misses, large_hits, walks, coalesces, splinters } => {
            let _ = write!(
                s,
                ",\"l1_hits\":{l1_hits},\"l1_misses\":{l1_misses},\"large_hits\":{large_hits},\
                 \"walks\":{walks},\"coalesces\":{coalesces},\"splinters\":{splinters}"
            );
        }
        ProbeEvent::FaultServicingSummary { batches, faults, occupancy_cycles } => {
            let _ = write!(
                s,
                ",\"batches\":{batches},\"faults\":{faults},\"occupancy_cycles\":{occupancy_cycles}"
            );
        }
        ProbeEvent::DataPathSummary {
            l2_hits,
            l2_misses,
            l2_conflict_evictions,
            l2_banks,
            l2_hot_bank_pct,
        } => {
            let _ = write!(
                s,
                ",\"l2_hits\":{l2_hits},\"l2_misses\":{l2_misses},\
                 \"l2_conflict_evictions\":{l2_conflict_evictions},\"l2_banks\":{l2_banks},\
                 \"l2_hot_bank_pct\":{l2_hot_bank_pct}"
            );
        }
        // `ProbeEvent` is non_exhaustive: future variants export their
        // kind with no payload until this encoder learns them.
        _ => {}
    }
    s.push('}');
    s
}

// ---- Tracer ----------------------------------------------------------------

#[derive(Debug, Default)]
struct TracerInner {
    capacity: usize,
    events: VecDeque<(Cycle, ProbeEvent)>,
    dropped: u64,
    finished_at: Option<Cycle>,
}

/// A ring-buffered structured tracer.
///
/// Keeps the **most recent** `capacity` events; earlier ones are dropped
/// and counted in [`Tracer::dropped`], so memory stays bounded however
/// long the run. Export with [`Tracer::to_jsonl`] (one JSON object per
/// event, stable `kind` names from [`ProbeEvent::kind`]).
///
/// This is a handle: clone it, attach the clone, read from the original.
#[derive(Clone, Debug)]
pub struct Tracer(Rc<RefCell<TracerInner>>);

impl Tracer {
    /// A tracer retaining at most `capacity` events (`capacity` ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be at least 1");
        Self(Rc::new(RefCell::new(TracerInner { capacity, ..TracerInner::default() })))
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.0.borrow().events.len()
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.0.borrow().dropped
    }

    /// Completion time of the run, once [`Probe::on_run_finished`] fired.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.0.borrow().finished_at
    }

    /// A copy of the retained `(emission cycle, event)` stream, oldest
    /// first.
    pub fn events(&self) -> Vec<(Cycle, ProbeEvent)> {
        self.0.borrow().events.iter().copied().collect()
    }

    /// The retained stream as JSON Lines, oldest first.
    pub fn to_jsonl(&self) -> String {
        let inner = self.0.borrow();
        let mut out = String::new();
        for (at, ev) in &inner.events {
            out.push_str(&event_to_json(*at, ev));
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL stream to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be written.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

impl Probe for Tracer {
    fn on_event(&mut self, at: Cycle, event: &ProbeEvent) {
        let mut inner = self.0.borrow_mut();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back((at, *event));
    }

    fn on_run_finished(&mut self, at: Cycle) {
        self.0.borrow_mut().finished_at = Some(at);
    }
}

// ---- Timeline --------------------------------------------------------------

/// One closed batch, reassembled from `batch_opened`/`batch_closed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpan {
    /// Batch sequence number.
    pub batch: u64,
    /// Distinct faulted pages serviced.
    pub faults: u32,
    /// Prefetched pages migrated alongside them.
    pub prefetches: u32,
    /// Evictions the batch scheduled.
    pub evictions: u32,
    /// Evictions forced to take a pinned (same-batch) victim.
    pub forced_pinned_evictions: u32,
    /// Bytes migrated host-to-device.
    pub migrated_bytes: u64,
    /// When the batch opened.
    pub opened_at: Cycle,
    /// When the batch's last page arrived.
    pub closed_at: Cycle,
    /// Length of the GPU-runtime fault-handling window.
    pub handling_cycles: Cycle,
    /// When the first page transfer started on the PCIe pipe.
    pub first_migration_start: Cycle,
}

impl BatchSpan {
    /// Pages the batch migrated (faults + prefetches).
    pub fn pages(&self) -> u32 {
        self.faults + self.prefetches
    }

    /// Total batch processing time (open → last arrival).
    pub fn total_cycles(&self) -> Cycle {
        self.closed_at.saturating_sub(self.opened_at)
    }

    /// Cycles between the end of fault handling and the first transfer —
    /// the eviction-serialization stall UE removes (Fig. 5).
    pub fn eviction_wait_cycles(&self) -> Cycle {
        self.first_migration_start.saturating_sub(self.opened_at + self.handling_cycles)
    }

    /// Cycles from the first transfer start to the last arrival.
    pub fn migration_cycles(&self) -> Cycle {
        self.closed_at.saturating_sub(self.first_migration_start)
    }
}

/// Aggregate cycle totals across all closed batches, by batch phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// GPU-runtime fault-handling windows.
    pub handling: Cycle,
    /// Stalls between handling end and first transfer (eviction
    /// serialization).
    pub eviction_wait: Cycle,
    /// PCIe migration time (first transfer start → last arrival).
    pub migration: Cycle,
}

#[derive(Debug, Default)]
struct TimelineInner {
    batches: Vec<BatchSpan>,
    /// Handling windows from `batch_opened`, awaiting the paired close.
    open_handling: Vec<(u64, Cycle)>,
    finished_at: Option<Cycle>,
    migrations: u64,
    evictions: u64,
    premature_evictions: u64,
    warp_stalls: u64,
    warp_resumes: u64,
    ctx_switches: u64,
    ctx_switch_cycles: Cycle,
}

/// A per-batch timeline aggregator.
///
/// Reassembles [`BatchSpan`]s from the event stream and derives the
/// paper-figure distributions: batch sizes in pages (Fig. 10), batch
/// processing times (Fig. 6), and per-phase cycle totals (handling /
/// eviction wait / migration — the Fig. 5 anatomy).
///
/// This is a handle: clone it, attach the clone, read from the original.
#[derive(Clone, Debug, Default)]
pub struct Timeline(Rc<RefCell<TimelineInner>>);

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// The closed batches, in close order.
    pub fn batches(&self) -> Vec<BatchSpan> {
        self.0.borrow().batches.clone()
    }

    /// Number of closed batches.
    pub fn num_batches(&self) -> usize {
        self.0.borrow().batches.len()
    }

    /// Completion time of the run, once [`Probe::on_run_finished`] fired.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.0.borrow().finished_at
    }

    /// Completed page migrations observed.
    pub fn migrations(&self) -> u64 {
        self.0.borrow().migrations
    }

    /// Evictions begun, across all causes.
    pub fn evictions(&self) -> u64 {
        self.0.borrow().evictions
    }

    /// Premature evictions (re-faulted victims) observed.
    pub fn premature_evictions(&self) -> u64 {
        self.0.borrow().premature_evictions
    }

    /// Warp fault-stalls observed.
    pub fn warp_stalls(&self) -> u64 {
        self.0.borrow().warp_stalls
    }

    /// Histogram of batch sizes in pages: `(upper bound, count)` per
    /// power-of-two bucket, ascending. Bucket `(u, n)` counts batches with
    /// `u/2 < pages ≤ u`.
    pub fn size_histogram(&self) -> Vec<(u64, u64)> {
        Self::pow2_histogram(self.0.borrow().batches.iter().map(|b| u64::from(b.pages())))
    }

    /// Histogram of total batch processing times in cycles, same bucket
    /// scheme as [`Timeline::size_histogram`].
    pub fn time_histogram(&self) -> Vec<(u64, u64)> {
        Self::pow2_histogram(self.0.borrow().batches.iter().map(BatchSpan::total_cycles))
    }

    fn pow2_histogram(values: impl Iterator<Item = u64>) -> Vec<(u64, u64)> {
        let mut buckets: Vec<(u64, u64)> = Vec::new();
        for v in values {
            let upper = v.max(1).next_power_of_two();
            match buckets.binary_search_by_key(&upper, |&(u, _)| u) {
                Ok(i) => buckets[i].1 += 1,
                Err(i) => buckets.insert(i, (upper, 1)),
            }
        }
        buckets
    }

    /// Aggregate per-phase cycle totals over all closed batches.
    pub fn phase_totals(&self) -> PhaseTotals {
        let inner = self.0.borrow();
        let mut t = PhaseTotals::default();
        for b in &inner.batches {
            t.handling += b.handling_cycles;
            t.eviction_wait += b.eviction_wait_cycles();
            t.migration += b.migration_cycles();
        }
        t
    }

    /// The per-batch data as CSV (header + one row per closed batch).
    pub fn batches_csv(&self) -> String {
        let mut out = String::from(
            "batch,pages,faults,prefetches,evictions,forced_pinned_evictions,migrated_bytes,\
             opened_at,closed_at,total_cycles,handling_cycles,eviction_wait_cycles,\
             migration_cycles\n",
        );
        for b in &self.0.borrow().batches {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                b.batch,
                b.pages(),
                b.faults,
                b.prefetches,
                b.evictions,
                b.forced_pinned_evictions,
                b.migrated_bytes,
                b.opened_at,
                b.closed_at,
                b.total_cycles(),
                b.handling_cycles,
                b.eviction_wait_cycles(),
                b.migration_cycles(),
            );
        }
        out
    }
}

impl Probe for Timeline {
    fn on_event(&mut self, at: Cycle, event: &ProbeEvent) {
        let mut inner = self.0.borrow_mut();
        match *event {
            ProbeEvent::BatchOpened { batch, handling_cycles, .. } => {
                // The handling window only appears on the open event;
                // remember it for the paired close.
                inner.open_handling.push((batch, handling_cycles));
            }
            ProbeEvent::BatchClosed {
                batch,
                faults,
                prefetches,
                evictions,
                forced_pinned_evictions,
                migrated_bytes,
                opened_at,
                first_migration_start,
            } => {
                let handling_cycles = inner
                    .open_handling
                    .iter()
                    .position(|&(b, _)| b == batch)
                    .map_or(0, |i| inner.open_handling.swap_remove(i).1);
                inner.batches.push(BatchSpan {
                    batch,
                    faults,
                    prefetches,
                    evictions,
                    forced_pinned_evictions,
                    migrated_bytes,
                    opened_at,
                    closed_at: at,
                    handling_cycles,
                    first_migration_start,
                });
            }
            ProbeEvent::MigrationCompleted { .. } => inner.migrations += 1,
            ProbeEvent::EvictionBegun { .. } => inner.evictions += 1,
            ProbeEvent::PrematureEviction { .. } => inner.premature_evictions += 1,
            ProbeEvent::WarpStalled { .. } => inner.warp_stalls += 1,
            ProbeEvent::WarpResumed { .. } => inner.warp_resumes += 1,
            ProbeEvent::ContextSwitch { cost, .. } => {
                inner.ctx_switches += 1;
                inner.ctx_switch_cycles += cost;
            }
            _ => {}
        }
    }

    fn on_run_finished(&mut self, at: Cycle) {
        self.0.borrow_mut().finished_at = Some(at);
    }
}

// ---- MetricsSink -----------------------------------------------------------

/// One run's event-derived counters, as recorded by [`MetricsSink`].
///
/// Plain data (`Clone + Send`), so rows can cross the bench harness's
/// worker threads even though the sink itself is single-threaded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRow {
    /// Caller-supplied row label (workload/config), may be empty.
    pub label: String,
    /// Completion time of the run.
    pub cycles: Cycle,
    /// Kernels launched.
    pub kernels: u64,
    /// Fault batches closed.
    pub batches: u64,
    /// Faults that entered the fault buffer.
    pub faults_raised: u64,
    /// Faults absorbed by an already-open batch.
    pub faults_absorbed: u64,
    /// Prefetched pages migrated.
    pub prefetches: u64,
    /// Page migrations completed.
    pub migrations: u64,
    /// Bytes migrated host-to-device.
    pub migrated_bytes: u64,
    /// Evictions begun.
    pub evictions: u64,
    /// Evictions forced to take a pinned victim.
    pub forced_pinned_evictions: u64,
    /// Premature evictions (re-faulted victims).
    pub premature_evictions: u64,
    /// Warp fault-stalls.
    pub warp_stalls: u64,
    /// Warp resumes.
    pub warp_resumes: u64,
    /// Context switches.
    pub ctx_switches: u64,
    /// Cycles spent in context-switch transfers.
    pub ctx_switch_cycles: Cycle,
    /// Watchdog ticks (events observed without forward progress).
    pub watchdog_ticks: u64,
    /// L1 TLB hits (base-page entries), from the end-of-run summary.
    pub l1_tlb_hits: u64,
    /// L1 TLB misses.
    pub l1_tlb_misses: u64,
    /// Translations served by a promoted large-page mapping.
    pub large_tlb_hits: u64,
    /// Page-table walks performed.
    pub walks: u64,
    /// Large-page promotions (coalesces) over the run.
    pub coalesces: u64,
    /// Large-page demotions (splinters) over the run.
    pub splinters: u64,
    /// L2 misses that evicted a resident line from a full set.
    pub l2_conflict_evictions: u64,
    /// Share of L2 accesses landing on the busiest bank, in percent.
    pub l2_hot_bank_pct: u64,
}

impl MetricsRow {
    /// CSV column names matching [`MetricsRow::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "label,cycles,kernels,batches,faults_raised,faults_absorbed,prefetches,migrations,\
         migrated_bytes,evictions,forced_pinned_evictions,premature_evictions,warp_stalls,\
         warp_resumes,ctx_switches,ctx_switch_cycles,watchdog_ticks,l1_tlb_hits,l1_tlb_misses,\
         large_tlb_hits,walks,coalesces,splinters,l2_conflict_evictions,l2_hot_bank_pct"
    }

    /// One CSV row (label first, counters in header order).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.label,
            self.cycles,
            self.kernels,
            self.batches,
            self.faults_raised,
            self.faults_absorbed,
            self.prefetches,
            self.migrations,
            self.migrated_bytes,
            self.evictions,
            self.forced_pinned_evictions,
            self.premature_evictions,
            self.warp_stalls,
            self.warp_resumes,
            self.ctx_switches,
            self.ctx_switch_cycles,
            self.watchdog_ticks,
            self.l1_tlb_hits,
            self.l1_tlb_misses,
            self.large_tlb_hits,
            self.walks,
            self.coalesces,
            self.splinters,
            self.l2_conflict_evictions,
            self.l2_hot_bank_pct,
        )
    }

    /// Parses a row previously rendered by [`MetricsRow::to_csv_row`].
    ///
    /// Labels never contain commas (they are `workload/policy@point`
    /// slugs), but the parser is defensive anyway: the 16 counters are
    /// taken from the right, and everything left of them is the label. The
    /// sweep artifact store round-trips rows through this, so resume can
    /// merge completed cells without re-running them.
    ///
    /// Returns `None` when the text has neither 24 (current layout), 22
    /// (pre-bank-columns layout), nor 16 (pre-translation-columns layout)
    /// trailing integers — i.e. a truncated or corrupt record. Rows written
    /// before the newer columns existed parse with those counters as zero,
    /// so archived sweep stores stay readable.
    pub fn parse_csv_row(line: &str) -> Option<Self> {
        let fields: Vec<&str> = line.trim_end_matches(['\r', '\n']).split(',').collect();
        // Each legacy fallback only applies to rows too short to hold the
        // next-newer layout; a corrupt current-layout row must fail, not
        // have its leading counters reinterpreted as label text.
        Self::parse_fields(&fields, 24)
            .or_else(|| if fields.len() < 25 { Self::parse_fields(&fields, 22) } else { None })
            .or_else(|| if fields.len() < 23 { Self::parse_fields(&fields, 16) } else { None })
    }

    fn parse_fields(fields: &[&str], counters: usize) -> Option<Self> {
        if fields.len() < counters + 1 {
            return None;
        }
        let label = fields[..fields.len() - counters].join(",");
        let mut nums = [0u64; 24];
        for (slot, text) in nums.iter_mut().zip(&fields[fields.len() - counters..]) {
            *slot = text.parse().ok()?;
        }
        let [cycles, kernels, batches, faults_raised, faults_absorbed, prefetches, migrations, migrated_bytes, evictions, forced_pinned_evictions, premature_evictions, warp_stalls, warp_resumes, ctx_switches, ctx_switch_cycles, watchdog_ticks, l1_tlb_hits, l1_tlb_misses, large_tlb_hits, walks, coalesces, splinters, l2_conflict_evictions, l2_hot_bank_pct] =
            nums;
        Some(Self {
            label,
            cycles,
            kernels,
            batches,
            faults_raised,
            faults_absorbed,
            prefetches,
            migrations,
            migrated_bytes,
            evictions,
            forced_pinned_evictions,
            premature_evictions,
            warp_stalls,
            warp_resumes,
            ctx_switches,
            ctx_switch_cycles,
            watchdog_ticks,
            l1_tlb_hits,
            l1_tlb_misses,
            large_tlb_hits,
            walks,
            coalesces,
            splinters,
            l2_conflict_evictions,
            l2_hot_bank_pct,
        })
    }

    /// The row as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":\"{}\",\"cycles\":{},\"kernels\":{},\"batches\":{},\
             \"faults_raised\":{},\"faults_absorbed\":{},\"prefetches\":{},\"migrations\":{},\
             \"migrated_bytes\":{},\"evictions\":{},\"forced_pinned_evictions\":{},\
             \"premature_evictions\":{},\"warp_stalls\":{},\"warp_resumes\":{},\
             \"ctx_switches\":{},\"ctx_switch_cycles\":{},\"watchdog_ticks\":{},\
             \"l1_tlb_hits\":{},\"l1_tlb_misses\":{},\"large_tlb_hits\":{},\"walks\":{},\
             \"coalesces\":{},\"splinters\":{},\"l2_conflict_evictions\":{},\
             \"l2_hot_bank_pct\":{}}}",
            json_escape(&self.label),
            self.cycles,
            self.kernels,
            self.batches,
            self.faults_raised,
            self.faults_absorbed,
            self.prefetches,
            self.migrations,
            self.migrated_bytes,
            self.evictions,
            self.forced_pinned_evictions,
            self.premature_evictions,
            self.warp_stalls,
            self.warp_resumes,
            self.ctx_switches,
            self.ctx_switch_cycles,
            self.watchdog_ticks,
            self.l1_tlb_hits,
            self.l1_tlb_misses,
            self.large_tlb_hits,
            self.walks,
            self.coalesces,
            self.splinters,
            self.l2_conflict_evictions,
            self.l2_hot_bank_pct,
        )
    }
}

#[derive(Debug, Default)]
struct MetricsSinkInner {
    current: MetricsRow,
    rows: Vec<MetricsRow>,
}

/// A per-run metrics sink with CSV/JSON export.
///
/// Accumulates event counters into a [`MetricsRow`]; when the run
/// finishes, the row is sealed and appended to [`MetricsSink::rows`]. The
/// same sink can observe several runs in sequence (one row each) — the
/// bench harness attaches one per sweep cell and merges the plain-data
/// rows afterwards.
///
/// This is a handle: clone it, attach the clone, read from the original.
#[derive(Clone, Debug, Default)]
pub struct MetricsSink(Rc<RefCell<MetricsSinkInner>>);

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink whose next row carries `label`.
    pub fn labeled(label: impl Into<String>) -> Self {
        let sink = Self::default();
        sink.0.borrow_mut().current.label = label.into();
        sink
    }

    /// Sets the label of the row currently accumulating.
    pub fn set_label(&self, label: impl Into<String>) {
        self.0.borrow_mut().current.label = label.into();
    }

    /// The sealed rows, one per finished run.
    pub fn rows(&self) -> Vec<MetricsRow> {
        self.0.borrow().rows.clone()
    }

    /// The sealed rows as CSV with a header line.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(MetricsRow::csv_header());
        out.push('\n');
        for row in &self.0.borrow().rows {
            out.push_str(&row.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// The sealed rows as a JSON array.
    pub fn to_json(&self) -> String {
        let rows = self.0.borrow();
        let body: Vec<String> = rows.rows.iter().map(MetricsRow::to_json).collect();
        format!("[{}]", body.join(","))
    }
}

impl Probe for MetricsSink {
    fn on_event(&mut self, _at: Cycle, event: &ProbeEvent) {
        let mut inner = self.0.borrow_mut();
        let row = &mut inner.current;
        match *event {
            ProbeEvent::FaultRaised { .. } => row.faults_raised += 1,
            ProbeEvent::FaultAbsorbed { .. } => row.faults_absorbed += 1,
            ProbeEvent::BatchClosed { prefetches, migrated_bytes, .. } => {
                row.batches += 1;
                row.prefetches += u64::from(prefetches);
                row.migrated_bytes += migrated_bytes;
            }
            ProbeEvent::MigrationCompleted { .. } => row.migrations += 1,
            ProbeEvent::EvictionBegun { forced_pinned, .. } => {
                row.evictions += 1;
                row.forced_pinned_evictions += u64::from(forced_pinned);
            }
            ProbeEvent::PrematureEviction { .. } => row.premature_evictions += 1,
            ProbeEvent::WarpStalled { .. } => row.warp_stalls += 1,
            ProbeEvent::WarpResumed { .. } => row.warp_resumes += 1,
            ProbeEvent::ContextSwitch { cost, .. } => {
                row.ctx_switches += 1;
                row.ctx_switch_cycles += cost;
            }
            ProbeEvent::WatchdogTick { .. } => row.watchdog_ticks += 1,
            ProbeEvent::KernelLaunched { .. } => row.kernels += 1,
            ProbeEvent::TranslationSummary {
                l1_hits,
                l1_misses,
                large_hits,
                walks,
                coalesces,
                splinters,
            } => {
                // Emitted once at end of run with absolute totals.
                row.l1_tlb_hits = l1_hits;
                row.l1_tlb_misses = l1_misses;
                row.large_tlb_hits = large_hits;
                row.walks = walks;
                row.coalesces = coalesces;
                row.splinters = splinters;
            }
            ProbeEvent::DataPathSummary { l2_conflict_evictions, l2_hot_bank_pct, .. } => {
                // Emitted once at end of run with absolute totals.
                row.l2_conflict_evictions = l2_conflict_evictions;
                row.l2_hot_bank_pct = u64::from(l2_hot_bank_pct);
            }
            _ => {}
        }
    }

    fn on_run_finished(&mut self, at: Cycle) {
        let mut inner = self.0.borrow_mut();
        inner.current.cycles = at;
        let label = inner.current.label.clone();
        let sealed = std::mem::take(&mut inner.current);
        inner.current.label = label; // the label persists across runs
        inner.rows.push(sealed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_types::probe::EvictionCause;
    use batmem_types::{FrameId, PageId, RegionId};

    fn page(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn tracer_ring_drops_oldest_and_counts() {
        let mut t = Tracer::bounded(2);
        for i in 0..5 {
            t.on_event(i, &ProbeEvent::FaultRaised { page: page(i) });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let kept: Vec<Cycle> = t.events().iter().map(|&(at, _)| at).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn tracer_jsonl_is_one_object_per_event() {
        let mut t = Tracer::bounded(16);
        t.on_event(1, &ProbeEvent::FaultRaised { page: page(7) });
        t.on_event(2, &ProbeEvent::MigrationCompleted { page: page(7), frame: FrameId::new(3) });
        t.on_run_finished(10);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"at\":1,\"kind\":\"fault_raised\",\"page\":7}");
        assert!(lines[1].contains("\"frame\":3"));
        assert_eq!(t.finished_at(), Some(10));
    }

    #[test]
    fn event_json_covers_every_variant() {
        let events = [
            ProbeEvent::FaultRaised { page: page(1) },
            ProbeEvent::FaultAbsorbed { page: page(1) },
            ProbeEvent::BatchOpened { batch: 1, faults: 2, prefetches: 3, handling_cycles: 4 },
            ProbeEvent::BatchClosed {
                batch: 1,
                faults: 2,
                prefetches: 3,
                evictions: 4,
                forced_pinned_evictions: 0,
                migrated_bytes: 5,
                opened_at: 6,
                first_migration_start: 7,
            },
            ProbeEvent::MigrationStarted { batch: 1, page: page(2), start: 3, end: 4 },
            ProbeEvent::MigrationCompleted { page: page(2), frame: FrameId::new(0) },
            ProbeEvent::EvictionBegun {
                page: page(2),
                cause: EvictionCause::Demand,
                forced_pinned: false,
                start: 9,
            },
            ProbeEvent::EvictionFinished { page: page(2), ready: 10 },
            ProbeEvent::PrematureEviction { page: page(2) },
            ProbeEvent::WarpStalled { sm: 0, block: 1, warp: 2, waiting_pages: 3 },
            ProbeEvent::WarpResumed { sm: 0, block: 1, warp: 2 },
            ProbeEvent::ContextSwitch { sm: 0, cost: 100, restore: true },
            ProbeEvent::WatchdogTick { events_without_progress: 5, ring: 1, wheel: 2, overflow: 3 },
            ProbeEvent::KernelLaunched { kernel: 0, blocks: 64 },
            ProbeEvent::RegionCoalesced { region: RegionId::new(3), pages: 32 },
            ProbeEvent::RegionSplintered { region: RegionId::new(3) },
            ProbeEvent::TranslationSummary {
                l1_hits: 1,
                l1_misses: 2,
                large_hits: 3,
                walks: 4,
                coalesces: 5,
                splinters: 6,
            },
            ProbeEvent::FaultServicingSummary { batches: 1, faults: 2, occupancy_cycles: 3 },
            ProbeEvent::DataPathSummary {
                l2_hits: 1,
                l2_misses: 2,
                l2_conflict_evictions: 3,
                l2_banks: 8,
                l2_hot_bank_pct: 13,
            },
        ];
        for ev in events {
            let json = event_to_json(42, &ev);
            assert!(json.starts_with("{\"at\":42,\"kind\":\""), "{json}");
            assert!(json.ends_with('}'), "{json}");
            assert!(json.contains(ev.kind()), "{json}");
        }
    }

    #[test]
    fn timeline_reassembles_batches_and_phases() {
        let mut t = Timeline::new();
        t.on_event(100, &ProbeEvent::BatchOpened {
            batch: 0,
            faults: 4,
            prefetches: 4,
            handling_cycles: 50,
        });
        t.on_event(400, &ProbeEvent::BatchClosed {
            batch: 0,
            faults: 4,
            prefetches: 4,
            evictions: 2,
            forced_pinned_evictions: 1,
            migrated_bytes: 8 << 12,
            opened_at: 100,
            first_migration_start: 200,
        });
        t.on_run_finished(500);
        let spans = t.batches();
        assert_eq!(spans.len(), 1);
        let b = spans[0];
        assert_eq!(b.pages(), 8);
        assert_eq!(b.total_cycles(), 300);
        assert_eq!(b.handling_cycles, 50);
        assert_eq!(b.eviction_wait_cycles(), 50); // 200 - (100 + 50)
        assert_eq!(b.migration_cycles(), 200); // 400 - 200
        let phases = t.phase_totals();
        assert_eq!(phases.handling, 50);
        assert_eq!(phases.eviction_wait, 50);
        assert_eq!(phases.migration, 200);
        assert_eq!(t.size_histogram(), vec![(8, 1)]);
        assert_eq!(t.finished_at(), Some(500));
        let csv = t.batches_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,8,4,4,2,1,"));
    }

    #[test]
    fn pow2_histogram_buckets_ascending() {
        let h = Timeline::pow2_histogram([1u64, 2, 3, 5, 9, 0].into_iter());
        // 1→1, 2→2, 3→4, 5→8, 9→16, 0→1
        assert_eq!(h, vec![(1, 2), (2, 1), (4, 1), (8, 1), (16, 1)]);
    }

    #[test]
    fn metrics_sink_seals_one_row_per_run() {
        let mut s = MetricsSink::labeled("bfs/baseline");
        s.on_event(1, &ProbeEvent::FaultRaised { page: page(1) });
        s.on_event(2, &ProbeEvent::KernelLaunched { kernel: 0, blocks: 4 });
        s.on_event(3, &ProbeEvent::BatchClosed {
            batch: 0,
            faults: 1,
            prefetches: 7,
            evictions: 0,
            forced_pinned_evictions: 0,
            migrated_bytes: 4096,
            opened_at: 1,
            first_migration_start: 2,
        });
        s.on_run_finished(99);
        s.on_event(1, &ProbeEvent::FaultRaised { page: page(2) });
        s.on_run_finished(42);
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "bfs/baseline");
        assert_eq!(rows[0].cycles, 99);
        assert_eq!(rows[0].faults_raised, 1);
        assert_eq!(rows[0].prefetches, 7);
        assert_eq!(rows[0].migrated_bytes, 4096);
        assert_eq!(rows[1].label, "bfs/baseline"); // label persists
        assert_eq!(rows[1].cycles, 42);
        let csv = s.to_csv();
        assert_eq!(
            csv.lines().next().unwrap().split(',').count(),
            rows[0].to_csv_row().split(',').count()
        );
        let json = s.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"label\"").count(), 2);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn metrics_row_roundtrips_through_csv() {
        let row = MetricsRow {
            label: "BFS-TTC/TO+UE@s8".into(),
            cycles: 123,
            kernels: 4,
            batches: 5,
            faults_raised: 6,
            faults_absorbed: 7,
            prefetches: 8,
            migrations: 9,
            migrated_bytes: 10,
            evictions: 11,
            forced_pinned_evictions: 12,
            premature_evictions: 13,
            warp_stalls: 14,
            warp_resumes: 15,
            ctx_switches: 16,
            ctx_switch_cycles: 17,
            watchdog_ticks: 18,
            l1_tlb_hits: 19,
            l1_tlb_misses: 20,
            large_tlb_hits: 21,
            walks: 22,
            coalesces: 23,
            splinters: 24,
            l2_conflict_evictions: 25,
            l2_hot_bank_pct: 26,
        };
        let parsed = MetricsRow::parse_csv_row(&row.to_csv_row()).unwrap();
        assert_eq!(parsed, row);
        // Defensive: a label with a comma still round-trips.
        let odd = MetricsRow { label: "a,b".into(), ..row.clone() };
        assert_eq!(MetricsRow::parse_csv_row(&odd.to_csv_row()).unwrap(), odd);
        // Truncated or corrupt rows are rejected, not misparsed.
        assert!(MetricsRow::parse_csv_row("x,1,2,3").is_none());
        assert!(MetricsRow::parse_csv_row(&row.to_csv_row().replace("123", "xyz")).is_none());
    }

    #[test]
    fn legacy_16_counter_rows_still_parse() {
        // Rows archived before the translation columns existed carry 16
        // counters; they must keep parsing (new counters read as zero) so
        // existing sweep stores resume cleanly.
        let legacy = "BFS-TTC/TO+UE@s8,123,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18";
        let parsed = MetricsRow::parse_csv_row(legacy).unwrap();
        assert_eq!(parsed.label, "BFS-TTC/TO+UE@s8");
        assert_eq!(parsed.cycles, 123);
        assert_eq!(parsed.watchdog_ticks, 18);
        assert_eq!(parsed.l1_tlb_hits, 0);
        assert_eq!(parsed.splinters, 0);
    }

    #[test]
    fn legacy_22_counter_rows_still_parse() {
        // Rows archived before the bank columns existed carry 22 counters;
        // they must keep parsing (bank counters read as zero).
        let legacy =
            "BFS-TTC/TO+UE@s8,123,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24";
        let parsed = MetricsRow::parse_csv_row(legacy).unwrap();
        assert_eq!(parsed.label, "BFS-TTC/TO+UE@s8");
        assert_eq!(parsed.cycles, 123);
        assert_eq!(parsed.splinters, 24);
        assert_eq!(parsed.l2_conflict_evictions, 0);
        assert_eq!(parsed.l2_hot_bank_pct, 0);
    }
}
