//! The ETC oversubscription framework (Li et al., ASPLOS 2019) — the
//! paper's strongest prior-work comparison point (Fig. 11).
//!
//! ETC combines three techniques, applied by application class:
//!
//! * **Proactive Eviction (PE)** — evict ahead of predicted need. The ETC
//!   authors disable PE for irregular applications because mispredicted
//!   timing hurts (§7 of the reproduced paper); we model it as an option
//!   ([`EtcConfig::proactive_eviction`]) that the irregular preset leaves
//!   off, exactly replicating their methodology.
//! * **Memory-aware Throttling (MT)** — disable half the SMs when thrashing
//!   is detected, alternating *detection* and *execution* epochs
//!   ([`ThrottleController`]).
//! * **Capacity Compression (CC)** — compress device memory to fit more
//!   pages at an access-latency penalty ([`CapacityCompression`]).
//!
//! The simulation engine consumes these models: the throttle controller
//! decides how many SMs may issue, and CC inflates effective capacity while
//! taxing DRAM accesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use batmem_types::Cycle;

/// ETC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtcConfig {
    /// Master switch.
    pub enabled: bool,
    /// Proactive eviction (left off for irregular workloads, per the ETC
    /// authors).
    pub proactive_eviction: bool,
    /// Fraction of SMs (in percent) disabled when MT engages.
    pub throttle_percent: u8,
    /// Length of a detection epoch.
    pub detection_epoch: Cycle,
    /// Length of an execution epoch.
    pub execution_epoch: Cycle,
    /// Premature-fault rate (re-faults / faults, in percent) above which a
    /// detection epoch concludes the workload is thrashing.
    pub thrash_threshold_percent: u8,
    /// Effective-capacity multiplier from compression, ×100 (115 ⇒ +15 %;
    /// graph payloads — edge lists and hub-heavy property arrays — compress
    /// far worse than the dense numeric data CC was tuned on).
    pub compression_capacity_x100: u32,
    /// Extra DRAM latency per access to (potentially) compressed data.
    pub compressed_access_penalty: Cycle,
}

impl Default for EtcConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            proactive_eviction: false,
            throttle_percent: 50,
            detection_epoch: 100_000,
            execution_epoch: 200_000,
            thrash_threshold_percent: 10,
            compression_capacity_x100: 115,
            compressed_access_penalty: 25,
        }
    }
}

impl EtcConfig {
    /// The irregular-application preset used against the paper's proposal:
    /// MT + CC on, PE off.
    pub fn irregular() -> Self {
        Self { enabled: true, proactive_eviction: false, ..Self::default() }
    }

    /// The irregular preset with a non-default MT throttle fraction — the
    /// parameterized form behind the policy registry's `etc:<percent>`
    /// spec.
    ///
    /// # Errors
    ///
    /// Rejects percentages above 100 (MT cannot disable more SMs than
    /// exist).
    pub fn irregular_with_throttle(percent: u8) -> Result<Self, batmem_types::SimError> {
        if percent > 100 {
            return Err(batmem_types::SimError::invalid_config(
                "etc.throttle_percent",
                format!("must be <= 100, got {percent}"),
            ));
        }
        Ok(Self { throttle_percent: percent, ..Self::irregular() })
    }

    /// Effective device capacity in pages under compression.
    pub fn effective_capacity(&self, base_pages: u64) -> u64 {
        if self.enabled {
            base_pages * u64::from(self.compression_capacity_x100) / 100
        } else {
            base_pages
        }
    }
}

/// The capacity-compression model: latency tax applied to memory accesses
/// when ETC is active.
#[derive(Debug, Clone, Copy)]
pub struct CapacityCompression {
    penalty: Cycle,
    enabled: bool,
}

impl CapacityCompression {
    /// Builds the CC model from the config.
    pub fn new(config: &EtcConfig) -> Self {
        Self { penalty: config.compressed_access_penalty, enabled: config.enabled }
    }

    /// Extra cycles an access pays.
    pub fn access_penalty(&self) -> Cycle {
        if self.enabled {
            self.penalty
        } else {
            0
        }
    }
}

/// Which phase the throttling controller is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottlePhase {
    /// Measuring the thrash rate at full SM count.
    Detection,
    /// Running with a subset of SMs disabled (or all enabled if the last
    /// detection found no thrashing).
    Execution,
}

/// The memory-aware throttling (MT) state machine.
///
/// MT alternates a detection epoch — full SM count, measuring the
/// premature-fault rate — with an execution epoch whose SM count depends on
/// the verdict. "When triggered, MT statically throttles half of the SMs"
/// (§5.2 footnote 8).
#[derive(Debug, Clone)]
pub struct ThrottleController {
    config: EtcConfig,
    num_sms: u16,
    phase: ThrottlePhase,
    phase_end: Cycle,
    throttled: u16,
    window_faults: u64,
    window_refaults: u64,
    /// Refault rate measured by the detection epoch that triggered the
    /// current engagement, for the effectiveness comparison.
    detection_rate: f64,
    /// Engagements that failed to reduce the refault rate. MT gives up
    /// after the first ineffective trial — for irregular workloads the
    /// working set is shared across SMs, so throttling cannot shrink it
    /// (§1, Fig. 1).
    ineffective_streak: u32,
    mt_disabled: bool,
    engagements: u64,
}

impl ThrottleController {
    /// Creates the controller for `num_sms` SMs; the first detection epoch
    /// starts at time zero.
    pub fn new(config: EtcConfig, num_sms: u16) -> Self {
        Self {
            phase: ThrottlePhase::Detection,
            phase_end: config.detection_epoch,
            config,
            num_sms,
            throttled: 0,
            window_faults: 0,
            window_refaults: 0,
            detection_rate: 0.0,
            ineffective_streak: 0,
            mt_disabled: false,
            engagements: 0,
        }
    }

    /// Records a fault observed during the current epoch.
    pub fn on_fault(&mut self, refault: bool) {
        self.window_faults += 1;
        if refault {
            self.window_refaults += 1;
        }
    }

    /// Advances the state machine; returns `true` if the throttled-SM count
    /// changed (the engine must pause/resume SMs).
    pub fn tick(&mut self, now: Cycle) -> bool {
        if !self.config.enabled || now < self.phase_end {
            return false;
        }
        let before = self.throttled;
        let rate = if self.window_faults == 0 {
            0.0
        } else {
            self.window_refaults as f64 / self.window_faults as f64
        };
        match self.phase {
            ThrottlePhase::Detection => {
                let thrashing = self.window_faults > 0
                    && self.window_refaults * 100
                        >= u64::from(self.config.thrash_threshold_percent) * self.window_faults;
                self.throttled = if thrashing && !self.mt_disabled {
                    self.engagements += 1;
                    self.detection_rate = rate;
                    (u32::from(self.num_sms) * u32::from(self.config.throttle_percent) / 100) as u16
                } else {
                    0
                };
                self.phase = ThrottlePhase::Execution;
                self.phase_end = now + self.config.execution_epoch;
            }
            ThrottlePhase::Execution => {
                if self.throttled > 0 {
                    // Did throttling actually reduce the refault rate? For
                    // workloads whose pages are shared across SMs it cannot,
                    // and MT backs off instead of strangling parallelism.
                    if rate >= self.detection_rate * 0.9 {
                        self.ineffective_streak += 1;
                        if self.ineffective_streak >= 1 {
                            self.mt_disabled = true;
                        }
                    } else {
                        self.ineffective_streak = 0;
                    }
                }
                self.throttled = 0;
                self.phase = ThrottlePhase::Detection;
                self.phase_end = now + self.config.detection_epoch;
            }
        }
        self.window_faults = 0;
        self.window_refaults = 0;
        before != self.throttled
    }

    /// SMs currently disabled (the engine pauses the highest-numbered ones).
    pub fn throttled_sms(&self) -> u16 {
        self.throttled
    }

    /// Current phase.
    pub fn phase(&self) -> ThrottlePhase {
        self.phase
    }

    /// Next time [`ThrottleController::tick`] should run.
    pub fn next_tick(&self) -> Cycle {
        self.phase_end
    }

    /// Times MT engaged throttling.
    pub fn engagements(&self) -> u64 {
        self.engagements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_capacity_boost() {
        let c = EtcConfig::irregular();
        assert_eq!(c.effective_capacity(100), 115);
        let off = EtcConfig::default();
        assert_eq!(off.effective_capacity(100), 100);
    }

    #[test]
    fn parameterized_throttle_preset() {
        let c = EtcConfig::irregular_with_throttle(25).unwrap();
        assert!(c.enabled);
        assert_eq!(c.throttle_percent, 25);
        assert!(EtcConfig::irregular_with_throttle(101).is_err());
    }

    #[test]
    fn compression_penalty_follows_enable() {
        assert_eq!(CapacityCompression::new(&EtcConfig::irregular()).access_penalty(), 25);
        assert_eq!(CapacityCompression::new(&EtcConfig::default()).access_penalty(), 0);
    }

    #[test]
    fn throttles_after_thrashy_detection_epoch() {
        let mut t = ThrottleController::new(EtcConfig::irregular(), 16);
        for i in 0..100 {
            t.on_fault(i % 2 == 0); // 50% refault rate
        }
        assert!(t.tick(100_000));
        assert_eq!(t.throttled_sms(), 8);
        assert_eq!(t.phase(), ThrottlePhase::Execution);
        assert_eq!(t.engagements(), 1);
    }

    #[test]
    fn quiet_detection_epoch_keeps_all_sms() {
        let mut t = ThrottleController::new(EtcConfig::irregular(), 16);
        for _ in 0..100 {
            t.on_fault(false);
        }
        assert!(!t.tick(100_000));
        assert_eq!(t.throttled_sms(), 0);
    }

    #[test]
    fn execution_epoch_returns_to_detection() {
        let mut t = ThrottleController::new(EtcConfig::irregular(), 16);
        for _ in 0..10 {
            t.on_fault(true);
        }
        t.tick(100_000);
        assert_eq!(t.throttled_sms(), 8);
        // End of execution epoch: unthrottle and start measuring afresh.
        assert!(t.tick(300_000));
        assert_eq!(t.throttled_sms(), 0);
        assert_eq!(t.phase(), ThrottlePhase::Detection);
    }

    #[test]
    fn early_tick_is_noop() {
        let mut t = ThrottleController::new(EtcConfig::irregular(), 16);
        assert!(!t.tick(100));
        assert_eq!(t.phase(), ThrottlePhase::Detection);
    }

    #[test]
    fn disabled_controller_never_throttles() {
        let mut t = ThrottleController::new(EtcConfig::default(), 16);
        for _ in 0..100 {
            t.on_fault(true);
        }
        assert!(!t.tick(10_000_000));
        assert_eq!(t.throttled_sms(), 0);
    }
}
