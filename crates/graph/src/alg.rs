//! Reference graph algorithms.
//!
//! The workloads crate models GraphBIG kernels as memory access streams; to
//! generate the *correct* stream for iteration `i` of an iterative algorithm
//! (e.g. which vertices are on the BFS frontier at level `i`), it needs the
//! algorithm's actual intermediate state. These functions compute that state
//! — they are full, tested implementations of the algorithms themselves.

use crate::csr::Csr;

/// Result of a breadth-first search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// Level of each vertex (`u32::MAX` if unreached).
    pub levels: Vec<u32>,
    /// Vertices of each level, in ascending vertex order (level 0 = source).
    pub frontiers: Vec<Vec<u32>>,
}

/// Breadth-first search from `src`.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs(g: &Csr, src: u32) -> BfsResult {
    assert!(src < g.num_vertices(), "bfs source out of range");
    let mut levels = vec![u32::MAX; g.num_vertices() as usize];
    levels[src as usize] = 0;
    let mut frontiers = vec![vec![src]];
    loop {
        let cur = frontiers.last().unwrap();
        let depth = frontiers.len() as u32;
        let mut next = Vec::new();
        for &v in cur {
            for &t in g.neighbors(v) {
                let slot = &mut levels[t as usize];
                if *slot == u32::MAX {
                    *slot = depth;
                    next.push(t);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_unstable();
        next.dedup();
        frontiers.push(next);
    }
    BfsResult { levels, frontiers }
}

/// Result of single-source shortest paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspResult {
    /// Distance of each vertex (`u64::MAX` if unreached).
    pub dist: Vec<u64>,
    /// Active vertex set of each relaxation round (round 0 = `{src}`).
    pub rounds: Vec<Vec<u32>>,
}

/// Frontier-based Bellman-Ford from `src` (the structure GraphBIG's
/// topological SSSP kernels execute: each round relaxes the out-edges of
/// the vertices whose distance improved in the previous round).
///
/// Unweighted graphs use unit edge weights.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn sssp(g: &Csr, src: u32) -> SsspResult {
    assert!(src < g.num_vertices(), "sssp source out of range");
    let mut dist = vec![u64::MAX; g.num_vertices() as usize];
    dist[src as usize] = 0;
    let mut rounds = vec![vec![src]];
    loop {
        let cur = rounds.last().unwrap();
        let mut improved = Vec::new();
        for &v in cur {
            let dv = dist[v as usize];
            let weights = g.weights_of(v);
            for (i, &t) in g.neighbors(v).iter().enumerate() {
                let w = if weights.is_empty() { 1 } else { u64::from(weights[i]) };
                let cand = dv.saturating_add(w);
                if cand < dist[t as usize] {
                    dist[t as usize] = cand;
                    improved.push(t);
                }
            }
        }
        if improved.is_empty() {
            break;
        }
        improved.sort_unstable();
        improved.dedup();
        rounds.push(improved);
    }
    SsspResult { dist, rounds }
}

/// PageRank with damping 0.85 for a fixed number of iterations.
///
/// Dangling-vertex mass is redistributed uniformly, so each iteration's
/// ranks sum to 1 (within floating-point error).
pub fn pagerank(g: &Csr, iterations: u32) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    const D: f64 = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (v, &r) in rank.iter().enumerate() {
            let deg = g.degree(v as u32);
            if deg == 0 {
                dangling += r;
                continue;
            }
            let share = r / f64::from(deg);
            for &t in g.neighbors(v as u32) {
                next[t as usize] += share;
            }
        }
        let base = (1.0 - D) / n as f64 + D * dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + D * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Result of k-core decomposition by iterative peeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KcoreResult {
    /// Core number of each vertex (treating edges as undirected out-degree).
    pub coreness: Vec<u32>,
    /// Vertices removed in each peel round.
    pub peel_rounds: Vec<Vec<u32>>,
}

/// K-core decomposition: repeatedly remove all vertices whose remaining
/// degree is below the current `k`, raising `k` when the graph stabilizes.
///
/// The rounds recorded are exactly the passes a GPU topological KCORE kernel
/// makes over the vertex set.
pub fn kcore(g: &Csr) -> KcoreResult {
    let n = g.num_vertices() as usize;
    let mut deg: Vec<u32> = (0..g.num_vertices()).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut coreness = vec![0u32; n];
    let mut peel_rounds = Vec::new();
    let mut k = 1u32;
    let mut remaining = n;
    while remaining > 0 {
        let round: Vec<u32> = (0..n as u32)
            .filter(|&v| !removed[v as usize] && deg[v as usize] < k)
            .collect();
        if round.is_empty() {
            k += 1;
            continue;
        }
        for &v in &round {
            removed[v as usize] = true;
            coreness[v as usize] = k - 1;
            remaining -= 1;
            for &t in g.neighbors(v) {
                if !removed[t as usize] && deg[t as usize] > 0 {
                    deg[t as usize] -= 1;
                }
            }
        }
        peel_rounds.push(round);
    }
    KcoreResult { coreness, peel_rounds }
}

/// Result of greedy parallel graph coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringResult {
    /// Color assigned to each vertex.
    pub colors: Vec<u32>,
    /// Vertices colored in each Jones-Plassmann round.
    pub rounds: Vec<Vec<u32>>,
}

/// Jones-Plassmann greedy coloring with (hashed) random priorities: each
/// round, every uncolored vertex whose priority is a local maximum among
/// uncolored neighbors takes the smallest color unused by its neighbors.
///
/// Random priorities give the expected `O(log n)` round count (id
/// priorities degenerate into near-sequential chains on power-law graphs).
/// The coloring is proper only if the graph's adjacency is symmetric; use
/// [`Csr::symmetrized`] on directed inputs first.
pub fn coloring(g: &Csr) -> ColoringResult {
    let n = g.num_vertices() as usize;
    const UNCOLORED: u32 = u32::MAX;
    // Deterministic pseudo-random priority; ties broken by id form a total
    // order, so every round has a global (hence local) maximum.
    let prio = |v: u32| (v.wrapping_mul(0x9E37_79B9).rotate_left(16) ^ 0x85EB_CA6B, v);
    let mut colors = vec![UNCOLORED; n];
    let mut rounds = Vec::new();
    let mut uncolored = n;
    while uncolored > 0 {
        let mut round = Vec::new();
        for v in 0..n as u32 {
            if colors[v as usize] != UNCOLORED {
                continue;
            }
            let is_max = g
                .neighbors(v)
                .iter()
                .all(|&t| t == v || colors[t as usize] != UNCOLORED || prio(t) < prio(v));
            if is_max {
                round.push(v);
            }
        }
        // Isolated progress guarantee: the global max uncolored id is
        // always a local max, so each round is nonempty.
        assert!(!round.is_empty(), "coloring failed to make progress");
        for &v in &round {
            let mut used: Vec<u32> = g
                .neighbors(v)
                .iter()
                .map(|&t| colors[t as usize])
                .filter(|&c| c != UNCOLORED)
                .collect();
            used.sort_unstable();
            used.dedup();
            let mut c = 0u32;
            for u in used {
                if u == c {
                    c += 1;
                } else if u > c {
                    break;
                }
            }
            colors[v as usize] = c;
            uncolored -= 1;
        }
        rounds.push(round);
    }
    ColoringResult { colors, rounds }
}

/// Result of Brandes betweenness centrality from one source.
#[derive(Debug, Clone, PartialEq)]
pub struct BcResult {
    /// Partial betweenness (dependency) scores accumulated from the source.
    pub scores: Vec<f64>,
    /// Forward BFS frontiers (reused by the workload's forward phase).
    pub forward: BfsResult,
}

/// One source iteration of Brandes' betweenness centrality: forward BFS
/// computing shortest-path counts, then backward dependency accumulation
/// level by level.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn betweenness(g: &Csr, src: u32) -> BcResult {
    let n = g.num_vertices() as usize;
    let forward = bfs(g, src);
    let mut sigma = vec![0.0f64; n];
    sigma[src as usize] = 1.0;
    for frontier in &forward.frontiers {
        for &v in frontier {
            let lv = forward.levels[v as usize];
            for &t in g.neighbors(v) {
                if forward.levels[t as usize] == lv + 1 {
                    sigma[t as usize] += sigma[v as usize];
                }
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for frontier in forward.frontiers.iter().rev() {
        for &v in frontier {
            let lv = forward.levels[v as usize];
            for &t in g.neighbors(v) {
                if forward.levels[t as usize] == lv + 1 && sigma[t as usize] > 0.0 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[t as usize] * (1.0 + delta[t as usize]);
                }
            }
        }
    }
    delta[src as usize] = 0.0;
    BcResult { scores: delta, forward }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrBuilder;
    use crate::gen;

    fn path4() -> Csr {
        // 0 -> 1 -> 2 -> 3 plus reverse edges.
        CsrBuilder::new(4)
            .edges([(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)])
            .build()
    }

    #[test]
    fn bfs_levels_on_path() {
        let r = bfs(&path4(), 0);
        assert_eq!(r.levels, vec![0, 1, 2, 3]);
        assert_eq!(r.frontiers, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = CsrBuilder::new(3).edge(0, 1).build();
        let r = bfs(&g, 0);
        assert_eq!(r.levels[2], u32::MAX);
        assert_eq!(r.frontiers.len(), 2);
    }

    #[test]
    fn bfs_frontier_partition_is_consistent() {
        let g = gen::rmat(9, 8, 11);
        let r = bfs(&g, g.max_degree_vertex());
        for (depth, f) in r.frontiers.iter().enumerate() {
            for &v in f {
                assert_eq!(r.levels[v as usize] as usize, depth);
            }
        }
        let total: usize = r.frontiers.iter().map(Vec::len).sum();
        let reached = r.levels.iter().filter(|&&l| l != u32::MAX).count();
        assert_eq!(total, reached);
    }

    #[test]
    fn sssp_unweighted_matches_bfs() {
        let g = gen::rmat(8, 6, 2);
        let src = g.max_degree_vertex();
        let b = bfs(&g, src);
        let s = sssp(&g, src);
        for v in 0..g.num_vertices() as usize {
            if b.levels[v] == u32::MAX {
                assert_eq!(s.dist[v], u64::MAX);
            } else {
                assert_eq!(s.dist[v], u64::from(b.levels[v]));
            }
        }
    }

    #[test]
    fn sssp_weighted_triangle_takes_cheap_path() {
        // 0->1 cost 10; 0->2 cost 1; 2->1 cost 1: best 0->2->1 = 2.
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 10)
            .weighted_edge(0, 2, 1)
            .weighted_edge(2, 1, 1)
            .build();
        let s = sssp(&g, 0);
        assert_eq!(s.dist, vec![0, 2, 1]);
    }

    #[test]
    fn pagerank_sums_to_one_and_favors_sinks_of_mass() {
        let g = CsrBuilder::new(3).edges([(0, 2), (1, 2), (2, 2)]).build();
        let r = pagerank(&g, 30);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(r[2] > r[0] && r[2] > r[1]);
    }

    #[test]
    fn pagerank_handles_dangling_vertices() {
        let g = CsrBuilder::new(2).edge(0, 1).build(); // 1 is dangling
        let r = pagerank(&g, 50);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r[1] > r[0]);
    }

    #[test]
    fn kcore_of_clique_plus_tail() {
        // Triangle 0-1-2 (undirected) with a pendant 3-0.
        let g = CsrBuilder::new(4)
            .edges([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (3, 0), (0, 3)])
            .build();
        let r = kcore(&g);
        assert_eq!(r.coreness[3], 1);
        assert_eq!(r.coreness[0], 2);
        assert_eq!(r.coreness[1], 2);
        assert_eq!(r.coreness[2], 2);
        let removed: usize = r.peel_rounds.iter().map(Vec::len).sum();
        assert_eq!(removed, 4);
    }

    #[test]
    fn coloring_is_proper() {
        let g = gen::rmat(8, 6, 13).symmetrized();
        let r = coloring(&g);
        for v in 0..g.num_vertices() {
            for &t in g.neighbors(v) {
                if t != v {
                    assert_ne!(r.colors[v as usize], r.colors[t as usize], "edge {v}->{t}");
                }
            }
        }
        let colored: usize = r.rounds.iter().map(Vec::len).sum();
        assert_eq!(colored, g.num_vertices() as usize);
    }

    #[test]
    fn betweenness_path_center_dominates() {
        let r = betweenness(&path4(), 0);
        // On the path 0-1-2-3 from source 0, vertex 1 lies on paths to 2 and
        // 3, vertex 2 on the path to 3.
        assert!(r.scores[1] > r.scores[2]);
        assert_eq!(r.scores[0], 0.0);
        assert_eq!(r.scores[3], 0.0);
    }

    #[test]
    fn betweenness_star_center() {
        // Star: 0 connected to 1,2,3 bidirectionally; from source 1 the
        // center 0 carries all dependency.
        let g = CsrBuilder::new(4)
            .edges([(0, 1), (1, 0), (0, 2), (2, 0), (0, 3), (3, 0)])
            .build();
        let r = betweenness(&g, 1);
        assert!(r.scores[0] > 1.9);
        assert_eq!(r.scores[2], 0.0);
    }
}
