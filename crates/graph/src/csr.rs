//! Compressed-sparse-row graph representation.

use std::fmt;

/// An immutable directed graph in compressed-sparse-row form.
///
/// Vertices are `0..num_vertices()` (`u32`); edges of vertex `v` occupy
/// `offsets[v]..offsets[v+1]` in the edge array. Optional per-edge weights
/// share the edge array's indexing.
///
/// # Examples
///
/// ```
/// use batmem_graph::CsrBuilder;
///
/// let g = CsrBuilder::new(3)
///     .edge(0, 1)
///     .edge(0, 2)
///     .edge(2, 0)
///     .build();
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.neighbors(2), &[0]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    num_vertices: u32,
    offsets: Vec<u64>,
    edges: Vec<u32>,
    weights: Option<Vec<u32>>,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("num_vertices", &self.num_vertices)
            .field("num_edges", &self.edges.len())
            .field("weighted", &self.weights.is_some())
            .finish()
    }
}

impl Csr {
    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Whether per-edge weights are present.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices()`.
    pub fn degree(&self, v: u32) -> u32 {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as u32
    }

    /// Start of `v`'s adjacency run in the edge array.
    pub fn edge_start(&self, v: u32) -> u64 {
        self.offsets[v as usize]
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Edge weights of `v`, parallel to [`Csr::neighbors`].
    ///
    /// Returns an empty slice for unweighted graphs.
    pub fn weights_of(&self, v: u32) -> &[u32] {
        match &self.weights {
            None => &[],
            Some(w) => {
                let v = v as usize;
                &w[self.offsets[v] as usize..self.offsets[v + 1] as usize]
            }
        }
    }

    /// The full offsets array (length `num_vertices() + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The full edge array.
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// A vertex of maximal out-degree (a good traversal source for
    /// power-law graphs; ties break to the lowest id).
    pub fn max_degree_vertex(&self) -> u32 {
        (0..self.num_vertices).max_by_key(|&v| (self.degree(v), std::cmp::Reverse(v))).unwrap_or(0)
    }

    /// The memory footprint, in bytes, of the graph's device-visible arrays
    /// (offsets as 8-byte, edges as 4-byte, weights as 4-byte entries).
    pub fn footprint_bytes(&self) -> u64 {
        let w = if self.weights.is_some() { 4 * self.edges.len() as u64 } else { 0 };
        8 * (self.offsets.len() as u64) + 4 * self.edges.len() as u64 + w
    }

    /// Returns an undirected (symmetrized, deduplicated, loop-free) copy of
    /// this graph: for every edge `u -> v` with `u != v`, both `u -> v` and
    /// `v -> u` appear exactly once. Weights are dropped.
    ///
    /// Algorithms that require symmetric adjacency (e.g. Jones-Plassmann
    /// coloring, k-core) should run on a symmetrized graph.
    pub fn symmetrized(&self) -> Csr {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.edges.len() * 2);
        for v in 0..self.num_vertices {
            for &t in self.neighbors(v) {
                if t != v {
                    pairs.push((v, t));
                    pairs.push((t, v));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        CsrBuilder::new(self.num_vertices).edges(pairs).build()
    }

    /// Checks the CSR invariants; used by tests and the builder.
    ///
    /// Invariants: offsets are monotone, start at 0, end at `num_edges`,
    /// and every edge target is a valid vertex.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.len() != self.num_vertices as usize + 1 {
            return Err(format!(
                "offsets length {} != num_vertices + 1 ({})",
                self.offsets.len(),
                self.num_vertices + 1
            ));
        }
        if self.offsets.first() != Some(&0) {
            return Err("offsets must start at 0".into());
        }
        if *self.offsets.last().unwrap() != self.edges.len() as u64 {
            return Err("offsets must end at num_edges".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be monotone".into());
        }
        if let Some(&bad) = self.edges.iter().find(|&&t| t >= self.num_vertices) {
            return Err(format!("edge target {bad} out of range"));
        }
        if let Some(w) = &self.weights {
            if w.len() != self.edges.len() {
                return Err("weights length must match edges".into());
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Csr`] graphs from an edge list.
///
/// Edges may be added in any order; `build` counting-sorts them by source.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_vertices: u32,
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    weights: Vec<u32>,
    weighted: bool,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: u32) -> Self {
        Self {
            num_vertices,
            srcs: Vec::new(),
            dsts: Vec::new(),
            weights: Vec::new(),
            weighted: false,
        }
    }

    /// Adds an unweighted directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or if weighted edges were
    /// previously added.
    pub fn edge(mut self, src: u32, dst: u32) -> Self {
        assert!(!self.weighted, "cannot mix weighted and unweighted edges");
        self.push(src, dst, 0);
        self
    }

    /// Adds a weighted directed edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or if unweighted edges
    /// were previously added.
    pub fn weighted_edge(mut self, src: u32, dst: u32, weight: u32) -> Self {
        assert!(
            self.weighted || self.srcs.is_empty(),
            "cannot mix weighted and unweighted edges"
        );
        self.weighted = true;
        self.push(src, dst, weight);
        self
    }

    fn push(&mut self, src: u32, dst: u32, weight: u32) {
        assert!(src < self.num_vertices, "edge source {src} out of range");
        assert!(dst < self.num_vertices, "edge target {dst} out of range");
        self.srcs.push(src);
        self.dsts.push(dst);
        if self.weighted {
            self.weights.push(weight);
        }
    }

    /// Adds many unweighted edges.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CsrBuilder::edge`].
    pub fn edges<I: IntoIterator<Item = (u32, u32)>>(mut self, iter: I) -> Self {
        for (s, d) in iter {
            assert!(!self.weighted, "cannot mix weighted and unweighted edges");
            self.push(s, d, 0);
        }
        self
    }

    /// Number of edges added so far.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// Finalizes the CSR: counting-sorts edges by source vertex (stable, so
    /// insertion order of a vertex's edges is preserved).
    pub fn build(self) -> Csr {
        let n = self.num_vertices as usize;
        let mut offsets = vec![0u64; n + 1];
        for &s in &self.srcs {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut edges = vec![0u32; self.srcs.len()];
        let mut weights = if self.weighted { vec![0u32; self.srcs.len()] } else { Vec::new() };
        for i in 0..self.srcs.len() {
            let s = self.srcs[i] as usize;
            let at = cursor[s] as usize;
            edges[at] = self.dsts[i];
            if self.weighted {
                weights[at] = self.weights[i];
            }
            cursor[s] += 1;
        }
        let csr = Csr {
            num_vertices: self.num_vertices,
            offsets,
            edges,
            weights: if self.weighted { Some(weights) } else { None },
        };
        debug_assert_eq!(csr.check_invariants(), Ok(()));
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        CsrBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
            .build()
    }

    #[test]
    fn builder_produces_sorted_adjacency_runs() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.degree(1), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn build_is_stable_within_vertex() {
        let g = CsrBuilder::new(2).edge(0, 1).edge(0, 0).edge(0, 1).build();
        assert_eq!(g.neighbors(0), &[1, 0, 1]);
    }

    #[test]
    fn weighted_edges_parallel_neighbors() {
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 10)
            .weighted_edge(0, 2, 20)
            .weighted_edge(1, 2, 5)
            .build();
        assert!(g.is_weighted());
        assert_eq!(g.weights_of(0), &[10, 20]);
        assert_eq!(g.weights_of(1), &[5]);
        assert_eq!(g.weights_of(2), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "cannot mix")]
    fn mixing_weighted_and_unweighted_panics() {
        let _ = CsrBuilder::new(2).edge(0, 1).weighted_edge(1, 0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = CsrBuilder::new(2).edge(0, 5);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let g = CsrBuilder::new(10).edge(0, 9).build();
        for v in 1..9 {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn max_degree_vertex_breaks_ties_low() {
        let g = CsrBuilder::new(3).edge(0, 1).edge(2, 1).build();
        assert_eq!(g.max_degree_vertex(), 0);
    }

    #[test]
    fn footprint_counts_arrays() {
        let g = diamond();
        // offsets: 5 * 8, edges: 5 * 4.
        assert_eq!(g.footprint_bytes(), 40 + 20);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", diamond());
        assert!(s.contains("num_vertices: 4"));
        assert!(s.contains("num_edges: 5"));
    }
}
