//! Deterministic graph generators.
//!
//! All generators are seeded and reproducible across platforms (they use
//! [`batmem_types::rng::DetRng`], whose output is stable for a given seed).

use crate::csr::{Csr, CsrBuilder};
use batmem_types::rng::DetRng;

/// Generates an R-MAT (recursive-matrix / Kronecker) graph with `2^scale`
/// vertices and `edge_factor * 2^scale` directed edges, using the standard
/// Graph500 partition probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
///
/// R-MAT graphs have heavy-tailed degree distributions like the social and
/// web graphs the paper's irregular workloads target.
///
/// # Examples
///
/// ```
/// let g = batmem_graph::gen::rmat(8, 8, 42);
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.num_edges(), 2048);
/// ```
pub fn rmat(scale: u32, edge_factor: u32, seed: u64) -> Csr {
    rmat_with(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// [`rmat`] with explicit quadrant probabilities `a`, `b`, `c`
/// (`d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics if the probabilities are not a valid sub-distribution.
pub fn rmat_with(scale: u32, edge_factor: u32, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    rmat_with_par(scale, edge_factor, a, b, c, seed, 1)
}

/// One R-MAT edge. The recursive bisection halves both coordinate ranges
/// once per level, so it consumes **exactly `scale` draws** — the invariant
/// [`rmat_par`] relies on to jump workers to their chunk offsets.
fn rmat_edge(rng: &mut DetRng, n: u32, a: f64, b: f64, c: f64) -> (u32, u32) {
    let (mut lo_s, mut hi_s) = (0u32, n);
    let (mut lo_d, mut hi_d) = (0u32, n);
    while hi_s - lo_s > 1 {
        let mid_s = lo_s + (hi_s - lo_s) / 2;
        let mid_d = lo_d + (hi_d - lo_d) / 2;
        let r: f64 = rng.next_f64();
        if r < a {
            hi_s = mid_s;
            hi_d = mid_d;
        } else if r < a + b {
            hi_s = mid_s;
            lo_d = mid_d;
        } else if r < a + b + c {
            lo_s = mid_s;
            hi_d = mid_d;
        } else {
            lo_s = mid_s;
            lo_d = mid_d;
        }
    }
    (lo_s, lo_d)
}

/// [`rmat`] computed on `threads` worker threads, **bit-identical** to the
/// serial generator for every thread count.
///
/// Edge `e` of the serial stream consumes draws `[e * scale, (e + 1) *
/// scale)` of the seeded generator; [`DetRng::skip`] jumps a worker's
/// generator to its chunk boundary in O(1), so each worker reproduces
/// exactly the edges the serial loop would have produced at those indices.
/// Chunks are then concatenated in index order, giving the identical edge
/// sequence (and, since [`CsrBuilder::build`] is a stable sort, the
/// identical CSR).
///
/// # Examples
///
/// ```
/// let serial = batmem_graph::gen::rmat(8, 8, 42);
/// let parallel = batmem_graph::gen::rmat_par(8, 8, 42, 4);
/// assert_eq!(serial, parallel);
/// ```
pub fn rmat_par(scale: u32, edge_factor: u32, seed: u64, threads: usize) -> Csr {
    rmat_with_par(scale, edge_factor, 0.57, 0.19, 0.19, seed, threads)
}

/// [`rmat_with`] on `threads` worker threads; see [`rmat_par`].
pub fn rmat_with_par(
    scale: u32,
    edge_factor: u32,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    threads: usize,
) -> Csr {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0, "invalid R-MAT probabilities");
    let n: u32 = 1 << scale;
    let m = u64::from(edge_factor) * u64::from(n);
    let mut builder = CsrBuilder::new(n);
    if threads <= 1 || m < 2 {
        let mut rng = DetRng::new(seed);
        for _ in 0..m {
            let (s, d) = rmat_edge(&mut rng, n, a, b, c);
            builder = builder.edge(s, d);
        }
        return builder.build();
    }
    let workers = threads.min(m as usize);
    // Chunk bounds [e0, e1) per worker; worker i's generator starts at the
    // serial stream's draw offset e0 * scale.
    let bounds: Vec<(u64, u64)> = (0..workers as u64)
        .map(|i| {
            let per = m / workers as u64;
            let extra = m % workers as u64;
            let start = i * per + i.min(extra);
            (start, start + per + u64::from(i < extra))
        })
        .collect();
    let chunks: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(e0, e1)| {
                scope.spawn(move || {
                    let mut rng = DetRng::new(seed);
                    rng.skip(e0 * u64::from(scale));
                    (e0..e1).map(|_| rmat_edge(&mut rng, n, a, b, c)).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rmat worker panicked")).collect()
    });
    for chunk in chunks {
        for (s, d) in chunk {
            builder = builder.edge(s, d);
        }
    }
    builder.build()
}

/// Generates a uniform random directed graph with `n` vertices and `m` edges.
///
/// # Examples
///
/// ```
/// let g = batmem_graph::gen::uniform(100, 500, 1);
/// assert_eq!(g.num_edges(), 500);
/// ```
pub fn uniform(n: u32, m: u64, seed: u64) -> Csr {
    assert!(n > 0, "uniform graph needs at least one vertex");
    let mut rng = DetRng::new(seed);
    let mut builder = CsrBuilder::new(n);
    for _ in 0..m {
        let s = rng.below(u64::from(n)) as u32;
        let d = rng.below(u64::from(n)) as u32;
        builder = builder.edge(s, d);
    }
    builder.build()
}

/// Generates a weighted variant of [`rmat`]; weights are uniform in
/// `1..=max_weight` (for SSSP).
pub fn rmat_weighted(scale: u32, edge_factor: u32, max_weight: u32, seed: u64) -> Csr {
    rmat_weighted_par(scale, edge_factor, max_weight, seed, 1)
}

/// [`rmat_weighted`] on `threads` worker threads, bit-identical to the
/// serial generator (see [`rmat_par`]).
///
/// The weight pass consumes exactly two raw draws per edge
/// ([`DetRng::range_inclusive`]) in CSR order, so workers jump to
/// `2 × edges-before-their-vertex-range` and weight disjoint vertex ranges
/// independently.
pub fn rmat_weighted_par(
    scale: u32,
    edge_factor: u32,
    max_weight: u32,
    seed: u64,
    threads: usize,
) -> Csr {
    let unweighted = rmat_par(scale, edge_factor, seed, threads);
    let n = unweighted.num_vertices();
    let m = unweighted.num_edges();
    let weights: Vec<u32> = if threads <= 1 || m < 2 {
        let mut rng = DetRng::new(seed ^ 0x5eed);
        (0..m).map(|_| rng.range_inclusive(1, u64::from(max_weight)) as u32).collect()
    } else {
        // Split the vertex space so each worker owns a contiguous CSR edge
        // range; `skip` aligns its generator with the serial draw stream.
        let workers = threads.min(n.max(1) as usize);
        let cuts: Vec<u32> = (0..=workers as u64).map(|i| (i * u64::from(n) / workers as u64) as u32).collect();
        std::thread::scope(|scope| {
            let unweighted = &unweighted;
            let handles: Vec<_> = cuts
                .windows(2)
                .map(|w| {
                    let (v0, v1) = (w[0], w[1]);
                    scope.spawn(move || {
                        let edges_before: u64 =
                            (0..v0).map(|v| u64::from(unweighted.degree(v))).sum();
                        let mut rng = DetRng::new(seed ^ 0x5eed);
                        rng.skip(2 * edges_before);
                        let mut out = Vec::new();
                        for v in v0..v1 {
                            for _ in 0..unweighted.degree(v) {
                                out.push(rng.range_inclusive(1, u64::from(max_weight)) as u32);
                            }
                        }
                        out
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(m as usize);
            for h in handles {
                all.extend(h.join().expect("weight worker panicked"));
            }
            all
        })
    };
    let mut builder = CsrBuilder::new(n);
    let mut i = 0usize;
    for v in 0..n {
        for &t in unweighted.neighbors(v) {
            builder = builder.weighted_edge(v, t, weights[i]);
            i += 1;
        }
    }
    builder.build()
}

/// Generates a 4-connected 2-D grid of `width × height` vertices
/// (bidirectional edges). Grids are the regular-access foil used in tests.
pub fn grid2d(width: u32, height: u32) -> Csr {
    let n = width
        .checked_mul(height)
        .expect("grid dimensions overflow");
    let mut builder = CsrBuilder::new(n);
    let at = |x: u32, y: u32| y * width + x;
    for y in 0..height {
        for x in 0..width {
            let v = at(x, y);
            if x + 1 < width {
                builder = builder.edge(v, at(x + 1, y)).edge(at(x + 1, y), v);
            }
            if y + 1 < height {
                builder = builder.edge(v, at(x, y + 1)).edge(at(x, y + 1), v);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = rmat(8, 4, 7);
        let b = rmat(8, 4, 7);
        let c = rmat(8, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_has_heavy_tail() {
        let g = rmat(10, 8, 3);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let mean = g.num_edges() / u64::from(g.num_vertices());
        // A power-law graph's max degree far exceeds its mean degree.
        assert!(u64::from(max_deg) > mean * 5, "max {max_deg} mean {mean}");
    }

    #[test]
    fn uniform_counts_and_determinism() {
        let g = uniform(64, 256, 9);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 256);
        assert_eq!(g, uniform(64, 256, 9));
        g.check_invariants().unwrap();
    }

    #[test]
    fn weighted_rmat_weights_in_range() {
        let g = rmat_weighted(7, 4, 16, 5);
        assert!(g.is_weighted());
        for v in 0..g.num_vertices() {
            for &w in g.weights_of(v) {
                assert!((1..=16).contains(&w));
            }
        }
    }

    #[test]
    fn weighted_rmat_preserves_structure() {
        let g = rmat(7, 4, 5);
        let w = rmat_weighted(7, 4, 16, 5);
        assert_eq!(g.num_edges(), w.num_edges());
        for v in 0..g.num_vertices() {
            assert_eq!(g.neighbors(v), w.neighbors(v));
        }
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(4, 3);
        assert_eq!(g.num_vertices(), 12);
        // Corner has degree 2, edge 3, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(5), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT probabilities")]
    fn bad_probabilities_panic() {
        let _ = rmat_with(4, 2, 0.9, 0.2, 0.2, 0);
    }

    #[test]
    fn parallel_rmat_is_bit_identical_to_serial() {
        let serial = rmat(9, 6, 13);
        for threads in [1, 2, 3, 5, 8, 16] {
            assert_eq!(serial, rmat_par(9, 6, 13, threads), "threads = {threads}");
        }
        // Thread counts exceeding the edge count degrade gracefully.
        assert_eq!(rmat(2, 1, 3), rmat_par(2, 1, 3, 64));
    }

    #[test]
    fn parallel_weighted_rmat_is_bit_identical_to_serial() {
        let serial = rmat_weighted(8, 5, 16, 21);
        for threads in [2, 4, 7] {
            assert_eq!(serial, rmat_weighted_par(8, 5, 16, 21, threads), "threads = {threads}");
        }
    }
}
