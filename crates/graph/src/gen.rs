//! Deterministic graph generators.
//!
//! All generators are seeded and reproducible across platforms (they use
//! [`batmem_types::rng::DetRng`], whose output is stable for a given seed).

use crate::csr::{Csr, CsrBuilder};
use batmem_types::rng::DetRng;

/// Generates an R-MAT (recursive-matrix / Kronecker) graph with `2^scale`
/// vertices and `edge_factor * 2^scale` directed edges, using the standard
/// Graph500 partition probabilities (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).
///
/// R-MAT graphs have heavy-tailed degree distributions like the social and
/// web graphs the paper's irregular workloads target.
///
/// # Examples
///
/// ```
/// let g = batmem_graph::gen::rmat(8, 8, 42);
/// assert_eq!(g.num_vertices(), 256);
/// assert_eq!(g.num_edges(), 2048);
/// ```
pub fn rmat(scale: u32, edge_factor: u32, seed: u64) -> Csr {
    rmat_with(scale, edge_factor, 0.57, 0.19, 0.19, seed)
}

/// [`rmat`] with explicit quadrant probabilities `a`, `b`, `c`
/// (`d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics if the probabilities are not a valid sub-distribution.
pub fn rmat_with(scale: u32, edge_factor: u32, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0, "invalid R-MAT probabilities");
    let n: u32 = 1 << scale;
    let m = u64::from(edge_factor) * u64::from(n);
    let mut rng = DetRng::new(seed);
    let mut builder = CsrBuilder::new(n);
    for _ in 0..m {
        let (mut lo_s, mut hi_s) = (0u32, n);
        let (mut lo_d, mut hi_d) = (0u32, n);
        while hi_s - lo_s > 1 {
            let mid_s = lo_s + (hi_s - lo_s) / 2;
            let mid_d = lo_d + (hi_d - lo_d) / 2;
            let r: f64 = rng.next_f64();
            if r < a {
                hi_s = mid_s;
                hi_d = mid_d;
            } else if r < a + b {
                hi_s = mid_s;
                lo_d = mid_d;
            } else if r < a + b + c {
                lo_s = mid_s;
                hi_d = mid_d;
            } else {
                lo_s = mid_s;
                lo_d = mid_d;
            }
        }
        builder = builder.edge(lo_s, lo_d);
    }
    builder.build()
}

/// Generates a uniform random directed graph with `n` vertices and `m` edges.
///
/// # Examples
///
/// ```
/// let g = batmem_graph::gen::uniform(100, 500, 1);
/// assert_eq!(g.num_edges(), 500);
/// ```
pub fn uniform(n: u32, m: u64, seed: u64) -> Csr {
    assert!(n > 0, "uniform graph needs at least one vertex");
    let mut rng = DetRng::new(seed);
    let mut builder = CsrBuilder::new(n);
    for _ in 0..m {
        let s = rng.below(u64::from(n)) as u32;
        let d = rng.below(u64::from(n)) as u32;
        builder = builder.edge(s, d);
    }
    builder.build()
}

/// Generates a weighted variant of [`rmat`]; weights are uniform in
/// `1..=max_weight` (for SSSP).
pub fn rmat_weighted(scale: u32, edge_factor: u32, max_weight: u32, seed: u64) -> Csr {
    let unweighted = rmat(scale, edge_factor, seed);
    let mut rng = DetRng::new(seed ^ 0x5eed);
    let n = unweighted.num_vertices();
    let mut builder = CsrBuilder::new(n);
    for v in 0..n {
        for &t in unweighted.neighbors(v) {
            builder = builder.weighted_edge(v, t, rng.range_inclusive(1, u64::from(max_weight)) as u32);
        }
    }
    builder.build()
}

/// Generates a 4-connected 2-D grid of `width × height` vertices
/// (bidirectional edges). Grids are the regular-access foil used in tests.
pub fn grid2d(width: u32, height: u32) -> Csr {
    let n = width
        .checked_mul(height)
        .expect("grid dimensions overflow");
    let mut builder = CsrBuilder::new(n);
    let at = |x: u32, y: u32| y * width + x;
    for y in 0..height {
        for x in 0..width {
            let v = at(x, y);
            if x + 1 < width {
                builder = builder.edge(v, at(x + 1, y)).edge(at(x + 1, y), v);
            }
            if y + 1 < height {
                builder = builder.edge(v, at(x, y + 1)).edge(at(x, y + 1), v);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = rmat(8, 4, 7);
        let b = rmat(8, 4, 7);
        let c = rmat(8, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_has_heavy_tail() {
        let g = rmat(10, 8, 3);
        let max_deg = (0..g.num_vertices()).map(|v| g.degree(v)).max().unwrap();
        let mean = g.num_edges() / u64::from(g.num_vertices());
        // A power-law graph's max degree far exceeds its mean degree.
        assert!(u64::from(max_deg) > mean * 5, "max {max_deg} mean {mean}");
    }

    #[test]
    fn uniform_counts_and_determinism() {
        let g = uniform(64, 256, 9);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.num_edges(), 256);
        assert_eq!(g, uniform(64, 256, 9));
        g.check_invariants().unwrap();
    }

    #[test]
    fn weighted_rmat_weights_in_range() {
        let g = rmat_weighted(7, 4, 16, 5);
        assert!(g.is_weighted());
        for v in 0..g.num_vertices() {
            for &w in g.weights_of(v) {
                assert!((1..=16).contains(&w));
            }
        }
    }

    #[test]
    fn weighted_rmat_preserves_structure() {
        let g = rmat(7, 4, 5);
        let w = rmat_weighted(7, 4, 16, 5);
        assert_eq!(g.num_edges(), w.num_edges());
        for v in 0..g.num_vertices() {
            assert_eq!(g.neighbors(v), w.neighbors(v));
        }
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(4, 3);
        assert_eq!(g.num_vertices(), 12);
        // Corner has degree 2, edge 3, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(5), 4);
        g.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT probabilities")]
    fn bad_probabilities_panic() {
        let _ = rmat_with(4, 2, 0.9, 0.2, 0.2, 0);
    }
}
