//! CSR graph substrate for the `batmem` workloads.
//!
//! The paper evaluates GraphBIG workloads over real-world graphs; since
//! shipping those datasets is impractical (and the paper itself subsamples
//! them for simulation time), this crate provides deterministic synthetic
//! generators with the same structural character:
//!
//! * [`gen::rmat`] — power-law (Kronecker/R-MAT) graphs like social networks,
//! * [`gen::uniform`] — Erdős–Rényi-style uniform random graphs,
//! * [`gen::grid2d`] — regular meshes (a regular-workload foil).
//!
//! [`Csr`] is the compressed-sparse-row representation every workload reads,
//! and [`alg`] contains reference implementations of the graph algorithms
//! (BFS, SSSP, PageRank, k-core, coloring, betweenness centrality) whose
//! per-round frontiers drive the simulated kernels' access streams.
//!
//! # Examples
//!
//! ```
//! use batmem_graph::{gen, alg};
//!
//! let g = gen::rmat(10, 8, 7);
//! let bfs = alg::bfs(&g, g.max_degree_vertex());
//! assert!(bfs.levels.iter().any(|l| *l != u32::MAX));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg;
mod csr;
pub mod gen;

pub use csr::{Csr, CsrBuilder};
