//! Property-based tests for the CSR substrate and reference algorithms.

use batmem_graph::{alg, CsrBuilder};
use proptest::prelude::*;

fn edge_list() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..64).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..256);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn builder_preserves_edge_multiset((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build();
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        let mut expect = edges.clone();
        expect.sort_unstable();
        let mut got: Vec<(u32, u32)> = Vec::new();
        for v in 0..n {
            for &t in g.neighbors(v) {
                got.push((v, t));
            }
        }
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degree_sum_equals_edge_count((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build();
        let sum: u64 = (0..n).map(|v| u64::from(g.degree(v))).sum();
        prop_assert_eq!(sum, g.num_edges());
    }

    #[test]
    fn symmetrized_is_symmetric_and_loop_free((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build();
        let s = g.symmetrized();
        s.check_invariants().unwrap();
        for v in 0..n {
            for &t in s.neighbors(v) {
                prop_assert_ne!(t, v, "self loop survived");
                prop_assert!(s.neighbors(t).contains(&v), "missing reverse edge {}->{}", t, v);
            }
            // Deduplicated adjacency.
            let mut ns = s.neighbors(v).to_vec();
            let before = ns.len();
            ns.sort_unstable();
            ns.dedup();
            prop_assert_eq!(ns.len(), before);
        }
    }

    #[test]
    fn bfs_levels_are_shortest_path_consistent((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build();
        let r = alg::bfs(&g, 0);
        // Triangle inequality on edges: level[t] <= level[v] + 1 for
        // reached v.
        for v in 0..n {
            if r.levels[v as usize] == u32::MAX {
                continue;
            }
            for &t in g.neighbors(v) {
                prop_assert!(r.levels[t as usize] <= r.levels[v as usize] + 1);
            }
        }
        prop_assert_eq!(r.levels[0], 0);
    }

    #[test]
    fn sssp_dominated_by_bfs_hops((n, edges) in edge_list()) {
        // With unit weights, sssp == bfs distance.
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build();
        let b = alg::bfs(&g, 0);
        let s = alg::sssp(&g, 0);
        for v in 0..n as usize {
            if b.levels[v] == u32::MAX {
                prop_assert_eq!(s.dist[v], u64::MAX);
            } else {
                prop_assert_eq!(s.dist[v], u64::from(b.levels[v]));
            }
        }
    }

    #[test]
    fn coloring_proper_on_symmetrized((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build().symmetrized();
        let c = alg::coloring(&g);
        for v in 0..n {
            for &t in g.neighbors(v) {
                prop_assert_ne!(c.colors[v as usize], c.colors[t as usize]);
            }
        }
        let colored: usize = c.rounds.iter().map(Vec::len).sum();
        prop_assert_eq!(colored, n as usize);
    }

    #[test]
    fn kcore_rounds_partition_vertices((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build().symmetrized();
        let r = alg::kcore(&g);
        let total: usize = r.peel_rounds.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n as usize);
        // Coreness bounded by degree.
        for v in 0..n {
            prop_assert!(r.coreness[v as usize] <= g.degree(v));
        }
    }

    #[test]
    fn pagerank_is_a_distribution((n, edges) in edge_list()) {
        let g = CsrBuilder::new(n).edges(edges.iter().copied()).build();
        let r = alg::pagerank(&g, 10);
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        prop_assert!(r.iter().all(|&x| x >= 0.0));
    }
}
