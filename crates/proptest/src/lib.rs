//! A small, dependency-free re-implementation of the subset of the
//! [proptest](https://docs.rs/proptest) API this workspace uses.
//!
//! The build environment is fully offline, so the real crates.io `proptest`
//! cannot be fetched. This crate keeps the property tests source-compatible:
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Just`, `Strategy`
//! (`prop_map` / `prop_flat_map`), `prop::collection::vec`, and
//! `ProptestConfig::with_cases` all work as in upstream proptest.
//!
//! Differences from upstream, by design:
//!
//! * Generation is a fixed deterministic pseudo-random sweep (splitmix64
//!   seeded from the test name and case index) — every run of a test explores
//!   the identical case sequence, which suits a deterministic simulator.
//! * There is no shrinking. On failure the offending inputs are printed
//!   verbatim before the panic is propagated; cases here are small enough to
//!   read directly.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic splitmix64 generator used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives the per-case seed for `test_name` at case index `case`.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % bound
    }
}

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree: `generate` directly
/// produces a value from the deterministic RNG.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A boxed, type-erased strategy (what [`Strategy::boxed`] returns).
pub struct BoxedStrategy<V>(Box<dyn ObjectSafeStrategy<V>>);

trait ObjectSafeStrategy<V> {
    fn generate_erased(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ObjectSafeStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u128) as usize;
        self.0[idx].generate(rng)
    }
}

/// Integers the range strategies can sample.
pub trait SampleUniform: Copy + Debug {
    /// Widens to u128 for span arithmetic.
    fn to_u128(self) -> u128;
    /// Narrows from u128 (value is guaranteed in range).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "empty range strategy");
        T::from_u128(lo + rng.below(hi - lo))
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "empty range strategy");
        T::from_u128(lo + rng.below(hi - lo + 1))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// The `prop::` namespace (`prop::collection::vec` et al.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s of `element` values with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u128;
                assert!(span > 0, "empty vec size range");
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let values = ( $( $crate::Strategy::generate(&($strat), &mut rng), )+ );
                    let described = format!("{:?}", values);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || {
                            let ( $($pat,)+ ) = values;
                            $body
                        }),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: test {} failed at case {}/{} with inputs {}",
                            stringify!($name),
                            case,
                            config.cases,
                            described,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (0u8..=3).generate(&mut rng);
            assert!(w <= 3);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::new(9);
        let s = prop::collection::vec((0u64..4, 0u32..2), 1..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 10);
            assert!(v.iter().all(|&(a, b)| a < 4 && b < 2));
        }
    }

    #[test]
    fn oneof_and_flat_map_cover_all_arms() {
        let mut rng = TestRng::new(11);
        let s = (1u32..5).prop_flat_map(|n| (Just(n), prop_oneof![0u32..1, 10u32..11]));
        let mut saw = [false, false];
        for _ in 0..200 {
            let (n, v) = s.generate(&mut rng);
            assert!((1..5).contains(&n));
            assert!(v == 0 || v == 10);
            saw[usize::from(v == 10)] = true;
        }
        assert!(saw[0] && saw[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0u32..10, 0u32..10), c in 0u8..=1) {
            prop_assert!(a < 10);
            prop_assert_ne!(b, 10);
            prop_assert_eq!(u32::from(c) * 20 < 40, true);
        }
    }
}
