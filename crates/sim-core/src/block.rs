//! Thread-block execution state.

use crate::warp::{WarpContext, WarpPhase};
use batmem_types::policy::SwitchTrigger;
use batmem_types::BlockId;
use std::fmt;

/// Where a dispatched block currently lives on its SM.
///
/// Under Thread Oversubscription an SM hosts more blocks than its scheduling
/// limit; only `Active` blocks issue work. Transitions through the
/// `Switching*` states charge the context-switch cost (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockResidency {
    /// Occupying an active slot; warps may issue.
    Active,
    /// Resident but descheduled (oversubscribed); warps hold state only.
    Inactive,
    /// Context being saved to global memory.
    SwitchingOut,
    /// Context being restored from global memory.
    SwitchingIn,
    /// All warps finished.
    Retired,
}

/// The execution context of one dispatched thread block.
pub struct BlockContext {
    /// Grid-wide block id.
    pub id: BlockId,
    /// Warp contexts; empty until the block first activates (streams are
    /// built lazily).
    pub warps: Vec<WarpContext>,
    /// Residency state.
    pub residency: BlockResidency,
    /// Whether warp streams have been built yet.
    pub started: bool,
}

impl fmt::Debug for BlockContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockContext")
            .field("id", &self.id)
            .field("residency", &self.residency)
            .field("started", &self.started)
            .field("warps", &self.warps.len())
            .finish()
    }
}

impl BlockContext {
    /// Creates a not-yet-started block.
    pub fn new(id: BlockId) -> Self {
        Self { id, warps: Vec::new(), residency: BlockResidency::Inactive, started: false }
    }

    /// Whether every warp has retired (false before the block starts).
    pub fn all_finished(&self) -> bool {
        self.started && self.warps.iter().all(|w| w.phase.is_finished())
    }

    /// Whether the block is fully stalled under `trigger` and would benefit
    /// from being switched out: every warp is finished-or-stalled and at
    /// least one is stalled.
    pub fn is_fully_stalled(&self, trigger: SwitchTrigger) -> bool {
        if !self.started || self.warps.is_empty() {
            return false;
        }
        let stalled = |p: WarpPhase| match trigger {
            SwitchTrigger::FaultStall => p.is_fault_stalled(),
            SwitchTrigger::AnyStall => p.is_any_stalled(),
        };
        let mut any = false;
        for w in &self.warps {
            if stalled(w.phase) {
                any = true;
            } else if !w.phase.is_finished() {
                return false;
            }
        }
        any
    }

    /// Whether an inactive block has runnable work and is worth switching
    /// in: it either never started, or has warps that became ready while
    /// the block was out.
    pub fn is_switch_in_ready(&self) -> bool {
        !self.started || self.warps.iter().any(|w| w.phase == WarpPhase::ReadyInactive)
    }

    /// Warps currently in [`WarpPhase::ReadyInactive`], by index.
    pub fn ready_inactive_warps(&self) -> Vec<usize> {
        self.warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.phase == WarpPhase::ReadyInactive)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{VecStream, WarpOp};

    fn block_with_phases(phases: &[WarpPhase]) -> BlockContext {
        let mut b = BlockContext::new(BlockId::new(0));
        b.started = true;
        for &p in phases {
            let mut w = WarpContext::new(Box::new(VecStream::new(vec![WarpOp::Compute(1)])));
            w.phase = p;
            b.warps.push(w);
        }
        b
    }

    use WarpPhase::*;

    #[test]
    fn fully_stalled_fault_trigger() {
        let b = block_with_phases(&[FaultBlocked, Finished]);
        assert!(b.is_fully_stalled(SwitchTrigger::FaultStall));
        let b = block_with_phases(&[FaultBlocked, Computing]);
        assert!(!b.is_fully_stalled(SwitchTrigger::FaultStall));
        let b = block_with_phases(&[FaultBlocked, MemWait]);
        assert!(!b.is_fully_stalled(SwitchTrigger::FaultStall));
        let b = block_with_phases(&[Finished, Finished]);
        assert!(!b.is_fully_stalled(SwitchTrigger::FaultStall), "retired is not stalled");
    }

    #[test]
    fn fully_stalled_any_trigger() {
        let b = block_with_phases(&[FaultBlocked, MemWait]);
        assert!(b.is_fully_stalled(SwitchTrigger::AnyStall));
        let b = block_with_phases(&[MemWait, Ready]);
        assert!(!b.is_fully_stalled(SwitchTrigger::AnyStall));
    }

    #[test]
    fn unstarted_block_is_not_stalled_but_is_switch_in_ready() {
        let b = BlockContext::new(BlockId::new(3));
        assert!(!b.is_fully_stalled(SwitchTrigger::FaultStall));
        assert!(b.is_switch_in_ready());
        assert!(!b.all_finished());
    }

    #[test]
    fn ready_inactive_detection() {
        let b = block_with_phases(&[FaultBlocked, ReadyInactive, ReadyInactive]);
        assert!(b.is_switch_in_ready());
        assert_eq!(b.ready_inactive_warps(), vec![1, 2]);
        let b = block_with_phases(&[FaultBlocked]);
        assert!(!b.is_switch_in_ready());
    }

    #[test]
    fn all_finished() {
        let b = block_with_phases(&[Finished, Finished]);
        assert!(b.all_finished());
        let b = block_with_phases(&[Finished, FaultBlocked]);
        assert!(!b.all_finished());
    }
}
