//! Data caches and the L1 → L2 → DRAM data path.
//!
//! # Banking
//!
//! Both cache levels are organized into `banks` address-interleaved
//! stripes of sets (bank `b` owns every set `s` with `s ≡ b (mod banks)`),
//! the way real GPU L2s are sliced per memory partition. Because hit/miss
//! under per-set true LRU depends only on the access order *within a set*,
//! and a line's bank is the same at both levels (the bank count divides
//! both set counts and the levels share a line size whenever `banks > 1`),
//! a bank's stripe can be detached with [`MemPath::detach_bank`], replayed
//! on another thread, and reattached — producing bit-identical hits,
//! misses, latencies, and stats to a serial replay of the same stream.

use batmem_types::config::{CacheGeometry, MemConfig};
use batmem_types::{Cycle, VirtAddr};

/// Statistics for one data cache (or one bank of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Misses that evicted a resident line from a full set.
    pub conflict_evictions: u64,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.conflict_evictions += other.conflict_evictions;
    }
}

/// Set-index arithmetic shared by a cache and its detached bank views.
///
/// The modulo in `line % num_sets` is a `u64` division on the hottest
/// path of the data model; when the set count is a power of two (every
/// realistic geometry) it collapses to a mask.
#[derive(Debug, Clone, Copy)]
struct SetIndexer {
    num_sets: u64,
    /// `Some(num_sets - 1)` when the set count is a power of two.
    mask: Option<u64>,
    /// log2 of the bank count; a set's slot within its bank is the set
    /// index shifted right by this (banks own low set bits).
    bank_shift: u32,
}

impl SetIndexer {
    fn new(num_sets: u64, banks: u32) -> Self {
        debug_assert!(banks.is_power_of_two(), "bank count must be a power of two");
        Self {
            num_sets,
            mask: num_sets.is_power_of_two().then(|| num_sets - 1),
            bank_shift: banks.trailing_zeros(),
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> u64 {
        match self.mask {
            Some(m) => line & m,
            None => line % self.num_sets,
        }
    }

    #[inline]
    fn slot_of(&self, set: u64) -> usize {
        (set >> self.bank_shift) as usize
    }
}

/// One bank's stripe of sets plus that stripe's statistics — the movable
/// unit of parallel replay.
#[derive(Debug, Clone, Default)]
struct CacheBank {
    /// Indexed by slot (= set index >> bank_shift).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheBank {
    fn with_slots(slots: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::with_capacity(ways); slots],
            stats: CacheStats::default(),
        }
    }

    /// The true-LRU set update: returns `true` on hit, fills the line
    /// (evicting LRU on a full set) on miss.
    fn access(&mut self, line: u64, slot: usize, ways: usize) -> bool {
        let entries = &mut self.sets[slot];
        // Scan from the MRU end: temporal locality means the hit is usually
        // near the back. Rotating in place keeps recency order without the
        // double shift of a remove-then-push.
        if let Some(pos) = entries.iter().rposition(|&l| l == line) {
            entries[pos..].rotate_left(1);
            self.stats.hits += 1;
            true
        } else {
            if entries.len() == ways {
                entries.rotate_left(1);
                *entries.last_mut().expect("set is non-empty") = line;
                self.stats.conflict_evictions += 1;
            } else {
                entries.push(line);
            }
            self.stats.misses += 1;
            false
        }
    }
}

/// A set-associative, true-LRU data cache over cache-line ids.
///
/// Purely a tag model: hit/miss drives latency, no data is stored.
#[derive(Debug, Clone)]
pub struct DataCache {
    banks: Vec<CacheBank>,
    indexer: SetIndexer,
    bank_mask: u64,
    ways: usize,
    line_shift: u32,
    hit_latency: Cycle,
}

impl DataCache {
    /// Builds a single-bank cache from its geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_banks(geom, 1)
    }

    /// Builds a cache striped into `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two dividing the set count
    /// ([`MemConfig::validate`] rejects such configurations up front).
    pub fn with_banks(geom: CacheGeometry, banks: u32) -> Self {
        let sets = geom.num_sets() as u64;
        assert!(
            banks.is_power_of_two() && sets.is_multiple_of(u64::from(banks)),
            "{banks} banks must be a power of two dividing {sets} sets"
        );
        let slots = (sets / u64::from(banks)) as usize;
        Self {
            banks: (0..banks).map(|_| CacheBank::with_slots(slots, geom.ways as usize)).collect(),
            indexer: SetIndexer::new(sets, banks),
            bank_mask: u64::from(banks) - 1,
            ways: geom.ways as usize,
            line_shift: geom.line_shift,
            hit_latency: geom.hit_latency,
        }
    }

    /// The cache-line id of `addr`.
    pub fn line_of(&self, addr: VirtAddr) -> u64 {
        addr.line(self.line_shift)
    }

    /// Accesses the line containing `addr`: returns `true` on hit, and
    /// fills the line (evicting LRU) on miss.
    pub fn access(&mut self, addr: VirtAddr) -> bool {
        let line = self.line_of(addr);
        let set = self.indexer.set_of(line);
        // Banks divide the set count, so `set & bank_mask == line mod banks`
        // — the bank of a line is cache-independent.
        let bank = (set & self.bank_mask) as usize;
        let slot = self.indexer.slot_of(set);
        self.banks[bank].access(line, slot, self.ways)
    }

    /// The hit latency of this cache.
    pub fn hit_latency(&self) -> Cycle {
        self.hit_latency
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Accumulated statistics, summed over banks.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for b in &self.banks {
            s.add(&b.stats);
        }
        s
    }

    /// Per-bank statistics, in bank order.
    pub fn bank_stats(&self) -> Vec<CacheStats> {
        self.banks.iter().map(|b| b.stats).collect()
    }

    fn detach(&mut self, bank: usize) -> BankView {
        BankView {
            bank: std::mem::take(&mut self.banks[bank]),
            idx: self.indexer,
            ways: self.ways,
            line_shift: self.line_shift,
            hit_latency: self.hit_latency,
        }
    }

    fn attach(&mut self, bank: usize, view: BankView) {
        debug_assert!(self.banks[bank].sets.is_empty(), "bank attached twice");
        self.banks[bank] = view.bank;
    }
}

/// One cache's stripe of a single bank, detached together with its
/// indexing parameters so another thread can replay accesses against it.
#[derive(Debug)]
struct BankView {
    bank: CacheBank,
    idx: SetIndexer,
    ways: usize,
    line_shift: u32,
    hit_latency: Cycle,
}

impl BankView {
    /// Identical update to [`DataCache::access`], restricted to this
    /// bank's stripe (callers route only this bank's lines here).
    #[inline]
    fn access(&mut self, addr: VirtAddr) -> bool {
        let line = addr.line(self.line_shift);
        let slot = self.idx.slot_of(self.idx.set_of(line));
        self.bank.access(line, slot, self.ways)
    }
}

/// The data path: per-SM L1 caches, a shared L2, and DRAM.
///
/// [`MemPath::access`] returns the latency of one coalesced transaction.
/// L1 misses are looked up in the L2 and then DRAM, as in the paper's
/// configuration ("L1 misses are coalesced before accessing L2" — we model
/// that coalescing at stream generation time).
#[derive(Debug, Clone)]
pub struct MemPath {
    l1: Vec<DataCache>,
    l2: DataCache,
    dram_latency: Cycle,
    bank_mask: u64,
}

impl MemPath {
    /// Builds the data path for `num_sms` SMs, striped into
    /// [`MemConfig::l2_banks`] banks.
    ///
    /// # Panics
    ///
    /// Panics if the bank count does not satisfy the partition invariants
    /// (validate the config first; see [`MemConfig::validate`]).
    pub fn new(config: &MemConfig, num_sms: u16) -> Self {
        let banks = config.l2_banks;
        if banks > 1 {
            assert_eq!(
                config.l1d.line_shift, config.l2d.line_shift,
                "banked data path needs equal L1/L2 line sizes"
            );
        }
        Self {
            l1: (0..num_sms).map(|_| DataCache::with_banks(config.l1d, banks)).collect(),
            l2: DataCache::with_banks(config.l2d, banks),
            dram_latency: config.dram_latency,
            bank_mask: u64::from(banks) - 1,
        }
    }

    /// The latency of one transaction from SM `sm` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range or `addr`'s bank is detached.
    pub fn access(&mut self, sm: usize, addr: VirtAddr) -> Cycle {
        let l1 = &mut self.l1[sm];
        if l1.access(addr) {
            return l1.hit_latency();
        }
        let l1_lat = l1.hit_latency();
        if self.l2.access(addr) {
            return l1_lat + self.l2.hit_latency();
        }
        l1_lat + self.l2.hit_latency() + self.dram_latency
    }

    /// Number of banks the path is striped into.
    pub fn num_banks(&self) -> usize {
        self.l2.num_banks()
    }

    /// The bank owning `addr` (the low line bits, identical at both cache
    /// levels by the partition invariants).
    pub fn bank_of(&self, addr: VirtAddr) -> usize {
        (self.l2.line_of(addr) & self.bank_mask) as usize
    }

    /// Detaches `bank`'s stripe of every cache level for replay on another
    /// thread. The stripe must be [reattached](MemPath::attach_bank)
    /// before any access routed to that bank.
    pub fn detach_bank(&mut self, bank: usize) -> MemPathBank {
        MemPathBank {
            bank,
            l1: self.l1.iter_mut().map(|c| c.detach(bank)).collect(),
            l2: self.l2.detach(bank),
            dram_latency: self.dram_latency,
        }
    }

    /// Reattaches a stripe detached by [`MemPath::detach_bank`].
    pub fn attach_bank(&mut self, view: MemPathBank) {
        let bank = view.bank;
        for (c, v) in self.l1.iter_mut().zip(view.l1) {
            c.attach(bank, v);
        }
        self.l2.attach(bank, view.l2);
    }

    /// Combined L1 statistics over all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.l1 {
            s.add(&c.stats());
        }
        s
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Per-bank L2 statistics, in bank order.
    pub fn l2_bank_stats(&self) -> Vec<CacheStats> {
        self.l2.bank_stats()
    }
}

/// One bank's slice of the whole data path — its stripe of every SM's L1
/// plus its stripe of the L2 — detached for serial replay off-thread.
#[derive(Debug)]
pub struct MemPathBank {
    bank: usize,
    l1: Vec<BankView>,
    l2: BankView,
    dram_latency: Cycle,
}

impl MemPathBank {
    /// The bank index this slice was detached from.
    pub fn bank(&self) -> usize {
        self.bank
    }

    /// The latency of one transaction from SM `sm` to `addr`, identical to
    /// [`MemPath::access`] for addresses of this bank.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: VirtAddr) -> Cycle {
        let l1 = &mut self.l1[sm];
        if l1.access(addr) {
            return l1.hit_latency;
        }
        let l1_lat = l1.hit_latency;
        if self.l2.access(addr) {
            return l1_lat + self.l2.hit_latency;
        }
        l1_lat + self.l2.hit_latency + self.dram_latency
    }

    /// Replays `queue` in order, appending each access's latency to `out`.
    pub fn replay(&mut self, queue: &[(u16, VirtAddr)], out: &mut Vec<Cycle>) {
        out.reserve(queue.len());
        for &(sm, addr) in queue {
            let lat = self.access(sm as usize, addr);
            out.push(lat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> CacheGeometry {
        CacheGeometry { capacity_bytes: 1024, ways: 2, line_shift: 7, hit_latency: 4 }
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = DataCache::new(small_geom());
        let a = VirtAddr::new(0x80);
        assert!(!c.access(a));
        assert!(c.access(a));
        assert!(c.access(VirtAddr::new(0x85))); // same 128B line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1, conflict_evictions: 0 });
    }

    #[test]
    fn lru_within_set() {
        // 1024 B / (2 ways * 128 B) = 4 sets; lines 0, 4, 8 share set 0.
        let mut c = DataCache::new(small_geom());
        let line = |i: u64| VirtAddr::new(i * 128);
        c.access(line(0));
        c.access(line(4));
        c.access(line(0)); // refresh 0; LRU is 4
        c.access(line(8)); // evicts 4
        assert!(c.access(line(0)));
        assert!(!c.access(line(4)));
        assert_eq!(c.stats().conflict_evictions, 2); // line 8 evicted 4, then 4 evicted 8
    }

    #[test]
    fn non_power_of_two_sets_use_the_modulo_path() {
        // 768 B / (2 ways * 128 B) = 3 sets: no mask possible.
        let geom = CacheGeometry { capacity_bytes: 768, ways: 2, line_shift: 7, hit_latency: 4 };
        let mut c = DataCache::new(geom);
        assert!(c.indexer.mask.is_none());
        let line = |i: u64| VirtAddr::new(i * 128);
        // Lines 0 and 3 share set 0; line 1 does not.
        c.access(line(0));
        c.access(line(3));
        c.access(line(6)); // evicts 0 from set 0
        assert!(!c.access(line(0))); // line 0 was evicted, and re-filling evicts 3
        assert_eq!(c.stats().conflict_evictions, 2);
    }

    #[test]
    fn banked_cache_matches_single_bank_exactly() {
        // 4 sets, 4 banks: every set is its own bank. Outcomes and summed
        // stats must be identical to the unbanked cache for any stream.
        let mut flat = DataCache::new(small_geom());
        let mut banked = DataCache::with_banks(small_geom(), 4);
        let stream: Vec<VirtAddr> =
            (0..200u64).map(|i| VirtAddr::new((i * 37 % 64) * 128)).collect();
        for &a in &stream {
            assert_eq!(flat.access(a), banked.access(a));
        }
        assert_eq!(flat.stats(), banked.stats());
        assert_eq!(banked.bank_stats().len(), 4);
        let summed: u64 = banked.bank_stats().iter().map(CacheStats::accesses).sum();
        assert_eq!(summed, stream.len() as u64);
    }

    #[test]
    fn mempath_latency_composition() {
        let mut m = MemPath::new(&MemConfig::default(), 2);
        let a = VirtAddr::new(0x1000);
        // Cold: L1 miss + L2 miss + DRAM.
        assert_eq!(m.access(0, a), 4 + 60 + 200);
        // L1 hit.
        assert_eq!(m.access(0, a), 4);
        // Other SM: own L1 misses, L2 hits.
        assert_eq!(m.access(1, a), 4 + 60);
    }

    #[test]
    fn per_sm_l1_isolation() {
        let mut m = MemPath::new(&MemConfig::default(), 2);
        let a = VirtAddr::new(0x2000);
        m.access(0, a);
        assert_eq!(m.l1_stats().misses, 1);
        m.access(1, a);
        assert_eq!(m.l1_stats().misses, 2);
        assert_eq!(m.l2_stats().hits, 1);
    }

    #[test]
    fn detached_bank_replay_matches_inline_access() {
        let config = MemConfig::default();
        let mut inline = MemPath::new(&config, 2);
        let mut banked = MemPath::new(&config, 2);
        assert_eq!(banked.num_banks(), 8);
        // A stream striding across lines so every bank sees traffic.
        let stream: Vec<(u16, VirtAddr)> =
            (0..500u64).map(|i| ((i % 2) as u16, VirtAddr::new(i * 37 % 256 * 128))).collect();
        let serial: Vec<Cycle> = stream.iter().map(|&(sm, a)| inline.access(sm as usize, a)).collect();
        // Partition by bank preserving order, replay each bank detached.
        let mut latencies = vec![0u64; stream.len()];
        for bank in 0..banked.num_banks() {
            let mut view = banked.detach_bank(bank);
            assert_eq!(view.bank(), bank);
            let mut out = Vec::new();
            let queue: Vec<(usize, (u16, VirtAddr))> = stream
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, (_, a))| {
                    // bank_of needs the caches intact; compute from the line.
                    (a.line(7) & 7) as usize == bank
                })
                .collect();
            let flat: Vec<(u16, VirtAddr)> = queue.iter().map(|&(_, q)| q).collect();
            view.replay(&flat, &mut out);
            banked.attach_bank(view);
            for (&(i, _), &lat) in queue.iter().zip(&out) {
                latencies[i] = lat;
            }
        }
        assert_eq!(latencies, serial);
        assert_eq!(format!("{:?}", inline.l2_stats()), format!("{:?}", banked.l2_stats()));
        assert_eq!(inline.l1_stats(), banked.l1_stats());
        assert_eq!(banked.l2_bank_stats().len(), 8);
    }

    #[test]
    fn bank_of_is_the_low_line_bits() {
        let m = MemPath::new(&MemConfig::default(), 1);
        assert_eq!(m.bank_of(VirtAddr::new(0)), 0);
        assert_eq!(m.bank_of(VirtAddr::new(128)), 1);
        assert_eq!(m.bank_of(VirtAddr::new(128 * 9)), 1);
        assert_eq!(m.bank_of(VirtAddr::new(128 * 15)), 7);
    }
}
