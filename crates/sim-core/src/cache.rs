//! Data caches and the L1 → L2 → DRAM data path.

use batmem_types::config::{CacheGeometry, MemConfig};
use batmem_types::{Cycle, VirtAddr};

/// Statistics for one data cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

/// A set-associative, true-LRU data cache over cache-line ids.
///
/// Purely a tag model: hit/miss drives latency, no data is stored.
#[derive(Debug, Clone)]
pub struct DataCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_shift: u32,
    hit_latency: Cycle,
    stats: CacheStats,
}

impl DataCache {
    /// Builds a cache from its geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.num_sets() as usize;
        Self {
            sets: vec![Vec::with_capacity(geom.ways as usize); sets],
            ways: geom.ways as usize,
            line_shift: geom.line_shift,
            hit_latency: geom.hit_latency,
            stats: CacheStats::default(),
        }
    }

    /// The cache-line id of `addr`.
    pub fn line_of(&self, addr: VirtAddr) -> u64 {
        addr.line(self.line_shift)
    }

    /// Accesses the line containing `addr`: returns `true` on hit, and
    /// fills the line (evicting LRU) on miss.
    pub fn access(&mut self, addr: VirtAddr) -> bool {
        let line = self.line_of(addr);
        let set = (line % self.sets.len() as u64) as usize;
        let ways = self.ways;
        let entries = &mut self.sets[set];
        // Scan from the MRU end: temporal locality means the hit is usually
        // near the back. Rotating in place keeps recency order without the
        // double shift of a remove-then-push.
        if let Some(pos) = entries.iter().rposition(|&l| l == line) {
            entries[pos..].rotate_left(1);
            self.stats.hits += 1;
            true
        } else {
            if entries.len() == ways {
                entries.rotate_left(1);
                *entries.last_mut().expect("set is non-empty") = line;
            } else {
                entries.push(line);
            }
            self.stats.misses += 1;
            false
        }
    }

    /// The hit latency of this cache.
    pub fn hit_latency(&self) -> Cycle {
        self.hit_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The data path: per-SM L1 caches, a shared L2, and DRAM.
///
/// [`MemPath::access`] returns the latency of one coalesced transaction.
/// L1 misses are looked up in the L2 and then DRAM, as in the paper's
/// configuration ("L1 misses are coalesced before accessing L2" — we model
/// that coalescing at stream generation time).
#[derive(Debug, Clone)]
pub struct MemPath {
    l1: Vec<DataCache>,
    l2: DataCache,
    dram_latency: Cycle,
}

impl MemPath {
    /// Builds the data path for `num_sms` SMs.
    pub fn new(config: &MemConfig, num_sms: u16) -> Self {
        Self {
            l1: (0..num_sms).map(|_| DataCache::new(config.l1d)).collect(),
            l2: DataCache::new(config.l2d),
            dram_latency: config.dram_latency,
        }
    }

    /// The latency of one transaction from SM `sm` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: VirtAddr) -> Cycle {
        let l1 = &mut self.l1[sm];
        if l1.access(addr) {
            return l1.hit_latency();
        }
        let l1_lat = l1.hit_latency();
        if self.l2.access(addr) {
            return l1_lat + self.l2.hit_latency();
        }
        l1_lat + self.l2.hit_latency() + self.dram_latency
    }

    /// Combined L1 statistics over all SMs.
    pub fn l1_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.l1 {
            s.hits += c.stats().hits;
            s.misses += c.stats().misses;
        }
        s
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> CacheGeometry {
        CacheGeometry { capacity_bytes: 1024, ways: 2, line_shift: 7, hit_latency: 4 }
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = DataCache::new(small_geom());
        let a = VirtAddr::new(0x80);
        assert!(!c.access(a));
        assert!(c.access(a));
        assert!(c.access(VirtAddr::new(0x85))); // same 128B line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lru_within_set() {
        // 1024 B / (2 ways * 128 B) = 4 sets; lines 0, 4, 8 share set 0.
        let mut c = DataCache::new(small_geom());
        let line = |i: u64| VirtAddr::new(i * 128);
        c.access(line(0));
        c.access(line(4));
        c.access(line(0)); // refresh 0; LRU is 4
        c.access(line(8)); // evicts 4
        assert!(c.access(line(0)));
        assert!(!c.access(line(4)));
    }

    #[test]
    fn mempath_latency_composition() {
        let mut m = MemPath::new(&MemConfig::default(), 2);
        let a = VirtAddr::new(0x1000);
        // Cold: L1 miss + L2 miss + DRAM.
        assert_eq!(m.access(0, a), 4 + 60 + 200);
        // L1 hit.
        assert_eq!(m.access(0, a), 4);
        // Other SM: own L1 misses, L2 hits.
        assert_eq!(m.access(1, a), 4 + 60);
    }

    #[test]
    fn per_sm_l1_isolation() {
        let mut m = MemPath::new(&MemConfig::default(), 2);
        let a = VirtAddr::new(0x2000);
        m.access(0, a);
        assert_eq!(m.l1_stats().misses, 1);
        m.access(1, a);
        assert_eq!(m.l1_stats().misses, 2);
        assert_eq!(m.l2_stats().hits, 1);
    }
}
