//! A deterministic discrete-event queue.

use batmem_types::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap event queue ordered by `(time, insertion sequence)`.
///
/// Two events scheduled for the same cycle pop in insertion order, which
/// makes whole-simulation runs bit-for-bit reproducible.
///
/// # Examples
///
/// ```
/// use batmem_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Cycle, u64, WrapOrd<T>)>>,
    seq: u64,
}

/// Wrapper granting `Ord` to the payload without requiring `T: Ord`;
/// ordering between payloads is never consulted because `(time, seq)` is
/// unique.
#[derive(Debug, Clone)]
struct WrapOrd<T>(T);

impl<T> PartialEq for WrapOrd<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for WrapOrd<T> {}
impl<T> PartialOrd for WrapOrd<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for WrapOrd<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Cycle, event: T) {
        let s = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, s, WrapOrd(event))));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse((t, _, WrapOrd(e)))| (t, e))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(3, 'x');
        q.push(1, 'y');
        q.push(3, 'z');
        q.push(2, 'w');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 'y'), (2, 'w'), (3, 'x'), (3, 'z')]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(9, ());
        q.push(4, ());
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn works_with_non_ord_payloads() {
        #[derive(Debug)]
        struct NotOrd(#[allow(dead_code)] f64);
        let mut q = EventQueue::new();
        q.push(1, NotOrd(1.0));
        q.push(0, NotOrd(0.5));
        assert_eq!(q.pop().unwrap().0, 0);
    }
}
