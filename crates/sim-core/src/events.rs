//! A deterministic three-tier discrete-event scheduler.
//!
//! [`EventQueue`] keeps the `(time, insertion-seq)` min-queue contract of a
//! binary heap but routes events to the cheapest structure that can hold
//! them (see DESIGN.md §9 for the full cost model):
//!
//! 1. **Same-cycle ring** — events pushed at the time of the last pop (the
//!    warp-wake fast path) go to a FIFO `VecDeque`: no ordering work at
//!    all, since FIFO *is* `(time, seq)` order within one cycle.
//! 2. **Timing wheel** — near-future events (within 2^24 cycles of the
//!    wheel time) go to a hierarchical timing wheel
//!    ([`crate::wheel`]): O(1) insert, O(1) amortised cascade.
//! 3. **Overflow heap** — far-future timestamps, and pushes behind the
//!    last pop, fall back to the old `BinaryHeap`.
//!
//! Every pop compares the front of each tier by `(time, seq)`, so the
//! merged order is exactly what the single heap produced — whole runs stay
//! bit-for-bit identical (property-tested against a heap oracle in
//! `tests/props.rs`).

use crate::wheel::TimingWheel;
use batmem_types::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-tier entry counts, for scheduler observability (watchdog reports,
/// [`EventQueue::occupancy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerOccupancy {
    /// Events in the same-cycle FIFO ring.
    pub ring: usize,
    /// Events in the hierarchical timing wheel.
    pub wheel: usize,
    /// Events in the far-future overflow heap.
    pub overflow: usize,
}

/// A min event queue ordered by `(time, insertion sequence)`.
///
/// Two events scheduled for the same cycle pop in insertion order, which
/// makes whole-simulation runs bit-for-bit reproducible.
///
/// # Examples
///
/// ```
/// use batmem_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Events at exactly `cur`: popped FIFO, pushed without ordering work.
    ring: VecDeque<(u64, T)>,
    /// Near-future events, strictly after `cur` whenever the ring is
    /// non-empty.
    wheel: TimingWheel<T>,
    /// Far-future and behind-`cur` events.
    overflow: BinaryHeap<Reverse<(Cycle, u64, WrapOrd<T>)>>,
    /// The timestamp of the ring (the latest pop time, monotone under
    /// future-only pushes).
    cur: Cycle,
    /// Next insertion sequence number.
    seq: u64,
    /// Total pending events across all three tiers.
    len: usize,
}

/// Wrapper granting `Ord` to the payload without requiring `T: Ord`;
/// ordering between payloads is never consulted because `(time, seq)` is
/// unique.
#[derive(Debug, Clone)]
struct WrapOrd<T>(T);

impl<T> PartialEq for WrapOrd<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for WrapOrd<T> {}
impl<T> PartialOrd for WrapOrd<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for WrapOrd<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with `capacity` pre-allocated same-cycle
    /// slots, so a warm-up burst of pushes does not reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity),
            wheel: TimingWheel::new(),
            overflow: BinaryHeap::new(),
            cur: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Cycle, event: T) {
        let s = self.seq;
        self.seq += 1;
        self.len += 1;
        if time == self.cur {
            // FIFO order within one cycle is (time, seq) order: seq is
            // monotone, so appending preserves it with zero compares.
            self.ring.push_back((s, event));
        } else if time > self.cur {
            if self.wheel.is_empty() {
                // An empty wheel can be rebased for free; anchoring it just
                // past `cur` maximises the horizon `fits` accepts.
                self.wheel.rebase(self.cur + 1);
            }
            if self.wheel.fits(time) {
                self.wheel.push(time, s, event);
            } else {
                self.overflow.push(Reverse((time, s, WrapOrd(event))));
            }
        } else {
            // Behind the last pop: outside the engine's usage, but kept
            // correct for arbitrary callers via the heap tier.
            self.overflow.push(Reverse((time, s, WrapOrd(event))));
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        if let Some(&(rs, _)) = self.ring.front() {
            // Invariant: the wheel holds only times > cur while the ring
            // is non-empty, so only the overflow heap can precede it.
            if self.overflow_wins(self.cur, rs) {
                return self.pop_overflow();
            }
            let (_, e) = self.ring.pop_front().expect("front was checked");
            self.len -= 1;
            return Some((self.cur, e));
        }
        if let Some((wt, ws)) = self.wheel.stage() {
            if self.overflow_wins(wt, ws) {
                if self.overflow.peek().map(|&Reverse((t, _, _))| t) == Some(wt) {
                    // The heap entry ties the wheel slot's timestamp with a
                    // smaller seq. Move the slot to the ring first so
                    // subsequent pops interleave the two tiers by seq
                    // (pushes at `cur` must not overtake the slot).
                    self.cur = self.wheel.take_staged(&mut self.ring);
                }
                return self.pop_overflow();
            }
            self.cur = self.wheel.take_staged(&mut self.ring);
            let (_, e) = self.ring.pop_front().expect("staged slot is never empty");
            self.len -= 1;
            return Some((self.cur, e));
        }
        self.pop_overflow()
    }

    /// Whether the overflow heap's front precedes `(time, seq)`.
    fn overflow_wins(&self, time: Cycle, seq: u64) -> bool {
        match self.overflow.peek() {
            Some(&Reverse((t, s, _))) => (t, s) < (time, seq),
            None => false,
        }
    }

    /// Pops from the overflow heap, keeping `cur` at the latest pop time.
    fn pop_overflow(&mut self) -> Option<(Cycle, T)> {
        self.overflow.pop().map(|Reverse((t, _, WrapOrd(e)))| {
            self.len -= 1;
            self.cur = self.cur.max(t);
            (t, e)
        })
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        let mut min: Option<Cycle> = None;
        let mut fold = |t: Cycle| min = Some(min.map_or(t, |m| m.min(t)));
        if !self.ring.is_empty() {
            fold(self.cur);
        }
        if let Some(t) = self.wheel.peek_min_time() {
            fold(t);
        }
        if let Some(&Reverse((t, _, _))) = self.overflow.peek() {
            fold(t);
        }
        min
    }

    /// Number of pending events (`O(1)`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending (`O(1)`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending events per scheduler tier.
    pub fn occupancy(&self) -> SchedulerOccupancy {
        SchedulerOccupancy {
            ring: self.ring.len(),
            wheel: self.wheel.len(),
            overflow: self.overflow.len(),
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.push(3, 'x');
        q.push(1, 'y');
        q.push(3, 'z');
        q.push(2, 'w');
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, 'y'), (2, 'w'), (3, 'x'), (3, 'z')]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(9, ());
        q.push(4, ());
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn works_with_non_ord_payloads() {
        #[derive(Debug)]
        struct NotOrd(#[allow(dead_code)] f64);
        let mut q = EventQueue::new();
        q.push(1, NotOrd(1.0));
        q.push(0, NotOrd(0.5));
        assert_eq!(q.pop().unwrap().0, 0);
    }

    #[test]
    fn same_cycle_pushes_after_pop_stay_fifo() {
        // Ring fast path: re-enqueues at the popped cycle mixed with
        // earlier wheel/heap entries at the same timestamp.
        let mut q = EventQueue::new();
        q.push(100, 'a');
        q.push(100, 'b');
        assert_eq!(q.pop(), Some((100, 'a')));
        q.push(100, 'c'); // lands in the ring at cur == 100
        q.push(100, 'd');
        assert_eq!(q.pop(), Some((100, 'b')));
        assert_eq!(q.pop(), Some((100, 'c')));
        assert_eq!(q.pop(), Some((100, 'd')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_behind_last_pop_still_sorts() {
        let mut q = EventQueue::new();
        q.push(50, 'a');
        assert_eq!(q.pop(), Some((50, 'a')));
        q.push(10, 'b'); // behind cur: overflow tier
        q.push(50, 'c'); // at cur: ring tier
        q.push(60, 'd'); // ahead: wheel tier
        assert_eq!(q.pop(), Some((10, 'b')));
        assert_eq!(q.pop(), Some((50, 'c')));
        assert_eq!(q.pop(), Some((60, 'd')));
    }

    #[test]
    fn overflow_ties_interleave_with_wheel_by_seq() {
        // Land the same timestamp in the overflow heap (pushed while out
        // of the wheel's window) and in the wheel (pushed after the wheel
        // rolled into that window); the heap entry has the smaller seq and
        // must pop first.
        let mut q = EventQueue::new();
        let t = (1u64 << 24) + 100; // outside the wheel's initial window
        q.push(t, 'h'); // seq 0 -> overflow
        q.push(10, 'x'); // seq 1 -> wheel
        assert_eq!(q.pop(), Some((10, 'x')));
        q.push(t - 50, 'w'); // seq 2 -> overflow (still out of window)
        assert_eq!(q.pop(), Some((t - 50, 'w')));
        q.push(t, 'y'); // seq 3 -> wheel (rebased past t - 50)
        assert_eq!(q.occupancy().wheel, 1);
        assert_eq!(q.occupancy().overflow, 1);
        assert_eq!(q.pop(), Some((t, 'h')));
        assert_eq!(q.pop(), Some((t, 'y')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn occupancy_reports_each_tier() {
        let mut q = EventQueue::new();
        q.push(0, 'r'); // cur == 0: ring
        q.push(7, 'w'); // near future: wheel
        q.push(1 << 40, 'o'); // far future: overflow
        let occ = q.occupancy();
        assert_eq!(occ, SchedulerOccupancy { ring: 1, wheel: 1, overflow: 1 });
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let q: EventQueue<u8> = EventQueue::with_capacity(256);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
