//! GPU timing-model machinery for the `batmem` simulator.
//!
//! This crate provides the building blocks of the event-driven GPU core
//! model:
//!
//! * [`ops`] — the warp-level operation vocabulary ([`ops::WarpOp`]) and the
//!   traits workloads implement to describe kernels as lazy per-warp access
//!   streams ([`ops::Workload`], [`ops::Kernel`], [`ops::AccessStream`]);
//! * [`events`] — a deterministic discrete-event queue;
//! * [`cache`] — set-associative LRU data caches and the L1→L2→DRAM data
//!   path;
//! * [`warp`] / [`block`] — warp and thread-block execution state machines;
//! * [`sm`] — streaming-multiprocessor occupancy accounting and the
//!   Virtual-Thread (VT) context-switch bookkeeping that Thread
//!   Oversubscription builds on (§4.1 of the paper).
//!
//! The end-to-end engine that wires these to the MMU and the UVM runtime
//! lives in the `batmem` core crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod events;
pub mod ops;
pub mod sm;
pub mod warp;
mod wheel;

pub use block::{BlockContext, BlockResidency};
pub use cache::{DataCache, MemPath};
pub use events::{EventQueue, SchedulerOccupancy};
pub use ops::{AccessStream, Kernel, KernelSpec, WarpOp, Workload};
pub use sm::{Occupancy, Sm};
pub use warp::{WarpContext, WarpPhase};
