//! The warp-level operation vocabulary and workload description traits.
//!
//! Workloads are modeled as **access streams**: each warp executes a lazy
//! sequence of [`WarpOp`]s — compute delays and coalesced memory operations.
//! This captures exactly the behaviour demand paging responds to (which
//! addresses are touched, in what order, with what divergence) while
//! abstracting per-instruction pipeline details (see DESIGN.md,
//! "Substitutions").

use batmem_types::{BlockId, KernelId, VirtAddr};

/// Transactions an [`AddrList`] stores without heap allocation: one warp's
/// worth, which is the most a 32-lane coalescer emits per operation.
pub const INLINE_TXNS: usize = 32;

/// A coalesced memory operation's transaction addresses.
///
/// Up to [`INLINE_TXNS`] entries live inline — since the stream builders
/// chunk coalesced transactions at warp size, every op they emit takes the
/// inline path, so constructing and dropping ops on the engine's hot loop
/// never touches the allocator. Wider lists (hand-built streams) spill to a
/// heap vector transparently.
#[derive(Clone)]
pub struct AddrList(Repr);

// The size asymmetry is the point: the inline variant IS the intended
// storage, and ops this size move through `Vec`s and `Option`s a couple of
// times per event — far cheaper than the malloc/free pair it replaces.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [VirtAddr; INLINE_TXNS] },
    Heap(Vec<VirtAddr>),
}

impl AddrList {
    /// The transactions as a slice.
    pub fn as_slice(&self) -> &[VirtAddr] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..usize::from(*len)],
            Repr::Heap(v) => v,
        }
    }
}

impl std::ops::Deref for AddrList {
    type Target = [VirtAddr];

    fn deref(&self) -> &[VirtAddr] {
        self.as_slice()
    }
}

impl PartialEq for AddrList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for AddrList {}

impl std::fmt::Debug for AddrList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl FromIterator<VirtAddr> for AddrList {
    fn from_iter<I: IntoIterator<Item = VirtAddr>>(iter: I) -> Self {
        let mut buf = [VirtAddr::default(); INLINE_TXNS];
        let mut len = 0usize;
        let mut iter = iter.into_iter();
        for a in iter.by_ref() {
            if len == INLINE_TXNS {
                // Spill: keep what's inline, then extend on the heap.
                let mut v = Vec::with_capacity(INLINE_TXNS * 2);
                v.extend_from_slice(&buf);
                v.push(a);
                v.extend(iter);
                return Self(Repr::Heap(v));
            }
            buf[len] = a;
            len += 1;
        }
        Self(Repr::Inline { len: len as u8, buf })
    }
}

impl From<Vec<VirtAddr>> for AddrList {
    fn from(v: Vec<VirtAddr>) -> Self {
        if v.len() <= INLINE_TXNS {
            let mut buf = [VirtAddr::default(); INLINE_TXNS];
            buf[..v.len()].copy_from_slice(&v);
            Self(Repr::Inline { len: v.len() as u8, buf })
        } else {
            Self(Repr::Heap(v))
        }
    }
}

/// One warp-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpOp {
    /// `cycles` of computation before the next operation can issue.
    Compute(u32),
    /// A coalesced load: one entry per distinct memory transaction the
    /// warp's 32 lanes generate (1 for a fully coalesced access, up to 32
    /// for fully divergent scatter/gather).
    Load(AddrList),
    /// A coalesced store; timing-wise identical to a load in this model
    /// (write-allocate), tracked separately for statistics.
    Store(AddrList),
}

impl WarpOp {
    /// The addresses this op touches (empty for compute).
    pub fn addrs(&self) -> &[VirtAddr] {
        match self {
            WarpOp::Compute(_) => &[],
            WarpOp::Load(a) | WarpOp::Store(a) => a.as_slice(),
        }
    }

    /// Whether this is a memory operation.
    pub fn is_mem(&self) -> bool {
        !matches!(self, WarpOp::Compute(_))
    }
}

/// A lazy per-warp instruction stream.
///
/// Implementations are single-pass iterators; the engine calls
/// [`AccessStream::next_op`] each time the warp is ready to issue.
pub trait AccessStream {
    /// Produces the warp's next operation, or `None` when the warp has
    /// retired all its work.
    fn next_op(&mut self) -> Option<WarpOp>;
}

/// A boxed access stream, as returned by [`Kernel::warp_stream`].
pub type BoxedStream = Box<dyn AccessStream + Send>;

/// The launch geometry of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Thread blocks in the grid.
    pub num_blocks: u32,
    /// Threads per block (a multiple of the warp size).
    pub threads_per_block: u32,
    /// Registers each thread uses (drives occupancy and context-switch
    /// cost; most GraphBIG kernels use more than 16, which is what makes
    /// baseline VT inapplicable without full context switching — §4.1).
    pub regs_per_thread: u32,
}

impl KernelSpec {
    /// Warps per block for the given warp size.
    ///
    /// # Panics
    ///
    /// Panics if `threads_per_block` is not a positive multiple of
    /// `warp_size`.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        assert!(
            self.threads_per_block > 0 && self.threads_per_block.is_multiple_of(warp_size),
            "threads_per_block {} must be a positive multiple of warp size {}",
            self.threads_per_block,
            warp_size
        );
        self.threads_per_block / warp_size
    }
}

/// One kernel of a workload: geometry plus per-warp stream construction.
///
/// The `Sync` bound (plus the purity requirement on
/// [`warp_stream`](Kernel::warp_stream)) is what lets the engine's sharded
/// executor prefabricate warp streams on worker threads: a kernel is shared
/// immutably across shards, and every `(block, warp)` stream is built
/// exactly once regardless of which thread builds it.
pub trait Kernel: Send + Sync {
    /// The kernel's launch geometry.
    fn spec(&self) -> KernelSpec;

    /// Builds the access stream of warp `warp_in_block` of `block`.
    ///
    /// Called exactly once per warp, when the block is dispatched (lazily
    /// on the serial path; eagerly, possibly from another thread, under
    /// sharded execution). Implementations must be pure functions of
    /// `(block, warp_in_block)` — the stream's contents may not depend on
    /// call order or timing, which is what keeps multi-threaded runs
    /// bit-identical to serial ones.
    fn warp_stream(&self, block: BlockId, warp_in_block: u16) -> BoxedStream;
}

/// A complete workload: an ordered sequence of kernel launches over a fixed
/// virtual-memory layout.
pub trait Workload: Send {
    /// Short display name (e.g. `"BFS-TTC"`).
    fn name(&self) -> String;

    /// Total bytes of device-visible data the workload touches (its memory
    /// footprint, used to size GPU memory for oversubscription ratios).
    fn footprint_bytes(&self) -> u64;

    /// Number of kernels launched, in order.
    fn num_kernels(&self) -> u32;

    /// Builds kernel `k`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `k >= num_kernels()`.
    fn kernel(&self, k: KernelId) -> Box<dyn Kernel>;
}

/// A ready-made stream over a fixed op vector (testing and simple kernels).
#[derive(Debug, Clone)]
pub struct VecStream {
    ops: std::vec::IntoIter<WarpOp>,
}

impl VecStream {
    /// Creates a stream that yields `ops` in order.
    pub fn new(ops: Vec<WarpOp>) -> Self {
        Self { ops: ops.into_iter() }
    }
}

impl AccessStream for VecStream {
    fn next_op(&mut self) -> Option<WarpOp> {
        self.ops.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_op_addr_views() {
        let c = WarpOp::Compute(5);
        assert!(c.addrs().is_empty());
        assert!(!c.is_mem());
        let l = WarpOp::Load(vec![VirtAddr::new(64)].into());
        assert_eq!(l.addrs(), &[VirtAddr::new(64)]);
        assert!(l.is_mem());
    }

    #[test]
    fn warps_per_block() {
        let s = KernelSpec { num_blocks: 10, threads_per_block: 256, regs_per_thread: 32 };
        assert_eq!(s.warps_per_block(32), 8);
    }

    #[test]
    #[should_panic(expected = "multiple of warp size")]
    fn bad_block_shape_panics() {
        let s = KernelSpec { num_blocks: 1, threads_per_block: 100, regs_per_thread: 32 };
        let _ = s.warps_per_block(32);
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(vec![WarpOp::Compute(1), WarpOp::Compute(2)]);
        assert_eq!(s.next_op(), Some(WarpOp::Compute(1)));
        assert_eq!(s.next_op(), Some(WarpOp::Compute(2)));
        assert_eq!(s.next_op(), None);
        assert_eq!(s.next_op(), None);
    }
}
