//! Streaming-multiprocessor occupancy and slot accounting.

use crate::ops::KernelSpec;
use batmem_types::config::GpuConfig;
use batmem_types::{Cycle, SimError};

/// How many blocks of a given kernel an SM can schedule and host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks that may be *active* simultaneously (the scheduling limit:
    /// thread count, register file, and hardware block cap).
    pub active_limit: u32,
    /// Warps per block.
    pub warps_per_block: u32,
}

/// Computes baseline occupancy for `spec` on the configured GPU, exactly as
/// the runtime does at kernel launch (§2.1 of the paper): the number of
/// thread blocks dispatched per SM is the minimum over the thread limit,
/// the register-file limit, and the hardware block cap, and never below 1.
pub fn occupancy(gpu: &GpuConfig, spec: &KernelSpec) -> Occupancy {
    let by_threads = gpu.threads_per_sm / spec.threads_per_block;
    let regs_per_block = spec.regs_per_thread * spec.threads_per_block;
    let by_regs = gpu.regs_per_sm.checked_div(regs_per_block).unwrap_or(u32::MAX);
    let active_limit = gpu.max_blocks_per_sm.min(by_threads).min(by_regs).max(1);
    Occupancy { active_limit, warps_per_block: spec.warps_per_block(gpu.warp_size) }
}

/// Per-SM slot accounting: which dispatched blocks (by arena index) are
/// active vs. inactive, plus the context-switch engine's busy time.
///
/// Blocks themselves live in the engine's arena; the SM holds indices only.
#[derive(Debug, Clone, Default)]
pub struct Sm {
    /// Arena indices of active blocks.
    pub active: Vec<usize>,
    /// Arena indices of resident but descheduled blocks.
    pub inactive: Vec<usize>,
    /// The context-switch engine is busy until this time (switches through
    /// global memory serialize per SM).
    pub switch_busy_until: Cycle,
    /// Completed context switches on this SM.
    pub ctx_switches: u64,
}

impl Sm {
    /// Creates an empty SM.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total resident blocks (active + inactive).
    pub fn resident_blocks(&self) -> usize {
        self.active.len() + self.inactive.len()
    }

    /// Builds a [`SimError::StateMachine`] snapshotting the SM's lists.
    fn bad_transition(&self, now: Cycle, event: String, detail: &str) -> SimError {
        SimError::StateMachine {
            cycle: now,
            event,
            state: format!("active={:?} inactive={:?}", self.active, self.inactive),
            detail: detail.to_string(),
        }
    }

    /// Moves `arena_idx` from the active to the inactive list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateMachine`] stamped with `now` if the block
    /// is not active.
    pub fn deactivate(&mut self, arena_idx: usize, now: Cycle) -> Result<(), SimError> {
        let Some(pos) = self.active.iter().position(|&b| b == arena_idx) else {
            return Err(self.bad_transition(
                now,
                format!("Deactivate(block:{arena_idx})"),
                "deactivating a block that is not active",
            ));
        };
        self.active.remove(pos);
        self.inactive.push(arena_idx);
        Ok(())
    }

    /// Moves `arena_idx` from the inactive to the active list.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateMachine`] stamped with `now` if the block
    /// is not inactive.
    pub fn activate(&mut self, arena_idx: usize, now: Cycle) -> Result<(), SimError> {
        let Some(pos) = self.inactive.iter().position(|&b| b == arena_idx) else {
            return Err(self.bad_transition(
                now,
                format!("Activate(block:{arena_idx})"),
                "activating a block that is not inactive",
            ));
        };
        self.inactive.remove(pos);
        self.active.push(arena_idx);
        Ok(())
    }

    /// Removes a retired block from whichever list holds it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateMachine`] stamped with `now` if the block
    /// is not resident on this SM.
    pub fn remove(&mut self, arena_idx: usize, now: Cycle) -> Result<(), SimError> {
        if let Some(pos) = self.active.iter().position(|&b| b == arena_idx) {
            self.active.remove(pos);
            Ok(())
        } else if let Some(pos) = self.inactive.iter().position(|&b| b == arena_idx) {
            self.inactive.remove(pos);
            Ok(())
        } else {
            Err(self.bad_transition(
                now,
                format!("Retire(block:{arena_idx})"),
                "removing a block that is not resident",
            ))
        }
    }

    /// Reserves the switch engine starting no earlier than `now` for
    /// `duration` cycles; returns the completion time.
    pub fn begin_switch(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        let start = self.switch_busy_until.max(now);
        self.switch_busy_until = start + duration;
        self.ctx_switches += 1;
        self.switch_busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tpb: u32, rpt: u32) -> KernelSpec {
        KernelSpec { num_blocks: 100, threads_per_block: tpb, regs_per_thread: rpt }
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let g = GpuConfig::default(); // 1024 threads/SM, 65536 regs
        let o = occupancy(&g, &spec(256, 16));
        // threads: 1024/256 = 4; regs: 65536/(16*256) = 16; cap 32 -> 4.
        assert_eq!(o.active_limit, 4);
        assert_eq!(o.warps_per_block, 8);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let g = GpuConfig::default();
        let o = occupancy(&g, &spec(256, 64));
        // regs: 65536/(64*256) = 4 -> still 4; raise rpt further:
        let o2 = occupancy(&g, &spec(256, 128));
        // 65536/(128*256) = 2.
        assert_eq!(o2.active_limit, 2);
        assert_eq!(o.active_limit, 4);
    }

    #[test]
    fn occupancy_never_below_one() {
        let g = GpuConfig::default();
        let o = occupancy(&g, &spec(1024, 255));
        assert_eq!(o.active_limit, 1);
    }

    #[test]
    fn paper_register_pressure_example() {
        // §4.1: with 2048 threads/SM and 65536 regs, >16 regs/thread leaves
        // no room for an extra block. Scale to our 1024-thread SMs: at the
        // thread limit (4 blocks of 256), each thread may use up to 64
        // registers before the register file becomes the binding limit.
        let g = GpuConfig::default();
        assert_eq!(occupancy(&g, &spec(256, 64)).active_limit, 4);
        assert!(occupancy(&g, &spec(256, 65)).active_limit < 4);
    }

    #[test]
    fn slot_transitions() {
        let mut sm = Sm::new();
        sm.active.push(7);
        sm.inactive.push(9);
        sm.deactivate(7, 0).unwrap();
        assert_eq!(sm.active, Vec::<usize>::new());
        assert_eq!(sm.inactive, vec![9, 7]);
        sm.activate(9, 0).unwrap();
        assert_eq!(sm.active, vec![9]);
        sm.remove(9, 0).unwrap();
        sm.remove(7, 0).unwrap();
        assert_eq!(sm.resident_blocks(), 0);
    }

    #[test]
    fn bad_transitions_are_state_machine_errors() {
        let mut sm = Sm::new();
        let err = sm.deactivate(0, 123).unwrap_err();
        assert!(matches!(err, SimError::StateMachine { .. }), "{err}");
        assert_eq!(err.cycle(), Some(123));
        assert!(err.to_string().contains("not active"));
        let err = sm.activate(0, 124).unwrap_err();
        assert!(err.to_string().contains("not inactive"));
        let err = sm.remove(0, 125).unwrap_err();
        assert!(err.to_string().contains("not resident"));
        assert_eq!(err.cycle(), Some(125));
    }

    #[test]
    fn switch_engine_serializes() {
        let mut sm = Sm::new();
        let a = sm.begin_switch(100, 50);
        assert_eq!(a, 150);
        let b = sm.begin_switch(120, 50); // must queue behind the first
        assert_eq!(b, 200);
        assert_eq!(sm.ctx_switches, 2);
    }
}
