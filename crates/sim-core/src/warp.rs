//! Warp execution state.

use crate::ops::{BoxedStream, WarpOp};
use std::fmt;

/// What a warp is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpPhase {
    /// Eligible to issue; an issue event is (or is about to be) scheduled.
    Ready,
    /// Executing a compute delay; a wake event is scheduled.
    Computing,
    /// Waiting for a memory response; a wake event is scheduled.
    MemWait,
    /// Blocked on one or more page faults; woken by page arrivals.
    FaultBlocked,
    /// Became runnable while its block was context-switched out; will be
    /// scheduled when the block switches back in.
    ReadyInactive,
    /// Retired.
    Finished,
}

impl WarpPhase {
    /// Whether the warp counts as stalled for the
    /// [`SwitchTrigger::FaultStall`](batmem_types::policy::SwitchTrigger)
    /// policy (page-fault blocked).
    pub fn is_fault_stalled(self) -> bool {
        matches!(self, WarpPhase::FaultBlocked)
    }

    /// Whether the warp counts as stalled for the
    /// [`SwitchTrigger::AnyStall`](batmem_types::policy::SwitchTrigger)
    /// policy (any long-latency wait).
    pub fn is_any_stalled(self) -> bool {
        matches!(self, WarpPhase::FaultBlocked | WarpPhase::MemWait)
    }

    /// Whether the warp has retired.
    pub fn is_finished(self) -> bool {
        self == WarpPhase::Finished
    }
}

/// The execution context of one warp.
pub struct WarpContext {
    /// The warp's remaining instruction stream.
    pub stream: BoxedStream,
    /// Current phase.
    pub phase: WarpPhase,
    /// A memory op that faulted and must be retried once the pages arrive.
    pub pending_retry: Option<WarpOp>,
    /// Outstanding faulted pages this warp is waiting on.
    pub waiting_pages: u32,
}

impl fmt::Debug for WarpContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WarpContext")
            .field("phase", &self.phase)
            .field("waiting_pages", &self.waiting_pages)
            .field("has_retry", &self.pending_retry.is_some())
            .finish()
    }
}

impl WarpContext {
    /// Creates a ready warp over `stream`.
    pub fn new(stream: BoxedStream) -> Self {
        Self { stream, phase: WarpPhase::Ready, pending_retry: None, waiting_pages: 0 }
    }

    /// Takes the next op to execute: a pending faulted retry first,
    /// otherwise the next stream op.
    pub fn take_next_op(&mut self) -> Option<WarpOp> {
        self.pending_retry.take().or_else(|| self.stream.next_op())
    }

    /// Records that one awaited page arrived; returns `true` when the warp
    /// has no more outstanding pages and can be rescheduled.
    ///
    /// # Panics
    ///
    /// Panics if the warp was not waiting on any page.
    pub fn page_arrived(&mut self) -> bool {
        assert!(self.waiting_pages > 0, "page arrival for warp that awaits none");
        self.waiting_pages -= 1;
        self.waiting_pages == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VecStream;
    use batmem_types::VirtAddr;

    fn warp(ops: Vec<WarpOp>) -> WarpContext {
        WarpContext::new(Box::new(VecStream::new(ops)))
    }

    #[test]
    fn retry_takes_priority_over_stream() {
        let mut w = warp(vec![WarpOp::Compute(1)]);
        w.pending_retry = Some(WarpOp::Load(vec![VirtAddr::new(0)].into()));
        assert_eq!(w.take_next_op(), Some(WarpOp::Load(vec![VirtAddr::new(0)].into())));
        assert_eq!(w.take_next_op(), Some(WarpOp::Compute(1)));
        assert_eq!(w.take_next_op(), None);
    }

    #[test]
    fn page_arrival_counts_down() {
        let mut w = warp(vec![]);
        w.phase = WarpPhase::FaultBlocked;
        w.waiting_pages = 2;
        assert!(!w.page_arrived());
        assert!(w.page_arrived());
    }

    #[test]
    #[should_panic(expected = "awaits none")]
    fn unexpected_page_arrival_panics() {
        let mut w = warp(vec![]);
        w.page_arrived();
    }

    #[test]
    fn phase_predicates() {
        assert!(WarpPhase::FaultBlocked.is_fault_stalled());
        assert!(!WarpPhase::MemWait.is_fault_stalled());
        assert!(WarpPhase::MemWait.is_any_stalled());
        assert!(WarpPhase::FaultBlocked.is_any_stalled());
        assert!(!WarpPhase::Computing.is_any_stalled());
        assert!(WarpPhase::Finished.is_finished());
    }
}
