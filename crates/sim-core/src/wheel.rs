//! Hierarchical timing wheel: the near-future tier of [`EventQueue`].
//!
//! [`EventQueue`]: crate::events::EventQueue
//!
//! The wheel holds entries whose timestamps fall inside the top-level
//! *window* containing the wheel's current time `wt` (2^24 cycles with the
//! default geometry: 4 levels of 64 slots, 6 bits per level). Placement is
//! window-based rather than delta-based: an entry goes to the smallest
//! level `k` such that its timestamp shares `wt`'s level-`(k+1)` window
//! (they agree on all bits above `6·(k+1)`), in the slot named by its own
//! level-`k` window index. This keeps the slot-index → window mapping
//! bijective, so cascades never re-insert an entry into the slot it came
//! from and rollover cannot livelock.
//!
//! Two invariants carry the correctness argument (see DESIGN.md §9):
//!
//! 1. `wt` never exceeds the earliest pending timestamp, so no slot is
//!    skipped as the wheel advances.
//! 2. Levels are strictly ordered in time: every level-`k` entry shares
//!    `wt`'s level-`(k+1)` window but *not* its level-`k` window (cursor
//!    slots are cascaded down eagerly on every advance), hence any
//!    level-`k` entry precedes any level-`(k+1)` entry. The earliest
//!    pending timestamp therefore always lives in the lowest occupied
//!    level's first occupied slot at-or-after the cursor, found with one
//!    `trailing_zeros` on the occupancy bitmap.
//!
//! Determinism: slots collect entries from direct pushes *and* cascades,
//! which can arrive out of insertion order (a cascade can land an older
//! `seq` behind a newer direct push). [`TimingWheel::stage`] sorts the
//! front slot by `seq` exactly once before it is consumed, restoring the
//! global `(time, seq)` order bit-for-bit.

use batmem_types::Cycle;
use std::collections::VecDeque;

/// Bits per level: each level has `1 << SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of levels.
const LEVELS: usize = 4;
/// Bits covered by the whole wheel; timestamps sharing the wheel time's
/// top-level window (equal above this bit) fit, everything else overflows.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;
/// Low-6-bits mask for slot indexing.
const SLOT_MASK: u64 = SLOTS as u64 - 1;

/// A scheduled entry: absolute timestamp, global insertion sequence, payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    time: Cycle,
    seq: u64,
    item: T,
}

/// One wheel level: 64 slots plus an occupancy bitmap (bit `i` set iff
/// `slots[i]` is non-empty) so the earliest occupied slot is a
/// `trailing_zeros` away.
#[derive(Debug, Clone)]
struct Level<T> {
    occupied: u64,
    slots: [Vec<Entry<T>>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Self { occupied: 0, slots: std::array::from_fn(|_| Vec::new()) }
    }
}

/// The hierarchical timing wheel. Generic over the payload with no trait
/// bounds; ordering uses only `(time, seq)`.
#[derive(Debug, Clone)]
pub(crate) struct TimingWheel<T> {
    levels: Vec<Level<T>>,
    /// Wheel time: every entry satisfies `time >= wt`, and `wt` never
    /// exceeds the earliest pending entry's timestamp.
    wt: Cycle,
    count: usize,
}

impl<T> TimingWheel<T> {
    pub(crate) fn new() -> Self {
        Self { levels: (0..LEVELS).map(|_| Level::new()).collect(), wt: 0, count: 0 }
    }

    pub(crate) fn len(&self) -> usize {
        self.count
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `time` can be placed: not behind the wheel, and inside the
    /// top-level window containing the wheel time.
    pub(crate) fn fits(&self, time: Cycle) -> bool {
        time >= self.wt && (time ^ self.wt) >> HORIZON_BITS == 0
    }

    /// Moves an *empty* wheel's time forward so `fits` covers as much of
    /// the future as possible. No-op if `wt` is already past `at`.
    pub(crate) fn rebase(&mut self, at: Cycle) {
        debug_assert!(self.count == 0, "rebase requires an empty wheel");
        self.wt = self.wt.max(at);
    }

    /// Inserts an entry; `time` must satisfy [`Self::fits`].
    pub(crate) fn push(&mut self, time: Cycle, seq: u64, item: T) {
        debug_assert!(self.fits(time), "push outside the wheel horizon");
        self.place(Entry { time, seq, item });
        self.count += 1;
    }

    /// Routes an entry to its level and slot relative to the current `wt`.
    fn place(&mut self, e: Entry<T>) {
        let x = e.time ^ self.wt;
        let level = if x == 0 { 0 } else { ((63 - x.leading_zeros()) / SLOT_BITS) as usize };
        debug_assert!(level < LEVELS);
        let idx = ((e.time >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].occupied |= 1 << idx;
        self.levels[level].slots[idx].push(e);
    }

    /// Advances the wheel time and cascades down every slot the new time
    /// lands in. `at` must not exceed the earliest pending timestamp.
    fn advance(&mut self, at: Cycle) {
        debug_assert!(at >= self.wt, "wheel time is monotone");
        self.wt = at;
        for level in 1..LEVELS {
            let cursor = ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            if self.levels[level].occupied & (1 << cursor) == 0 {
                continue;
            }
            // The cursor slot's entries now share `wt`'s level-`level`
            // window, so `place` moves each strictly below this level.
            self.levels[level].occupied &= !(1 << cursor);
            let mut drained = std::mem::take(&mut self.levels[level].slots[cursor]);
            for e in drained.drain(..) {
                self.place(e);
            }
            // Hand the (now empty) buffer back so its capacity is reused.
            self.levels[level].slots[cursor] = drained;
        }
    }

    /// Cascades until the earliest pending entries sit in a level-0 slot,
    /// sorts that slot by `seq`, and returns its `(time, first seq)`.
    /// Leaves the wheel staged for [`Self::take_staged`]; idempotent.
    pub(crate) fn stage(&mut self) -> Option<(Cycle, u64)> {
        if self.count == 0 {
            return None;
        }
        loop {
            if self.levels[0].occupied != 0 {
                let idx = self.front_slot(0);
                let slot = &mut self.levels[0].slots[idx];
                // Direct pushes and cascades interleave out of seq order;
                // one sort on consumption restores FIFO within the tick.
                slot.sort_unstable_by_key(|e| e.seq);
                debug_assert!(
                    slot.windows(2).all(|w| w[0].time == w[1].time),
                    "a level-0 slot holds exactly one timestamp"
                );
                return Some((slot[0].time, slot[0].seq));
            }
            let level = (1..LEVELS)
                .find(|&k| self.levels[k].occupied != 0)
                .expect("count > 0 but every level is empty");
            let shift = SLOT_BITS * level as u32;
            let idx = self.front_slot(level);
            // Jump to the start of the earliest occupied window (still at
            // or before the earliest entry) and cascade it down a level.
            let window_start = (idx as u64) << shift | (self.wt >> (shift + SLOT_BITS)) << (shift + SLOT_BITS);
            self.advance(self.wt.max(window_start));
            if self.levels[level].occupied & (1 << idx) != 0 {
                // `advance` stopped short of the slot (same window as the
                // old cursor); drain it explicitly.
                self.levels[level].occupied &= !(1 << idx);
                let mut drained = std::mem::take(&mut self.levels[level].slots[idx]);
                for e in drained.drain(..) {
                    self.place(e);
                }
                self.levels[level].slots[idx] = drained;
            }
        }
    }

    /// Index of the first occupied slot at or after the cursor. All
    /// occupied slots sit at or after the cursor (invariant 1), so the
    /// shifted bitmap is never empty when the level is occupied.
    fn front_slot(&self, level: usize) -> usize {
        let cursor = ((self.wt >> (SLOT_BITS * level as u32)) & SLOT_MASK) as u32;
        let bits = self.levels[level].occupied >> cursor;
        debug_assert!(bits != 0, "occupied slot behind the cursor");
        (cursor + bits.trailing_zeros()) as usize
    }

    /// Drains the staged front slot (see [`Self::stage`]) into `out` as
    /// `(seq, item)` pairs in seq order, advances the wheel past its
    /// timestamp, and returns that timestamp.
    pub(crate) fn take_staged(&mut self, out: &mut VecDeque<(u64, T)>) -> Cycle {
        debug_assert!(self.levels[0].occupied != 0, "take_staged without stage");
        let idx = self.front_slot(0);
        self.levels[0].occupied &= !(1 << idx);
        let mut drained = std::mem::take(&mut self.levels[0].slots[idx]);
        let time = drained[0].time;
        self.count -= drained.len();
        for e in drained.drain(..) {
            out.push_back((e.seq, e.item));
        }
        self.levels[0].slots[idx] = drained;
        self.advance(time + 1);
        time
    }

    /// Earliest pending timestamp without mutating the wheel (`O(slot)`,
    /// for peeking only).
    pub(crate) fn peek_min_time(&self) -> Option<Cycle> {
        if self.count == 0 {
            return None;
        }
        let level = (0..LEVELS)
            .find(|&k| self.levels[k].occupied != 0)
            .expect("count > 0 but every level is empty");
        let idx = self.front_slot(level);
        self.levels[level].slots[idx].iter().map(|e| e.time).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut TimingWheel<u32>) -> Vec<(Cycle, u64)> {
        let mut out = Vec::new();
        let mut ring = VecDeque::new();
        while w.stage().is_some() {
            let t = w.take_staged(&mut ring);
            for (seq, _) in ring.drain(..) {
                out.push((t, seq));
            }
        }
        out
    }

    #[test]
    fn orders_across_levels() {
        let mut w = TimingWheel::new();
        // One entry per level, pushed in reverse time order.
        for (i, t) in [300_000u64, 5_000, 70, 3].iter().enumerate() {
            w.push(*t, i as u64, 0u32);
        }
        let popped = drain_all(&mut w);
        assert_eq!(popped, vec![(3, 3), (70, 2), (5_000, 1), (300_000, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn cascade_after_direct_push_restores_seq_order() {
        let mut w = TimingWheel::new();
        w.rebase(250);
        // seq 0 lands at a higher level; seq 1 is pushed later but, after
        // the wheel advances, a naive cascade would append seq 0 behind it.
        w.push(260, 0, 0u32);
        w.push(260, 1, 0u32);
        assert_eq!(drain_all(&mut w), vec![(260, 0), (260, 1)]);
    }

    #[test]
    fn window_boundary_entries_cascade_down() {
        let mut w = TimingWheel::new();
        w.rebase(4_095);
        // Delta 1 but across a level-1 and level-2 window boundary: placed
        // high, must cascade back down without livelocking.
        w.push(4_096, 0, 0u32);
        w.push(4_095, 1, 0u32);
        assert_eq!(drain_all(&mut w), vec![(4_095, 1), (4_096, 0)]);
    }

    #[test]
    fn fits_respects_horizon_and_past() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        w.rebase(100);
        assert!(w.fits(100));
        assert!(!w.fits(99));
        assert!(w.fits((1 << HORIZON_BITS) - 1));
        assert!(!w.fits(1 << HORIZON_BITS));
    }
}
