//! Oracle tests for the bank-partitioned data path.
//!
//! The engine's bank-parallel mem-op execution (DESIGN.md §14) rests on
//! one claim: partitioning a cycle batch's accesses by L2 bank and
//! replaying each bank's slice serially **in arrival order** produces the
//! exact per-access latencies and cache statistics of the serial
//! [`MemPath`], for any bank count. These tests pin that claim directly
//! against the serial path as oracle, without the engine in the loop.

use batmem_sim::cache::{DataCache, MemPath};
use batmem_types::config::{CacheGeometry, MemConfig};
use batmem_types::{Cycle, VirtAddr};
use proptest::prelude::*;

/// Small geometry so random streams actually collide: 8 L1 sets (4-way),
/// 32 L2 sets (8-way), shared 128 B lines. Banks up to 8 divide both set
/// counts, matching the validation rule in `MemConfig`.
fn config(banks: u32) -> MemConfig {
    MemConfig {
        l1d: CacheGeometry { capacity_bytes: 4096, ways: 4, line_shift: 7, hit_latency: 4 },
        l2d: CacheGeometry { capacity_bytes: 32 * 1024, ways: 8, line_shift: 7, hit_latency: 30 },
        dram_latency: 200,
        l2_banks: banks,
        bank_dispatch_min: 1,
    }
}

const NUM_SMS: u16 = 4;

/// Serial oracle: drive the stream through `MemPath::access` in order.
fn serial_latencies(banks: u32, stream: &[(u16, VirtAddr)]) -> (Vec<Cycle>, MemPath) {
    let mut mem = MemPath::new(&config(banks), NUM_SMS);
    let lat =
        stream.iter().map(|&(sm, addr)| mem.access(usize::from(sm), addr)).collect();
    (lat, mem)
}

/// The engine's replay schedule: partition by bank preserving arrival
/// order, detach each bank, replay its slice, reattach, then stitch the
/// per-bank latency vectors back into stream order with per-bank cursors
/// — exactly what `Engine::flush_mem_batch` does.
fn banked_latencies(banks: u32, stream: &[(u16, VirtAddr)]) -> (Vec<Cycle>, MemPath) {
    let mut mem = MemPath::new(&config(banks), NUM_SMS);
    let n = mem.num_banks();
    let mut queues: Vec<Vec<(u16, VirtAddr)>> = vec![Vec::new(); n];
    let mut which: Vec<usize> = Vec::with_capacity(stream.len());
    for &(sm, addr) in stream {
        let b = mem.bank_of(addr);
        which.push(b);
        queues[b].push((sm, addr));
    }
    let mut per_bank: Vec<Vec<Cycle>> = vec![Vec::new(); n];
    for (b, queue) in queues.iter().enumerate() {
        let mut view = mem.detach_bank(b);
        view.replay(queue, &mut per_bank[b]);
        mem.attach_bank(view);
    }
    let mut cursors = vec![0usize; n];
    let mut lat = Vec::with_capacity(stream.len());
    for &b in &which {
        lat.push(per_bank[b][cursors[b]]);
        cursors[b] += 1;
    }
    (lat, mem)
}

proptest! {
    /// The tentpole oracle: for every bank count, the partitioned replay
    /// reproduces the serial path's per-access latencies *and* cache
    /// statistics — and every bank count agrees with the single-bank
    /// reference, so banking itself never changes an outcome either.
    #[test]
    fn bank_partitioned_replay_matches_serial_mem_path(
        stream in prop::collection::vec(
            ((0u16..NUM_SMS), (0u64..64 * 1024).prop_map(VirtAddr::new)),
            1..400,
        ),
    ) {
        let (reference, _) = serial_latencies(1, &stream);
        for banks in [1u32, 2, 4, 8] {
            let (serial, serial_mem) = serial_latencies(banks, &stream);
            let (replayed, replayed_mem) = banked_latencies(banks, &stream);
            prop_assert_eq!(&serial, &reference, "banks={} serial vs 1-bank", banks);
            prop_assert_eq!(&replayed, &serial, "banks={} replay vs serial", banks);
            prop_assert_eq!(
                replayed_mem.l1_stats(), serial_mem.l1_stats(),
                "banks={} L1 stats", banks
            );
            prop_assert_eq!(
                replayed_mem.l2_stats(), serial_mem.l2_stats(),
                "banks={} L2 stats", banks
            );
            prop_assert_eq!(
                replayed_mem.l2_bank_stats(), serial_mem.l2_bank_stats(),
                "banks={} per-bank L2 stats", banks
            );
        }
    }

    /// Banked `DataCache` construction is invisible to hit/miss outcomes:
    /// the same access stream sees the same per-access result for any
    /// bank count, and the per-bank stats always sum to the totals.
    #[test]
    fn banked_data_cache_is_invisible_to_outcomes(
        addrs in prop::collection::vec(0u64..32 * 1024, 1..300),
    ) {
        let geom = CacheGeometry {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_shift: 7,
            hit_latency: 30,
        };
        let mut reference = DataCache::new(geom);
        let outcomes: Vec<bool> =
            addrs.iter().map(|&a| reference.access(VirtAddr::new(a))).collect();
        for banks in [2u32, 4, 8] {
            let mut banked = DataCache::with_banks(geom, banks);
            for (&a, &expect) in addrs.iter().zip(&outcomes) {
                prop_assert_eq!(banked.access(VirtAddr::new(a)), expect, "banks={}", banks);
            }
            prop_assert_eq!(banked.stats(), reference.stats(), "banks={} totals", banks);
            let per_bank = banked.bank_stats();
            prop_assert_eq!(per_bank.len(), banks as usize);
            let summed: u64 = per_bank.iter().map(|s| s.accesses()).sum();
            prop_assert_eq!(summed, addrs.len() as u64, "banks={} access sum", banks);
        }
    }
}
