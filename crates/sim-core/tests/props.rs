//! Property-based tests for the event queue and cache models.

use batmem_sim::cache::DataCache;
use batmem_sim::EventQueue;
use batmem_types::config::CacheGeometry;
use batmem_types::VirtAddr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(
        events in prop::collection::vec((0u64..100, 0u32..1000), 0..300),
    ) {
        let mut q = EventQueue::new();
        for &(t, tag) in &events {
            q.push(t, tag);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), events.len());
        // Sorted by time.
        prop_assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
        // Stable: equal-time events keep insertion order.
        for t in popped.iter().map(|&(t, _)| t) {
            let at_t: Vec<u32> =
                popped.iter().filter(|&&(pt, _)| pt == t).map(|&(_, x)| x).collect();
            let inserted: Vec<u32> =
                events.iter().filter(|&&(et, _)| et == t).map(|&(_, x)| x).collect();
            prop_assert_eq!(at_t, inserted);
        }
    }

    #[test]
    fn cache_repeat_access_within_line_always_hits(
        base in 0u64..1_000_000,
        offsets in prop::collection::vec(0u64..128, 1..20),
    ) {
        let mut c = DataCache::new(CacheGeometry {
            capacity_bytes: 4096,
            ways: 4,
            line_shift: 7,
            hit_latency: 4,
        });
        let line_base = base & !127;
        c.access(VirtAddr::new(line_base));
        for &off in &offsets {
            prop_assert!(c.access(VirtAddr::new(line_base + off)));
        }
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(
        addrs in prop::collection::vec(0u64..100_000, 1..500),
    ) {
        let mut c = DataCache::new(CacheGeometry {
            capacity_bytes: 2048,
            ways: 2,
            line_shift: 7,
            hit_latency: 4,
        });
        for &a in &addrs {
            c.access(VirtAddr::new(a));
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
    }

    #[test]
    fn working_set_smaller_than_cache_converges_to_hits(
        lines in prop::collection::vec(0u64..4, 1..10),
    ) {
        // 4 distinct lines in a 2 KB (16-line) cache: a second pass over the
        // same addresses must hit every time.
        let mut c = DataCache::new(CacheGeometry {
            capacity_bytes: 2048,
            ways: 16,
            line_shift: 7,
            hit_latency: 4,
        });
        for &l in &lines {
            c.access(VirtAddr::new(l * 128));
        }
        for &l in &lines {
            prop_assert!(c.access(VirtAddr::new(l * 128)));
        }
    }
}
