//! Property-based tests for the event queue and cache models.

use batmem_sim::cache::DataCache;
use batmem_sim::EventQueue;
use batmem_types::config::CacheGeometry;
use batmem_types::VirtAddr;
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(
        events in prop::collection::vec((0u64..100, 0u32..1000), 0..300),
    ) {
        let mut q = EventQueue::new();
        for &(t, tag) in &events {
            q.push(t, tag);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), events.len());
        // Sorted by time.
        prop_assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
        // Stable: equal-time events keep insertion order.
        for t in popped.iter().map(|&(t, _)| t) {
            let at_t: Vec<u32> =
                popped.iter().filter(|&&(pt, _)| pt == t).map(|&(_, x)| x).collect();
            let inserted: Vec<u32> =
                events.iter().filter(|&&(et, _)| et == t).map(|&(_, x)| x).collect();
            prop_assert_eq!(at_t, inserted);
        }
    }

    #[test]
    fn event_queue_matches_heap_oracle_under_interleaved_ops(
        // (op selector, time operand). Times deliberately cluster in a
        // small range to force duplicate timestamps, with occasional huge
        // jumps so pushes land in every tier (ring / wheel / overflow) and
        // pops interleave with pushes — including pushes at or behind the
        // last popped time, which the overflow tier must absorb.
        ops in prop::collection::vec(
            (0u8..8, prop_oneof![
                0u64..50,
                0u64..50,
                0u64..50,
                0u64..20_000,
                0u64..20_000,
                0u64..200_000_000,
            ]),
            0..400,
        ),
    ) {
        // Oracle: the pre-rewrite scheduler — a plain (time, seq) min-heap.
        let mut oracle: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64)>> =
            std::collections::BinaryHeap::new();
        let mut oracle_seq = 0u64;
        let mut oracle_cur = 0u64;

        let mut q = EventQueue::new();
        let mut tag = 0u32;
        for &(op, t) in &ops {
            if op < 6 {
                // Bias pushes toward the last popped time (op 4/5) to
                // exercise the same-cycle ring against heap-held ties.
                let time = if op >= 4 { oracle_cur.saturating_add(t % 3) } else { t };
                q.push(time, tag);
                oracle.push(std::cmp::Reverse((time, oracle_seq)));
                oracle_seq += 1;
                tag += 1;
            } else {
                let expected = oracle.pop().map(|std::cmp::Reverse((time, seq))| {
                    oracle_cur = oracle_cur.max(time);
                    (time, seq)
                });
                let got = q.pop();
                prop_assert_eq!(got.map(|(time, _)| time), expected.map(|(time, _)| time));
                // seq == tag by construction, so payload identity pins the
                // full (time, seq) order, not just the timestamps.
                prop_assert_eq!(
                    got.map(|(_, x)| u64::from(x)),
                    expected.map(|(_, seq)| seq)
                );
                prop_assert_eq!(q.peek_time(), oracle.peek().map(|&std::cmp::Reverse((time, _))| time));
            }
        }
        // Drain both: every remaining event must agree too.
        while let Some(std::cmp::Reverse((time, seq))) = oracle.pop() {
            let got = q.pop();
            prop_assert_eq!(got.map(|(x, _)| x), Some(time));
            prop_assert_eq!(got.map(|(_, x)| u64::from(x)), Some(seq));
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert!(q.is_empty());
    }

    #[test]
    fn cache_repeat_access_within_line_always_hits(
        base in 0u64..1_000_000,
        offsets in prop::collection::vec(0u64..128, 1..20),
    ) {
        let mut c = DataCache::new(CacheGeometry {
            capacity_bytes: 4096,
            ways: 4,
            line_shift: 7,
            hit_latency: 4,
        });
        let line_base = base & !127;
        c.access(VirtAddr::new(line_base));
        for &off in &offsets {
            prop_assert!(c.access(VirtAddr::new(line_base + off)));
        }
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(
        addrs in prop::collection::vec(0u64..100_000, 1..500),
    ) {
        let mut c = DataCache::new(CacheGeometry {
            capacity_bytes: 2048,
            ways: 2,
            line_shift: 7,
            hit_latency: 4,
        });
        for &a in &addrs {
            c.access(VirtAddr::new(a));
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
    }

    #[test]
    fn working_set_smaller_than_cache_converges_to_hits(
        lines in prop::collection::vec(0u64..4, 1..10),
    ) {
        // 4 distinct lines in a 2 KB (16-line) cache: a second pass over the
        // same addresses must hit every time.
        let mut c = DataCache::new(CacheGeometry {
            capacity_bytes: 2048,
            ways: 16,
            line_shift: 7,
            hit_latency: 4,
        });
        for &l in &lines {
            c.access(VirtAddr::new(l * 128));
        }
        for &l in &lines {
            prop_assert!(c.access(VirtAddr::new(l * 128)));
        }
    }
}
