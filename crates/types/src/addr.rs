//! Address-space newtypes: virtual addresses, pages, frames, and regions.
//!
//! The simulator works at three granularities:
//!
//! * byte-granular [`VirtAddr`]s issued by warps,
//! * page-granular [`PageId`]s (64 KB by default) at which demand paging,
//!   migration, and eviction operate, and
//! * region-granular [`RegionId`]s (2 MB by default) at which the tree-based
//!   prefetcher reasons, mirroring the NVIDIA UVM driver's root chunks.

use std::fmt;

/// A byte-granular virtual address in the unified CPU/GPU address space.
///
/// # Examples
///
/// ```
/// use batmem_types::addr::VirtAddr;
///
/// let a = VirtAddr::new(0x12345);
/// assert_eq!(a.raw(), 0x12345);
/// assert_eq!(a.page(16).index(), 0x1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the page this address falls in, for a page of `1 << page_shift` bytes.
    pub const fn page(self, page_shift: u32) -> PageId {
        PageId(self.0 >> page_shift)
    }

    /// Returns the prefetch region this address falls in, for a region of
    /// `1 << region_shift` bytes.
    pub const fn region(self, region_shift: u32) -> RegionId {
        RegionId(self.0 >> region_shift)
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// Returns the cache-line index of this address for lines of
    /// `1 << line_shift` bytes.
    pub const fn line(self, line_shift: u32) -> u64 {
        self.0 >> line_shift
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// A virtual page number (the unit of demand paging and migration).
///
/// A `PageId` is a virtual address shifted right by the page shift; two
/// addresses on the same page map to the same `PageId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a raw page index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of this page.
    pub const fn base_addr(self, page_shift: u32) -> VirtAddr {
        VirtAddr(self.0 << page_shift)
    }

    /// Returns the prefetch region containing this page.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `region_shift < page_shift`.
    pub fn region(self, page_shift: u32, region_shift: u32) -> RegionId {
        debug_assert!(region_shift >= page_shift);
        RegionId(self.0 >> (region_shift - page_shift))
    }

    /// Returns the page `n` positions after this one.
    #[must_use]
    pub const fn step(self, n: u64) -> Self {
        Self(self.0 + n)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{}", self.0)
    }
}

/// A prefetch region (2 MB by default), mirroring UVM driver root chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(u64);

impl RegionId {
    /// Creates a region id from a raw region index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw region index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the first page of this region.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `region_shift < page_shift`.
    pub fn first_page(self, page_shift: u32, region_shift: u32) -> PageId {
        debug_assert!(region_shift >= page_shift);
        PageId(self.0 << (region_shift - page_shift))
    }

    /// Returns the number of pages a region spans.
    pub const fn pages_per_region(page_shift: u32, region_shift: u32) -> u64 {
        1 << (region_shift - page_shift)
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region:{}", self.0)
    }
}

/// A physical frame number in GPU device memory.
///
/// Frames are what the physical memory manager allocates; a resident
/// [`PageId`] maps to exactly one `FrameId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(u32);

impl FrameId {
    /// Creates a frame id from a raw frame index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the raw frame index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_of_address_uses_shift() {
        let a = VirtAddr::new(3 * 65536 + 17);
        assert_eq!(a.page(16), PageId::new(3));
        assert_eq!(a.page(12), PageId::new(3 * 16));
    }

    #[test]
    fn page_base_addr_round_trips() {
        let p = PageId::new(42);
        assert_eq!(p.base_addr(16).page(16), p);
    }

    #[test]
    fn region_of_page_matches_region_of_address() {
        let a = VirtAddr::new(5 * (1 << 21) + 1234);
        assert_eq!(a.region(21), a.page(16).region(16, 21));
    }

    #[test]
    fn pages_per_region_default_geometry() {
        // 2 MB region / 64 KB page = 32 pages.
        assert_eq!(RegionId::pages_per_region(16, 21), 32);
    }

    #[test]
    fn first_page_of_region() {
        let r = RegionId::new(2);
        assert_eq!(r.first_page(16, 21), PageId::new(64));
    }

    #[test]
    fn addr_offset_and_line() {
        let a = VirtAddr::new(0x100);
        assert_eq!(a.offset(0x28).raw(), 0x128);
        assert_eq!(a.line(7), 2); // 128-byte lines
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(format!("{}", VirtAddr::new(16)), "va:0x10");
        assert_eq!(format!("{}", PageId::new(7)), "page:7");
        assert_eq!(format!("{}", RegionId::new(7)), "region:7");
        assert_eq!(format!("{}", FrameId::new(7)), "frame:7");
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(VirtAddr::new(1) < VirtAddr::new(2));
        assert!(PageId::new(1) < PageId::new(2));
    }
}
