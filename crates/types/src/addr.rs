//! Address-space newtypes: virtual addresses, pages, frames, and regions.
//!
//! The simulator works at four granularities, all derived from one
//! validated [`PageGeometry`]:
//!
//! * byte-granular [`VirtAddr`]s issued by warps,
//! * base-page-granular [`PageId`]s (64 KB by default) at which demand
//!   paging, migration, and eviction operate,
//! * large-page groups (aligned runs of base pages, 2 MB by default) that
//!   the coalescing machinery can promote to a single large-page mapping,
//!   and
//! * region-granular [`RegionId`]s (2 MB by default) at which the
//!   tree-based prefetcher and the root-chunk evictor reason, mirroring
//!   the NVIDIA UVM driver's root chunks.
//!
//! Every conversion between these granularities goes through a
//! [`PageGeometry`]; the id newtypes themselves carry no shift arithmetic,
//! so a call site cannot mix page sizes by passing the wrong raw shift.

use crate::error::SimError;
use std::fmt;

/// The validated page-size geometry of a simulated address space.
///
/// Three shifts, constructed together so that inverted or degenerate
/// orderings are unrepresentable:
///
/// * `base_shift` — the base page (`1 << base_shift` bytes), the unit of
///   demand paging and migration;
/// * `large_shift` — the large page, the unit the coalescing machinery
///   promotes to a single TLB entry (`base_shift ..= region_shift`);
/// * `region_shift` — the prefetch/root-chunk region
///   (`large_shift ..= 40`).
///
/// The default is the paper's Table 1 point: 64 KB base pages inside 2 MB
/// regions, with large pages coinciding with regions.
///
/// # Examples
///
/// ```
/// use batmem_types::addr::{PageGeometry, VirtAddr};
///
/// let g = PageGeometry::default(); // 64 KB / 2 MB / 2 MB
/// let a = VirtAddr::new(0x12345);
/// assert_eq!(g.page_of(a).index(), 0x1);
/// assert_eq!(g.pages_per_region(), 32);
/// assert!(PageGeometry::new(21, 16, 40).is_err()); // inverted ordering
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageGeometry {
    base_shift: u32,
    large_shift: u32,
    region_shift: u32,
}

impl Default for PageGeometry {
    /// The paper's Table 1 geometry: 64 KB pages, 2 MB large pages and
    /// regions.
    fn default() -> Self {
        Self { base_shift: 16, large_shift: 21, region_shift: 21 }
    }
}

impl PageGeometry {
    /// Builds a geometry from its three shifts, rejecting out-of-range and
    /// inverted/degenerate orderings with a typed
    /// [`SimError::InvalidConfig`].
    ///
    /// Constraints: `base_shift` in `10..=30` (1 KB to 1 GB base pages),
    /// `base_shift <= large_shift <= region_shift <= 40`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending shift.
    pub fn new(base_shift: u32, large_shift: u32, region_shift: u32) -> Result<Self, SimError> {
        if !(10..=30).contains(&base_shift) {
            return Err(SimError::invalid_config(
                "uvm.geometry.base_shift",
                format!("must be in 10..=30 (1 KB to 1 GB pages), got {base_shift}"),
            ));
        }
        if large_shift < base_shift || large_shift > 40 {
            return Err(SimError::invalid_config(
                "uvm.geometry.large_shift",
                format!("must be in base_shift({base_shift})..=40, got {large_shift}"),
            ));
        }
        if region_shift < large_shift || region_shift > 40 {
            return Err(SimError::invalid_config(
                "uvm.geometry.region_shift",
                format!("must be in large_shift({large_shift})..=40, got {region_shift}"),
            ));
        }
        Ok(Self { base_shift, large_shift, region_shift })
    }

    /// Builds a two-level geometry where large pages coincide with regions
    /// (the common configuration, and the paper's).
    ///
    /// # Errors
    ///
    /// Same constraints as [`PageGeometry::new`].
    pub fn base_region(base_shift: u32, region_shift: u32) -> Result<Self, SimError> {
        Self::new(base_shift, region_shift, region_shift)
    }

    /// The base-page shift (`1 << base_shift` bytes per page).
    pub const fn base_shift(&self) -> u32 {
        self.base_shift
    }

    /// The large-page shift (`1 << large_shift` bytes per large page).
    pub const fn large_shift(&self) -> u32 {
        self.large_shift
    }

    /// The region shift (`1 << region_shift` bytes per region).
    pub const fn region_shift(&self) -> u32 {
        self.region_shift
    }

    /// Bytes per base page.
    pub const fn page_bytes(&self) -> u64 {
        1 << self.base_shift
    }

    /// Bytes per large page.
    pub const fn large_bytes(&self) -> u64 {
        1 << self.large_shift
    }

    /// Bytes per region.
    pub const fn region_bytes(&self) -> u64 {
        1 << self.region_shift
    }

    /// Base pages per large page (≥ 1).
    pub const fn pages_per_large(&self) -> u64 {
        1 << (self.large_shift - self.base_shift)
    }

    /// Base pages per region (≥ 1).
    pub const fn pages_per_region(&self) -> u64 {
        1 << (self.region_shift - self.base_shift)
    }

    /// Large pages per region (≥ 1).
    pub const fn larges_per_region(&self) -> u64 {
        1 << (self.region_shift - self.large_shift)
    }

    /// The base page `addr` falls in.
    pub const fn page_of(&self, addr: VirtAddr) -> PageId {
        PageId(addr.0 >> self.base_shift)
    }

    /// The region `addr` falls in.
    pub const fn region_of(&self, addr: VirtAddr) -> RegionId {
        RegionId(addr.0 >> self.region_shift)
    }

    /// The region containing `page`.
    pub const fn region_of_page(&self, page: PageId) -> RegionId {
        RegionId(page.0 >> (self.region_shift - self.base_shift))
    }

    /// The large-page group containing `page`.
    ///
    /// With the default geometry (large pages = regions) this coincides
    /// with [`region_of_page`](Self::region_of_page); the returned
    /// [`RegionId`] then indexes large-page-sized groups.
    pub const fn large_of_page(&self, page: PageId) -> RegionId {
        RegionId(page.0 >> (self.large_shift - self.base_shift))
    }

    /// The first byte address of `page`.
    pub const fn page_base(&self, page: PageId) -> VirtAddr {
        VirtAddr(page.0 << self.base_shift)
    }

    /// The first base page of `region`.
    pub const fn first_page(&self, region: RegionId) -> PageId {
        PageId(region.0 << (self.region_shift - self.base_shift))
    }

    /// The first base page of large-page group `group`.
    pub const fn first_page_of_large(&self, group: RegionId) -> PageId {
        PageId(group.0 << (self.large_shift - self.base_shift))
    }
}

impl fmt::Display for PageGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "geom:{}/{}/{}", self.base_shift, self.large_shift, self.region_shift)
    }
}

/// A byte-granular virtual address in the unified CPU/GPU address space.
///
/// # Examples
///
/// ```
/// use batmem_types::addr::{PageGeometry, VirtAddr};
///
/// let a = VirtAddr::new(0x12345);
/// assert_eq!(a.raw(), 0x12345);
/// assert_eq!(PageGeometry::default().page_of(a).index(), 0x1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }

    /// Returns the cache-line index of this address for lines of
    /// `1 << line_shift` bytes. (Cache lines are a memory-hierarchy
    /// concern, not part of the page geometry.)
    pub const fn line(self, line_shift: u32) -> u64 {
        self.0 >> line_shift
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        Self(raw)
    }
}

/// A virtual page number (the unit of demand paging and migration).
///
/// A `PageId` is a virtual address shifted right by the geometry's base
/// shift; two addresses on the same page map to the same `PageId`. All
/// conversions to and from other granularities go through a
/// [`PageGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a raw page index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw page index.
    pub const fn index(self) -> u64 {
        self.0
    }

}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{}", self.0)
    }
}

/// A region (2 MB by default), mirroring UVM driver root chunks.
///
/// Also used to index large-page groups (see
/// [`PageGeometry::large_of_page`]); with the default geometry the two
/// granularities coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(u64);

impl RegionId {
    /// Creates a region id from a raw region index.
    pub const fn new(index: u64) -> Self {
        Self(index)
    }

    /// Returns the raw region index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region:{}", self.0)
    }
}

/// A physical frame number in GPU device memory.
///
/// Frames are what the physical memory manager allocates; a resident
/// [`PageId`] maps to exactly one `FrameId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(u32);

impl FrameId {
    /// Creates a frame id from a raw frame index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the raw frame index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(base: u32, region: u32) -> PageGeometry {
        PageGeometry::base_region(base, region).unwrap()
    }

    #[test]
    fn page_of_address_uses_geometry() {
        let a = VirtAddr::new(3 * 65536 + 17);
        assert_eq!(geom(16, 21).page_of(a), PageId::new(3));
        assert_eq!(geom(12, 21).page_of(a), PageId::new(3 * 16));
    }

    #[test]
    fn page_base_addr_round_trips() {
        let g = PageGeometry::default();
        let p = PageId::new(42);
        assert_eq!(g.page_of(g.page_base(p)), p);
    }

    #[test]
    fn region_of_page_matches_region_of_address() {
        let g = PageGeometry::default();
        let a = VirtAddr::new(5 * (1 << 21) + 1234);
        assert_eq!(g.region_of(a), g.region_of_page(g.page_of(a)));
    }

    #[test]
    fn pages_per_region_default_geometry() {
        // 2 MB region / 64 KB page = 32 pages.
        let g = PageGeometry::default();
        assert_eq!(g.pages_per_region(), 32);
        assert_eq!(g.pages_per_large(), 32);
        assert_eq!(g.larges_per_region(), 1);
        assert_eq!(g.page_bytes(), 64 * 1024);
        assert_eq!(g.large_bytes(), 2 * 1024 * 1024);
        assert_eq!(g.region_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn first_page_of_region() {
        let g = PageGeometry::default();
        assert_eq!(g.first_page(RegionId::new(2)), PageId::new(64));
        assert_eq!(g.first_page_of_large(RegionId::new(2)), PageId::new(64));
    }

    #[test]
    fn three_level_geometry_splits_large_and_region() {
        // 4 KB base, 64 KB large, 2 MB region.
        let g = PageGeometry::new(12, 16, 21).unwrap();
        assert_eq!(g.pages_per_large(), 16);
        assert_eq!(g.pages_per_region(), 512);
        assert_eq!(g.larges_per_region(), 32);
        let p = PageId::new(17);
        assert_eq!(g.large_of_page(p), RegionId::new(1));
        assert_eq!(g.region_of_page(p), RegionId::new(0));
        assert_eq!(g.first_page_of_large(RegionId::new(1)), PageId::new(16));
    }

    #[test]
    fn invalid_geometries_are_typed_config_errors() {
        let field = |r: Result<PageGeometry, SimError>| match r.unwrap_err() {
            SimError::InvalidConfig { field, .. } => field,
            other => panic!("expected InvalidConfig, got {other}"),
        };
        // Out-of-range base shift.
        assert_eq!(field(PageGeometry::new(5, 21, 21)), "uvm.geometry.base_shift");
        assert_eq!(field(PageGeometry::new(31, 31, 31)), "uvm.geometry.base_shift");
        // Inverted orderings.
        assert_eq!(field(PageGeometry::new(21, 16, 21)), "uvm.geometry.large_shift");
        assert_eq!(field(PageGeometry::new(16, 21, 20)), "uvm.geometry.region_shift");
        assert_eq!(field(PageGeometry::base_region(21, 16)), "uvm.geometry.large_shift");
        // Over-wide region.
        assert_eq!(field(PageGeometry::new(16, 21, 41)), "uvm.geometry.region_shift");
        assert_eq!(field(PageGeometry::new(16, 41, 41)), "uvm.geometry.large_shift");
    }

    #[test]
    fn degenerate_single_level_geometry_is_allowed() {
        // base == large == region: one page per region, never promotable
        // beyond itself — valid, just pointless.
        let g = PageGeometry::new(16, 16, 16).unwrap();
        assert_eq!(g.pages_per_region(), 1);
        assert_eq!(g.pages_per_large(), 1);
    }

    #[test]
    fn addr_offset_and_line() {
        let a = VirtAddr::new(0x100);
        assert_eq!(a.offset(0x28).raw(), 0x128);
        assert_eq!(a.line(7), 2); // 128-byte lines
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert_eq!(format!("{}", VirtAddr::new(16)), "va:0x10");
        assert_eq!(format!("{}", PageId::new(7)), "page:7");
        assert_eq!(format!("{}", RegionId::new(7)), "region:7");
        assert_eq!(format!("{}", FrameId::new(7)), "frame:7");
        assert_eq!(format!("{}", PageGeometry::default()), "geom:16/21/21");
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(VirtAddr::new(1) < VirtAddr::new(2));
        assert!(PageId::new(1) < PageId::new(2));
    }
}
