//! Simulated-system configuration.
//!
//! [`SimConfig::default`] reproduces Table 1 of the paper:
//!
//! | Component | Value |
//! |---|---|
//! | Core | 16 SMs, 1 GHz, 1024 threads/SM, 256 KB register files per SM |
//! | Private L1 cache | 16 KB, 4-way, LRU |
//! | Private L1 TLB | 64 entries per core, fully associative, LRU |
//! | Shared L2 cache | 2 MB total, 16-way, LRU |
//! | Shared L2 TLB | 1024 entries total, 32-way, LRU |
//! | Memory | 200-cycle latency |
//! | Fault buffer | 1024 entries |
//! | Fault handling | 64 KB pages, 20 µs runtime fault handling, 15.75 GB/s PCIe |

use crate::addr::PageGeometry;
use crate::error::{AuditLevel, SimError};
use crate::policy::PolicyConfig;
use crate::time::Cycle;

/// GPU core (SM) configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u16,
    /// Maximum concurrent threads per SM (the scheduling limit).
    pub threads_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// 32-bit registers per SM (256 KB register file = 65 536 registers).
    pub regs_per_sm: u32,
    /// Hardware cap on thread blocks resident per SM.
    pub max_blocks_per_sm: u32,
    /// Per-block bookkeeping state (warp ids, SIMT stack, program counters)
    /// that must be saved and restored on a block context switch, in bytes.
    pub block_state_bytes: u32,
    /// Global-memory bandwidth available for context save/restore traffic,
    /// in bytes per cycle.
    pub ctx_switch_bytes_per_cycle: u32,
    /// Fixed pipeline-drain overhead added to every context switch.
    pub ctx_switch_fixed_cycles: Cycle,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_sms: 16,
            threads_per_sm: 1024,
            warp_size: 32,
            regs_per_sm: 65_536,
            max_blocks_per_sm: 32,
            block_state_bytes: 5 * 1024,
            ctx_switch_bytes_per_cycle: 256,
            ctx_switch_fixed_cycles: 50,
        }
    }
}

impl GpuConfig {
    /// Rejects degenerate core configurations that would make the engine
    /// divide by zero or schedule nothing at all.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.num_sms == 0 {
            return Err(SimError::invalid_config("gpu.num_sms", "must be nonzero"));
        }
        if self.warp_size == 0 {
            return Err(SimError::invalid_config("gpu.warp_size", "must be nonzero"));
        }
        if self.threads_per_sm == 0 || !self.threads_per_sm.is_multiple_of(self.warp_size) {
            return Err(SimError::invalid_config(
                "gpu.threads_per_sm",
                format!(
                    "must be a nonzero multiple of the warp size ({}), got {}",
                    self.warp_size, self.threads_per_sm
                ),
            ));
        }
        if self.regs_per_sm == 0 {
            return Err(SimError::invalid_config("gpu.regs_per_sm", "must be nonzero"));
        }
        if self.max_blocks_per_sm == 0 {
            return Err(SimError::invalid_config("gpu.max_blocks_per_sm", "must be nonzero"));
        }
        if self.ctx_switch_bytes_per_cycle == 0 {
            return Err(SimError::invalid_config(
                "gpu.ctx_switch_bytes_per_cycle",
                "must be nonzero (context-switch cost divides by it)",
            ));
        }
        Ok(())
    }

    /// The register-file size in bytes (registers are 32-bit).
    pub fn reg_file_bytes(&self) -> u32 {
        self.regs_per_sm * 4
    }

    /// Cycles to save **and** restore one block's context (registers plus
    /// block state) through global memory, per §6.5 of the paper.
    pub fn ctx_switch_cycles(&self, threads_per_block: u32, regs_per_thread: u32) -> Cycle {
        let reg_bytes = u64::from(threads_per_block) * u64::from(regs_per_thread) * 4;
        let total = 2 * (reg_bytes + u64::from(self.block_state_bytes));
        self.ctx_switch_fixed_cycles + total.div_ceil(u64::from(self.ctx_switch_bytes_per_cycle))
    }
}

/// A set-associative cache shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Log2 of the line size in bytes.
    pub line_shift: u32,
    /// Latency of a hit in this cache.
    pub hit_latency: Cycle,
}

impl CacheGeometry {
    /// Rejects shapes that do not divide into at least one whole set.
    ///
    /// `field` names the config location (e.g. `mem.l1d`) in the error.
    pub fn validate(&self, field: &'static str) -> Result<(), SimError> {
        if self.ways == 0 {
            return Err(SimError::invalid_config(field, "associativity must be nonzero"));
        }
        if self.line_shift >= 31 {
            return Err(SimError::invalid_config(
                field,
                format!("line_shift {} overflows the line size", self.line_shift),
            ));
        }
        let row = u64::from(self.ways) << self.line_shift;
        let cap = u64::from(self.capacity_bytes);
        if cap == 0 || cap % row != 0 {
            return Err(SimError::invalid_config(
                field,
                format!(
                    "capacity {cap} B must be a nonzero multiple of ways x line ({} x {} B)",
                    self.ways,
                    1u64 << self.line_shift
                ),
            ));
        }
        Ok(())
    }

    /// Number of sets (capacity / (ways × line size)).
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly into at least one set.
    pub fn num_sets(&self) -> u32 {
        let line = 1u32 << self.line_shift;
        let sets = self.capacity_bytes / (self.ways * line);
        assert!(sets > 0, "cache geometry yields zero sets: {self:?}");
        sets
    }
}

/// Memory-hierarchy (data path) configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Per-SM private L1 data cache.
    pub l1d: CacheGeometry,
    /// Shared L2 data cache.
    pub l2d: CacheGeometry,
    /// DRAM access latency (Table 1: 200 cycles).
    pub dram_latency: Cycle,
    /// L2 banks (address-interleaved groups of cache sets, as real GPU L2s
    /// are sliced per memory partition). Bank `line mod l2_banks` owns a
    /// stripe of both cache levels, which is what lets the engine replay
    /// different banks' accesses on different threads without changing any
    /// per-set LRU order. Must be a power of two that divides both set
    /// counts; when > 1 the two levels must share a line size so a line's
    /// bank is the same at L1 and L2.
    pub l2_banks: u32,
    /// Smallest deferred-transaction batch the engine will fan out to bank
    /// workers; smaller batches replay inline on the coordinator (the
    /// outcome is bit-identical either way, so this is purely a dispatch
    /// overhead threshold).
    pub bank_dispatch_min: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            l1d: CacheGeometry {
                capacity_bytes: 16 * 1024,
                ways: 4,
                line_shift: 7,
                hit_latency: 4,
            },
            l2d: CacheGeometry {
                capacity_bytes: 2 * 1024 * 1024,
                ways: 16,
                line_shift: 7,
                hit_latency: 60,
            },
            dram_latency: 200,
            l2_banks: 8,
            bank_dispatch_min: 256,
        }
    }
}

/// TLB and page-table-walker configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in each per-SM L1 TLB (fully associative).
    pub l1_entries: u32,
    /// Total entries in the shared L2 TLB.
    pub l2_entries: u32,
    /// Associativity of the shared L2 TLB.
    pub l2_ways: u32,
    /// L1 TLB hit latency.
    pub l1_hit_latency: Cycle,
    /// L2 TLB lookup latency (added on an L1 miss).
    pub l2_hit_latency: Cycle,
    /// Concurrent walks supported by the shared highly-threaded walker.
    pub walker_threads: u32,
    /// Latency of one page-table walk when a walker thread is free,
    /// assuming upper levels hit the page-walk cache.
    pub walk_latency: Cycle,
    /// Extra latency per page-table level on a page-walk-cache miss.
    pub pwc_miss_penalty: Cycle,
    /// Entries in the page-walk cache (upper-level PTE cache).
    pub pwc_entries: u32,
}

impl MemConfig {
    /// Validates both cache shapes and the bank partition.
    pub fn validate(&self) -> Result<(), SimError> {
        self.l1d.validate("mem.l1d")?;
        self.l2d.validate("mem.l2d")?;
        if self.l2_banks == 0 || !self.l2_banks.is_power_of_two() {
            return Err(SimError::invalid_config(
                "mem.l2_banks",
                format!("must be a nonzero power of two, got {}", self.l2_banks),
            ));
        }
        if self.l2_banks > 1 {
            // Bank-parallel replay is only order-preserving when the bank
            // of a line is the same at both cache levels: the bank id must
            // be derivable from the line id alone, which requires a shared
            // line size and a bank count dividing both set counts.
            if self.l1d.line_shift != self.l2d.line_shift {
                return Err(SimError::invalid_config(
                    "mem.l2_banks",
                    format!(
                        "banked data path needs equal L1/L2 line sizes, got shifts {} and {}",
                        self.l1d.line_shift, self.l2d.line_shift
                    ),
                ));
            }
            for (field, sets) in [("l1d", self.l1d.num_sets()), ("l2d", self.l2d.num_sets())] {
                if !sets.is_multiple_of(self.l2_banks) {
                    return Err(SimError::invalid_config(
                        "mem.l2_banks",
                        format!(
                            "{} banks must divide every set count, but {field} has {sets} sets",
                            self.l2_banks
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            l1_entries: 64,
            l2_entries: 1024,
            l2_ways: 32,
            l1_hit_latency: 1,
            l2_hit_latency: 10,
            walker_threads: 64,
            walk_latency: 200,
            pwc_miss_penalty: 100,
            pwc_entries: 64,
        }
    }
}

impl TlbConfig {
    /// Rejects TLB geometries the translation model cannot index.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.l1_entries == 0 {
            return Err(SimError::invalid_config("tlb.l1_entries", "must be nonzero"));
        }
        if self.l2_ways == 0 {
            return Err(SimError::invalid_config("tlb.l2_ways", "must be nonzero"));
        }
        if self.l2_entries == 0 || !self.l2_entries.is_multiple_of(self.l2_ways) {
            return Err(SimError::invalid_config(
                "tlb.l2_entries",
                format!(
                    "must be a nonzero multiple of the associativity ({}), got {}",
                    self.l2_ways, self.l2_entries
                ),
            ));
        }
        if self.walker_threads == 0 {
            return Err(SimError::invalid_config("tlb.walker_threads", "must be nonzero"));
        }
        Ok(())
    }
}

/// UVM runtime (demand paging) configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UvmConfig {
    /// Page-size geometry: base page, large page, and prefetch-region /
    /// root-chunk sizes. Validated at construction
    /// ([`PageGeometry::new`]), so an inverted or degenerate shift
    /// ordering is unrepresentable here. Defaults to 64 KB pages in 2 MB
    /// regions (Table 1).
    pub geometry: PageGeometry,
    /// Capacity of the GPU replayable fault buffer.
    pub fault_buffer_entries: u32,
    /// Latency between a fault interrupt being raised and the runtime's
    /// top-half ISR draining the fault buffer. Faults raised within this
    /// window join the same batch.
    pub isr_latency: Cycle,
    /// Fixed portion of the GPU runtime fault handling time, i.e. the time
    /// between batch start and the first page transfer (Table 1: 20 µs).
    pub fault_handling_base: Cycle,
    /// Per-fault increment of the runtime fault handling time (sorting,
    /// CPU page-table walks, migration scheduling scale with batch size).
    pub fault_handling_per_fault: Cycle,
    /// Host-to-device PCIe bandwidth in bytes per second.
    pub pcie_h2d_bytes_per_sec: u64,
    /// Device-to-host PCIe bandwidth in bytes per second. The paper notes
    /// (§4.2) that device-to-host transfers are faster than host-to-device,
    /// which is what keeps unobtrusive eviction fully off the critical path.
    pub pcie_d2h_bytes_per_sec: u64,
    /// GPU device-memory capacity in pages; `None` means unlimited memory
    /// (no evictions ever occur).
    pub gpu_mem_pages: Option<u64>,
}

impl Default for UvmConfig {
    fn default() -> Self {
        Self {
            geometry: PageGeometry::default(),
            fault_buffer_entries: 1024,
            isr_latency: 1_000,
            fault_handling_base: crate::time::us(20),
            fault_handling_per_fault: 30,
            pcie_h2d_bytes_per_sec: 15_750_000_000,
            pcie_d2h_bytes_per_sec: 17_300_000_000,
            gpu_mem_pages: None,
        }
    }
}

impl UvmConfig {
    /// Rejects buffer and link parameters the migration model cannot
    /// operate with. (Page/region shifts need no re-check here: an
    /// invalid [`PageGeometry`] cannot be constructed.)
    pub fn validate(&self) -> Result<(), SimError> {
        if self.fault_buffer_entries == 0 {
            return Err(SimError::invalid_config("uvm.fault_buffer_entries", "must be nonzero"));
        }
        if self.pcie_h2d_bytes_per_sec == 0 {
            return Err(SimError::invalid_config("uvm.pcie_h2d_bytes_per_sec", "must be nonzero"));
        }
        if self.pcie_d2h_bytes_per_sec == 0 {
            return Err(SimError::invalid_config("uvm.pcie_d2h_bytes_per_sec", "must be nonzero"));
        }
        if self.gpu_mem_pages == Some(0) {
            return Err(SimError::invalid_config(
                "uvm.gpu_mem_pages",
                "zero-page device memory cannot hold any batch (use None for unlimited)",
            ));
        }
        Ok(())
    }

    /// Base-page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.geometry.page_bytes()
    }

    /// Base pages per prefetch region.
    pub fn pages_per_region(&self) -> u64 {
        self.geometry.pages_per_region()
    }
}

/// The complete simulated-system configuration.
///
/// # Examples
///
/// ```
/// use batmem_types::config::SimConfig;
///
/// let mut config = SimConfig::default();
/// // Restrict GPU memory to 100 pages (6.25 MB at 64 KB/page).
/// config.uvm.gpu_mem_pages = Some(100);
/// assert_eq!(config.uvm.page_bytes(), 65536);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// GPU core configuration.
    pub gpu: GpuConfig,
    /// Data-cache and DRAM configuration.
    pub mem: MemConfig,
    /// TLB and page-table-walker configuration.
    pub tlb: TlbConfig,
    /// UVM runtime configuration.
    pub uvm: UvmConfig,
    /// Policy selections (prefetching, eviction, oversubscription, …).
    pub policy: PolicyConfig,
    /// Invariant-audit level applied while the simulation runs.
    pub audit: AuditLevel,
    /// Forward-progress watchdog: the run fails with
    /// [`SimError::Livelock`] after this many consecutive events with no
    /// forward progress (no warp op consumed, no page installed, no block
    /// retired). `0` disables the watchdog.
    pub watchdog_event_budget: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            gpu: GpuConfig::default(),
            mem: MemConfig::default(),
            tlb: TlbConfig::default(),
            uvm: UvmConfig::default(),
            policy: PolicyConfig::default(),
            audit: AuditLevel::Off,
            watchdog_event_budget: 100_000,
        }
    }
}

impl SimConfig {
    /// Validates every sub-configuration, then the policy knobs.
    ///
    /// Called by the simulation builder before a run starts, so a
    /// degenerate configuration fails fast with a
    /// [`SimError::InvalidConfig`] naming the offending field instead of
    /// dividing by zero (or silently simulating nonsense) mid-run.
    pub fn validate(&self) -> Result<(), SimError> {
        self.gpu.validate()?;
        self.mem.validate()?;
        self.tlb.validate()?;
        self.uvm.validate()?;
        self.policy.validate()
    }

    /// Renders the configuration as the rows of Table 1 in the paper.
    pub fn table1(&self) -> String {
        let g = &self.gpu;
        let m = &self.mem;
        let t = &self.tlb;
        let u = &self.uvm;
        format!(
            "GPU Configuration\n\
             Core               {} SMs, 1GHz, {} threads per SM, {}KB register files per SM\n\
             Private L1 Cache   {}KB, {}-way, LRU\n\
             Private L1 TLB     {} entries per core, fully associative, LRU\n\
             Memory Configuration\n\
             Shared L2 Cache    {}MB total, {}-way, LRU\n\
             Shared L2 TLB      {} entries total, {}-way associative, LRU\n\
             Memory             {} cycle latency\n\
             Unified Memory Configuration\n\
             Fault Buffer       {} entries\n\
             Fault Handling     {}KB page size, {}us GPU runtime fault handling time, {:.2}GB/s PCIe bandwidth",
            g.num_sms,
            g.threads_per_sm,
            g.reg_file_bytes() / 1024,
            m.l1d.capacity_bytes / 1024,
            m.l1d.ways,
            t.l1_entries,
            m.l2d.capacity_bytes / (1024 * 1024),
            m.l2d.ways,
            t.l2_entries,
            t.l2_ways,
            m.dram_latency,
            u.fault_buffer_entries,
            u.page_bytes() / 1024,
            u.fault_handling_base / 1000,
            u.pcie_h2d_bytes_per_sec as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.gpu.num_sms, 16);
        assert_eq!(c.gpu.threads_per_sm, 1024);
        assert_eq!(c.gpu.reg_file_bytes(), 256 * 1024);
        assert_eq!(c.mem.l1d.capacity_bytes, 16 * 1024);
        assert_eq!(c.mem.l1d.ways, 4);
        assert_eq!(c.tlb.l1_entries, 64);
        assert_eq!(c.mem.l2d.capacity_bytes, 2 * 1024 * 1024);
        assert_eq!(c.mem.l2d.ways, 16);
        assert_eq!(c.tlb.l2_entries, 1024);
        assert_eq!(c.tlb.l2_ways, 32);
        assert_eq!(c.mem.dram_latency, 200);
        assert_eq!(c.uvm.fault_buffer_entries, 1024);
        assert_eq!(c.uvm.page_bytes(), 64 * 1024);
        assert_eq!(c.uvm.fault_handling_base, 20_000);
        assert_eq!(c.uvm.pcie_h2d_bytes_per_sec, 15_750_000_000);
    }

    #[test]
    fn table1_rendering_mentions_key_rows() {
        let s = SimConfig::default().table1();
        assert!(s.contains("16 SMs"));
        assert!(s.contains("1024 entries"));
        assert!(s.contains("64KB page size"));
        assert!(s.contains("20us"));
        assert!(s.contains("15.75GB/s"));
    }

    #[test]
    fn cache_geometry_sets() {
        let c = MemConfig::default();
        // 16 KB / (4 ways * 128 B) = 32 sets.
        assert_eq!(c.l1d.num_sets(), 32);
        // 2 MB / (16 ways * 128 B) = 1024 sets.
        assert_eq!(c.l2d.num_sets(), 1024);
    }

    #[test]
    fn ctx_switch_cost_tracks_context_size() {
        let g = GpuConfig::default();
        // Footnote 5 of the paper: 2048 threads x 10 regs = 80 KB + 5 KB state.
        let small = g.ctx_switch_cycles(256, 10);
        let large = g.ctx_switch_cycles(1024, 32);
        assert!(large > small);
        // 85 KB context, saved+restored at 256 B/cycle: ~680 cycles plus fixed.
        let paper_example = g.ctx_switch_cycles(2048, 10);
        assert!(paper_example > 600 && paper_example < 1000, "{paper_example}");
    }

    #[test]
    fn pages_per_region_is_32() {
        assert_eq!(UvmConfig::default().pages_per_region(), 32);
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let c = SimConfig::default();
        assert_eq!(c, c.clone());
    }

    #[test]
    fn default_config_validates() {
        SimConfig::default().validate().unwrap();
    }

    fn rejected_field(c: &SimConfig) -> &'static str {
        match c.validate().unwrap_err() {
            SimError::InvalidConfig { field, .. } => field,
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn zero_sms_is_rejected() {
        let mut c = SimConfig::default();
        c.gpu.num_sms = 0;
        assert_eq!(rejected_field(&c), "gpu.num_sms");
    }

    #[test]
    fn threads_not_multiple_of_warp_is_rejected() {
        let mut c = SimConfig::default();
        c.gpu.threads_per_sm = 1000; // not a multiple of 32
        assert_eq!(rejected_field(&c), "gpu.threads_per_sm");
    }

    #[test]
    fn zero_ctx_switch_bandwidth_is_rejected() {
        let mut c = SimConfig::default();
        c.gpu.ctx_switch_bytes_per_cycle = 0;
        assert_eq!(rejected_field(&c), "gpu.ctx_switch_bytes_per_cycle");
    }

    #[test]
    fn cache_with_zero_sets_is_rejected() {
        let mut c = SimConfig::default();
        // 1 KB capacity with 4 ways of 512 B lines: zero whole sets.
        c.mem.l1d = CacheGeometry { capacity_bytes: 1024, ways: 4, line_shift: 9, hit_latency: 4 };
        assert_eq!(rejected_field(&c), "mem.l1d");
    }

    #[test]
    fn l2_cache_geometry_is_checked_too() {
        let mut c = SimConfig::default();
        c.mem.l2d.ways = 0;
        assert_eq!(rejected_field(&c), "mem.l2d");
    }

    #[test]
    fn default_bank_partition_is_valid() {
        let c = MemConfig::default();
        assert_eq!(c.l2_banks, 8);
        // 8 banks divide both 32 L1 sets and 1024 L2 sets.
        assert!(c.l1d.num_sets().is_multiple_of(c.l2_banks));
        assert!(c.l2d.num_sets().is_multiple_of(c.l2_banks));
        c.validate().unwrap();
    }

    #[test]
    fn bank_count_must_be_a_power_of_two() {
        let mut c = SimConfig::default();
        c.mem.l2_banks = 0;
        assert_eq!(rejected_field(&c), "mem.l2_banks");
        c.mem.l2_banks = 6;
        assert_eq!(rejected_field(&c), "mem.l2_banks");
    }

    #[test]
    fn bank_count_must_divide_both_set_counts() {
        let mut c = SimConfig::default();
        // 64 banks exceed the 32 L1 sets.
        c.mem.l2_banks = 64;
        assert_eq!(rejected_field(&c), "mem.l2_banks");
        // 32 banks divide both 32 and 1024 sets.
        c.mem.l2_banks = 32;
        c.validate().unwrap();
    }

    #[test]
    fn banked_path_requires_equal_line_sizes() {
        let mut c = SimConfig::default();
        c.mem.l1d.line_shift = 6; // 64 B L1 lines vs 128 B L2 lines
        c.mem.l1d.capacity_bytes = 16 * 1024;
        assert_eq!(rejected_field(&c), "mem.l2_banks");
        // A single bank (fully serial data path) lifts the constraint.
        c.mem.l2_banks = 1;
        c.validate().unwrap();
    }

    #[test]
    fn tlb_entries_must_divide_by_ways() {
        let mut c = SimConfig::default();
        c.tlb.l2_entries = 1000; // not a multiple of 32 ways
        assert_eq!(rejected_field(&c), "tlb.l2_entries");
    }

    #[test]
    fn bad_geometries_cannot_reach_a_config() {
        // Shift validation happens at PageGeometry construction, before a
        // SimConfig can even hold the value; inverted/degenerate orderings
        // are unrepresentable rather than caught late in validate().
        assert!(matches!(
            PageGeometry::base_region(16, 15),
            Err(SimError::InvalidConfig { field: "uvm.geometry.large_shift", .. })
        ));
        assert!(matches!(
            PageGeometry::base_region(5, 21),
            Err(SimError::InvalidConfig { field: "uvm.geometry.base_shift", .. })
        ));
        // A non-default but valid geometry drops straight in.
        let mut c = SimConfig::default();
        c.uvm.geometry = PageGeometry::base_region(12, 21).unwrap();
        c.validate().unwrap();
        assert_eq!(c.uvm.pages_per_region(), 512);
    }

    #[test]
    fn zero_capacity_memory_is_rejected() {
        let mut c = SimConfig::default();
        c.uvm.gpu_mem_pages = Some(0);
        assert_eq!(rejected_field(&c), "uvm.gpu_mem_pages");
    }

    #[test]
    fn zero_pcie_bandwidth_is_rejected() {
        let mut c = SimConfig::default();
        c.uvm.pcie_h2d_bytes_per_sec = 0;
        assert_eq!(rejected_field(&c), "uvm.pcie_h2d_bytes_per_sec");
    }

    #[test]
    fn policy_knobs_are_validated_through_sim_config() {
        let mut c = SimConfig::default();
        c.policy.prefetch = crate::policy::PrefetchPolicy::Tree { threshold_percent: 0 };
        assert_eq!(rejected_field(&c), "policy.prefetch.threshold_percent");
    }

    #[test]
    fn watchdog_and_audit_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.watchdog_event_budget, 100_000);
        assert_eq!(c.audit, AuditLevel::Off);
    }
}
