//! Dense page-indexed collections for the simulator's hot paths.
//!
//! Page IDs in this simulator are dense: the workload footprint is fixed at
//! kernel launch and pages are numbered `0..footprint_pages`, so any
//! per-page state can live in a flat table indexed by [`PageId::index`]
//! instead of a hash map. The collections here replace the
//! `HashMap`/`HashSet`/`BTreeMap` containers that used to sit on the
//! per-event paths (fault recording, batch planning, LRU maintenance,
//! page-table installs) — same observable behaviour, no hashing, no
//! rebalancing, and O(1) per-batch clears.
//!
//! * [`PageSet`] — a growable bitmap over page indices.
//! * [`PageMap`] — a growable `Vec<Option<V>>` keyed by page index.
//! * [`EpochPageSet`] / [`EpochPageMap`] — epoch-stamped variants whose
//!   `clear` is O(1) (bump the epoch) so per-batch scratch state can be
//!   reused allocation-free across thousands of batches.
//!
//! All collections grow on insert and answer `false`/`None` for any index
//! beyond what they have seen, so callers that cannot size them up front
//! (e.g. the lifetime tracker, which is built before the workload is known)
//! still work unchanged.

use crate::addr::PageId;

/// A growable set of pages backed by a bitmap.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::PageSet;
/// use batmem_types::PageId;
///
/// let mut s = PageSet::new();
/// assert!(s.insert(PageId::new(5)));
/// assert!(!s.insert(PageId::new(5)));
/// assert!(s.contains(PageId::new(5)));
/// assert!(!s.contains(PageId::new(99)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageSet {
    words: Vec<u64>,
    len: usize,
}

impl PageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set pre-sized for pages `0..pages`.
    pub fn with_capacity(pages: usize) -> Self {
        Self { words: vec![0; pages.div_ceil(64)], len: 0 }
    }

    #[inline]
    fn slot(page: PageId) -> (usize, u64) {
        let i = page.index() as usize;
        (i / 64, 1u64 << (i % 64))
    }

    /// Inserts `page`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, page: PageId) -> bool {
        let (w, bit) = Self::slot(page);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `page`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, page: PageId) -> bool {
        let (w, bit) = Self::slot(page);
        if w >= self.words.len() || self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.len -= 1;
        true
    }

    /// Whether `page` is in the set.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        let (w, bit) = Self::slot(page);
        w < self.words.len() && self.words[w] & bit != 0
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every page, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

/// A growable map from pages to values, backed by a flat `Vec<Option<V>>`.
///
/// Iteration order is ascending page index (deterministic, unlike the hash
/// maps this replaces — none of the replaced call sites depended on
/// iteration order, as the determinism suite proves).
///
/// # Examples
///
/// ```
/// use batmem_types::dense::PageMap;
/// use batmem_types::PageId;
///
/// let mut m: PageMap<u32> = PageMap::new();
/// assert_eq!(m.insert(PageId::new(3), 7), None);
/// assert_eq!(m.insert(PageId::new(3), 8), Some(7));
/// assert_eq!(m.get(PageId::new(3)), Some(&8));
/// assert_eq!(m.remove(PageId::new(3)), Some(8));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PageMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for PageMap<V> {
    fn default() -> Self {
        Self { slots: Vec::new(), len: 0 }
    }
}

impl<V> PageMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map pre-sized for pages `0..pages`.
    pub fn with_capacity(pages: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(pages, || None);
        Self { slots, len: 0 }
    }

    /// Inserts `value` for `page`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, page: PageId, value: V) -> Option<V> {
        let i = page.index() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(value);
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Returns a reference to `page`'s value, if present.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<&V> {
        self.slots.get(page.index() as usize)?.as_ref()
    }

    /// Returns a mutable reference to `page`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut V> {
        self.slots.get_mut(page.index() as usize)?.as_mut()
    }

    /// Removes and returns `page`'s value, if present.
    #[inline]
    pub fn remove(&mut self, page: PageId) -> Option<V> {
        let taken = self.slots.get_mut(page.index() as usize)?.take();
        self.len -= usize::from(taken.is_some());
        taken
    }

    /// Whether `page` has a value.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.get(page).is_some()
    }

    /// Number of pages with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates `(page, &value)` in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (PageId::new(i as u64), v)))
    }
}

/// A page set with O(1) `clear`, for per-batch scratch state.
///
/// Membership is an epoch stamp per page: `clear` bumps the current epoch,
/// invalidating every mark at once without touching the table. The table is
/// allocated once and reused across every batch of a run.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::EpochPageSet;
/// use batmem_types::PageId;
///
/// let mut s = EpochPageSet::new();
/// s.insert(PageId::new(2));
/// assert!(s.contains(PageId::new(2)));
/// s.clear();
/// assert!(!s.contains(PageId::new(2)));
/// assert_eq!(s.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct EpochPageSet {
    marks: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl Default for EpochPageSet {
    fn default() -> Self {
        Self { marks: Vec::new(), epoch: 1, len: 0 }
    }
}

impl EpochPageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `page`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, page: PageId) -> bool {
        let i = page.index() as usize;
        if i >= self.marks.len() {
            self.marks.resize(i + 1, 0);
        }
        let fresh = self.marks[i] != self.epoch;
        self.marks[i] = self.epoch;
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether `page` is in the set (this epoch).
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.marks.get(page.index() as usize) == Some(&self.epoch)
    }

    /// Number of pages inserted this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the set in O(1) by starting a new epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap (once per 2^32 - 1 clears): reset every mark.
            self.marks.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.len = 0;
    }
}

/// A page map with O(1) `clear`, for per-batch scratch state.
///
/// Same epoch scheme as [`EpochPageSet`]; values stamped in an older epoch
/// are dead and simply overwritten on the next insert.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::EpochPageMap;
/// use batmem_types::PageId;
///
/// let mut m: EpochPageMap<u64> = EpochPageMap::new();
/// m.insert(PageId::new(4), 900);
/// assert_eq!(m.get(PageId::new(4)), Some(900));
/// m.clear();
/// assert_eq!(m.get(PageId::new(4)), None);
/// ```
#[derive(Debug, Clone)]
pub struct EpochPageMap<V: Copy> {
    marks: Vec<u32>,
    values: Vec<V>,
    epoch: u32,
    len: usize,
}

impl<V: Copy + Default> Default for EpochPageMap<V> {
    fn default() -> Self {
        Self { marks: Vec::new(), values: Vec::new(), epoch: 1, len: 0 }
    }
}

impl<V: Copy + Default> EpochPageMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` for `page`, returning the previous value from this
    /// epoch if any.
    #[inline]
    pub fn insert(&mut self, page: PageId, value: V) -> Option<V> {
        let i = page.index() as usize;
        if i >= self.marks.len() {
            self.marks.resize(i + 1, 0);
            self.values.resize(i + 1, V::default());
        }
        let prev = (self.marks[i] == self.epoch).then_some(self.values[i]);
        self.marks[i] = self.epoch;
        self.values[i] = value;
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Returns `page`'s value from this epoch, if present.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<V> {
        let i = page.index() as usize;
        (self.marks.get(i) == Some(&self.epoch)).then(|| self.values[i])
    }

    /// Whether `page` has a value this epoch.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.marks.get(page.index() as usize) == Some(&self.epoch)
    }

    /// Number of pages with a value this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the map in O(1) by starting a new epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn page_set_insert_remove_contains() {
        let mut s = PageSet::new();
        assert!(s.is_empty());
        assert!(s.insert(p(0)));
        assert!(s.insert(p(63)));
        assert!(s.insert(p(64)));
        assert!(!s.insert(p(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(p(63)));
        assert!(!s.contains(p(1)));
        assert!(!s.contains(p(1_000_000))); // beyond allocation: false, no growth
        assert!(s.remove(p(63)));
        assert!(!s.remove(p(63)));
        assert!(!s.remove(p(999))); // never inserted
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(p(0)));
    }

    #[test]
    fn page_set_with_capacity_starts_empty() {
        let s = PageSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(!s.contains(p(129)));
    }

    #[test]
    fn page_map_behaves_like_a_map() {
        let mut m: PageMap<&'static str> = PageMap::new();
        assert_eq!(m.insert(p(10), "a"), None);
        assert_eq!(m.insert(p(10), "b"), Some("a"));
        assert_eq!(m.get(p(10)), Some(&"b"));
        assert_eq!(m.get(p(11)), None);
        assert!(m.contains(p(10)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(p(10)), Some("b"));
        assert_eq!(m.remove(p(10)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn page_map_iterates_in_page_order() {
        let mut m: PageMap<u32> = PageMap::with_capacity(8);
        m.insert(p(5), 50);
        m.insert(p(1), 10);
        m.insert(p(3), 30);
        let got: Vec<_> = m.iter().map(|(k, v)| (k.index(), *v)).collect();
        assert_eq!(got, vec![(1, 10), (3, 30), (5, 50)]);
        m.clear();
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn epoch_set_clear_is_logical() {
        let mut s = EpochPageSet::new();
        assert!(s.insert(p(7)));
        assert!(!s.insert(p(7)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(p(7)));
        assert!(s.insert(p(7))); // fresh again in the new epoch
    }

    #[test]
    fn epoch_set_survives_epoch_wrap() {
        let mut s = EpochPageSet::new();
        s.insert(p(3));
        s.epoch = u32::MAX - 1;
        s.marks[3] = u32::MAX - 1; // keep page 3 current
        s.clear(); // -> MAX
        assert!(!s.contains(p(3)));
        s.insert(p(2));
        s.clear(); // wrap: marks reset
        assert!(!s.contains(p(2)));
        assert!(s.insert(p(2)));
        assert!(s.contains(p(2)));
    }

    #[test]
    fn epoch_map_stores_per_epoch_values() {
        let mut m: EpochPageMap<u64> = EpochPageMap::new();
        assert_eq!(m.insert(p(1), 100), None);
        assert_eq!(m.insert(p(1), 200), Some(100));
        assert_eq!(m.get(p(1)), Some(200));
        assert_eq!(m.len(), 1);
        m.clear();
        assert_eq!(m.get(p(1)), None);
        assert!(!m.contains(p(1)));
        assert_eq!(m.insert(p(1), 300), None); // stale value not reported
        assert_eq!(m.get(p(1)), Some(300));
    }

    #[test]
    fn epoch_map_out_of_range_reads_are_none() {
        let m: EpochPageMap<u64> = EpochPageMap::new();
        assert_eq!(m.get(p(12345)), None);
        assert!(!m.contains(p(12345)));
        assert!(m.is_empty());
    }
}
