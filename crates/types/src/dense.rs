//! Dense page-indexed collections for the simulator's hot paths.
//!
//! Page IDs in this simulator are dense: the workload footprint is fixed at
//! kernel launch and pages are numbered `0..footprint_pages`, so any
//! per-page state can live in a flat table indexed by [`PageId::index`]
//! instead of a hash map. The collections here replace the
//! `HashMap`/`HashSet`/`BTreeMap` containers that used to sit on the
//! per-event paths (fault recording, batch planning, LRU maintenance,
//! page-table installs) — same observable behaviour, no hashing, no
//! rebalancing, and O(1) per-batch clears.
//!
//! * [`PageSet`] — a growable bitmap over page indices.
//! * [`PageMap`] — a growable `Vec<Option<V>>` keyed by page index.
//! * [`EpochPageSet`] / [`EpochPageMap`] — epoch-stamped variants whose
//!   `clear` is O(1) (bump the epoch) so per-batch scratch state can be
//!   reused allocation-free across thousands of batches.
//! * [`RegionSet`] / [`RegionMap`] — the same dense idea one tier up,
//!   keyed by [`RegionId`].
//! * [`TieredPageMap`] — a two-level `RegionMap<PageMap<V>>` that keeps a
//!   per-region residency count alongside page-granular state, so the
//!   multi-page-size machinery can answer "is this region fully resident?"
//!   in O(1) while everything else keeps page-level access.
//!
//! All collections grow on insert and answer `false`/`None` for any index
//! beyond what they have seen, so callers that cannot size them up front
//! (e.g. the lifetime tracker, which is built before the workload is known)
//! still work unchanged.

use crate::addr::{PageId, RegionId};

/// A growable set of pages backed by a bitmap.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::PageSet;
/// use batmem_types::PageId;
///
/// let mut s = PageSet::new();
/// assert!(s.insert(PageId::new(5)));
/// assert!(!s.insert(PageId::new(5)));
/// assert!(s.contains(PageId::new(5)));
/// assert!(!s.contains(PageId::new(99)));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageSet {
    words: Vec<u64>,
    len: usize,
}

impl PageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set pre-sized for pages `0..pages`.
    pub fn with_capacity(pages: usize) -> Self {
        Self { words: vec![0; pages.div_ceil(64)], len: 0 }
    }

    #[inline]
    fn slot(page: PageId) -> (usize, u64) {
        let i = page.index() as usize;
        (i / 64, 1u64 << (i % 64))
    }

    /// Inserts `page`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, page: PageId) -> bool {
        let (w, bit) = Self::slot(page);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `page`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, page: PageId) -> bool {
        let (w, bit) = Self::slot(page);
        if w >= self.words.len() || self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.len -= 1;
        true
    }

    /// Whether `page` is in the set.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        let (w, bit) = Self::slot(page);
        w < self.words.len() && self.words[w] & bit != 0
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every page, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }
}

/// A growable map from pages to values, backed by a flat `Vec<Option<V>>`.
///
/// Iteration order is ascending page index (deterministic, unlike the hash
/// maps this replaces — none of the replaced call sites depended on
/// iteration order, as the determinism suite proves).
///
/// # Examples
///
/// ```
/// use batmem_types::dense::PageMap;
/// use batmem_types::PageId;
///
/// let mut m: PageMap<u32> = PageMap::new();
/// assert_eq!(m.insert(PageId::new(3), 7), None);
/// assert_eq!(m.insert(PageId::new(3), 8), Some(7));
/// assert_eq!(m.get(PageId::new(3)), Some(&8));
/// assert_eq!(m.remove(PageId::new(3)), Some(8));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PageMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for PageMap<V> {
    fn default() -> Self {
        Self { slots: Vec::new(), len: 0 }
    }
}

impl<V> PageMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map pre-sized for pages `0..pages`.
    pub fn with_capacity(pages: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(pages, || None);
        Self { slots, len: 0 }
    }

    /// Inserts `value` for `page`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, page: PageId, value: V) -> Option<V> {
        let i = page.index() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(value);
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Returns a reference to `page`'s value, if present.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<&V> {
        self.slots.get(page.index() as usize)?.as_ref()
    }

    /// Returns a mutable reference to `page`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut V> {
        self.slots.get_mut(page.index() as usize)?.as_mut()
    }

    /// Removes and returns `page`'s value, if present.
    #[inline]
    pub fn remove(&mut self, page: PageId) -> Option<V> {
        let taken = self.slots.get_mut(page.index() as usize)?.take();
        self.len -= usize::from(taken.is_some());
        taken
    }

    /// Whether `page` has a value.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.get(page).is_some()
    }

    /// Number of pages with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates `(page, &value)` in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (PageId::new(i as u64), v)))
    }
}

/// A page set with O(1) `clear`, for per-batch scratch state.
///
/// Membership is an epoch stamp per page: `clear` bumps the current epoch,
/// invalidating every mark at once without touching the table. The table is
/// allocated once and reused across every batch of a run.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::EpochPageSet;
/// use batmem_types::PageId;
///
/// let mut s = EpochPageSet::new();
/// s.insert(PageId::new(2));
/// assert!(s.contains(PageId::new(2)));
/// s.clear();
/// assert!(!s.contains(PageId::new(2)));
/// assert_eq!(s.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct EpochPageSet {
    marks: Vec<u32>,
    epoch: u32,
    len: usize,
}

impl Default for EpochPageSet {
    fn default() -> Self {
        Self { marks: Vec::new(), epoch: 1, len: 0 }
    }
}

impl EpochPageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `page`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, page: PageId) -> bool {
        let i = page.index() as usize;
        if i >= self.marks.len() {
            self.marks.resize(i + 1, 0);
        }
        let fresh = self.marks[i] != self.epoch;
        self.marks[i] = self.epoch;
        self.len += usize::from(fresh);
        fresh
    }

    /// Whether `page` is in the set (this epoch).
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.marks.get(page.index() as usize) == Some(&self.epoch)
    }

    /// Number of pages inserted this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the set in O(1) by starting a new epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap (once per 2^32 - 1 clears): reset every mark.
            self.marks.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.len = 0;
    }
}

/// A page map with O(1) `clear`, for per-batch scratch state.
///
/// Same epoch scheme as [`EpochPageSet`]; values stamped in an older epoch
/// are dead and simply overwritten on the next insert.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::EpochPageMap;
/// use batmem_types::PageId;
///
/// let mut m: EpochPageMap<u64> = EpochPageMap::new();
/// m.insert(PageId::new(4), 900);
/// assert_eq!(m.get(PageId::new(4)), Some(900));
/// m.clear();
/// assert_eq!(m.get(PageId::new(4)), None);
/// ```
#[derive(Debug, Clone)]
pub struct EpochPageMap<V: Copy> {
    marks: Vec<u32>,
    values: Vec<V>,
    epoch: u32,
    len: usize,
}

impl<V: Copy + Default> Default for EpochPageMap<V> {
    fn default() -> Self {
        Self { marks: Vec::new(), values: Vec::new(), epoch: 1, len: 0 }
    }
}

impl<V: Copy + Default> EpochPageMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` for `page`, returning the previous value from this
    /// epoch if any.
    #[inline]
    pub fn insert(&mut self, page: PageId, value: V) -> Option<V> {
        let i = page.index() as usize;
        if i >= self.marks.len() {
            self.marks.resize(i + 1, 0);
            self.values.resize(i + 1, V::default());
        }
        let prev = (self.marks[i] == self.epoch).then_some(self.values[i]);
        self.marks[i] = self.epoch;
        self.values[i] = value;
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Returns `page`'s value from this epoch, if present.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<V> {
        let i = page.index() as usize;
        (self.marks.get(i) == Some(&self.epoch)).then(|| self.values[i])
    }

    /// Whether `page` has a value this epoch.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.marks.get(page.index() as usize) == Some(&self.epoch)
    }

    /// Number of pages with a value this epoch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the map in O(1) by starting a new epoch.
    pub fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.marks.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.len = 0;
    }
}

/// A growable set of regions backed by a bitmap — [`PageSet`] one tier up.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::RegionSet;
/// use batmem_types::RegionId;
///
/// let mut s = RegionSet::new();
/// assert!(s.insert(RegionId::new(3)));
/// assert!(s.contains(RegionId::new(3)));
/// assert!(s.remove(RegionId::new(3)));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegionSet {
    words: Vec<u64>,
    len: usize,
}

impl RegionSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot(region: RegionId) -> (usize, u64) {
        let i = region.index() as usize;
        (i / 64, 1u64 << (i % 64))
    }

    /// Inserts `region`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, region: RegionId) -> bool {
        let (w, bit) = Self::slot(region);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & bit == 0;
        self.words[w] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `region`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, region: RegionId) -> bool {
        let (w, bit) = Self::slot(region);
        if w >= self.words.len() || self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        self.len -= 1;
        true
    }

    /// Whether `region` is in the set.
    #[inline]
    pub fn contains(&self, region: RegionId) -> bool {
        let (w, bit) = Self::slot(region);
        w < self.words.len() && self.words[w] & bit != 0
    }

    /// Number of regions in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every region, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates the regions in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| RegionId::new((w * 64 + b) as u64))
        })
    }
}

/// A growable map from regions to values — [`PageMap`] one tier up.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::RegionMap;
/// use batmem_types::RegionId;
///
/// let mut m: RegionMap<u32> = RegionMap::new();
/// assert_eq!(m.insert(RegionId::new(2), 9), None);
/// assert_eq!(m.get(RegionId::new(2)), Some(&9));
/// ```
#[derive(Debug, Clone)]
pub struct RegionMap<V> {
    slots: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for RegionMap<V> {
    fn default() -> Self {
        Self { slots: Vec::new(), len: 0 }
    }
}

impl<V> RegionMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` for `region`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, region: RegionId, value: V) -> Option<V> {
        let i = region.index() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(value);
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Returns a reference to `region`'s value, if present.
    #[inline]
    pub fn get(&self, region: RegionId) -> Option<&V> {
        self.slots.get(region.index() as usize)?.as_ref()
    }

    /// Returns a mutable reference to `region`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, region: RegionId) -> Option<&mut V> {
        self.slots.get_mut(region.index() as usize)?.as_mut()
    }

    /// Returns a mutable reference to `region`'s value, inserting the
    /// default-constructed value first if absent.
    #[inline]
    pub fn entry_or_default(&mut self, region: RegionId) -> &mut V
    where
        V: Default,
    {
        let i = region.index() as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].is_none() {
            self.slots[i] = Some(V::default());
            self.len += 1;
        }
        self.slots[i].as_mut().expect("slot just filled")
    }

    /// Removes and returns `region`'s value, if present.
    #[inline]
    pub fn remove(&mut self, region: RegionId) -> Option<V> {
        let taken = self.slots.get_mut(region.index() as usize)?.take();
        self.len -= usize::from(taken.is_some());
        taken
    }

    /// Whether `region` has a value.
    #[inline]
    pub fn contains(&self, region: RegionId) -> bool {
        self.get(region).is_some()
    }

    /// Number of regions with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates `(region, &value)` in ascending region order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (RegionId::new(i as u64), v)))
    }
}

/// A two-level page map: per-region [`PageMap`]s under a [`RegionMap`],
/// with page-granular API and O(1) per-region residency counts.
///
/// The region tier here is whatever granularity the caller's
/// [`PageGeometry`](crate::addr::PageGeometry) dictates — page tables use
/// the large-page group size so "region fully resident" answers the
/// coalescing question directly.
///
/// # Examples
///
/// ```
/// use batmem_types::dense::TieredPageMap;
/// use batmem_types::{PageId, RegionId};
///
/// let mut m: TieredPageMap<u32> = TieredPageMap::with_pages_per_region(4);
/// for i in 0..4 {
///     m.insert(PageId::new(i), 100 + i as u32);
/// }
/// assert_eq!(m.region_len(RegionId::new(0)), 4);
/// assert!(m.region_is_full(RegionId::new(0)));
/// assert_eq!(m.get(PageId::new(2)), Some(&102));
/// ```
#[derive(Debug, Clone)]
pub struct TieredPageMap<V> {
    regions: RegionMap<PageMap<V>>,
    pages_per_region: u64,
    len: usize,
}

impl<V> Default for TieredPageMap<V> {
    /// Default-geometry tier: 32 pages per region (64 KB pages, 2 MB
    /// regions).
    fn default() -> Self {
        Self::with_pages_per_region(32)
    }
}

impl<V> TieredPageMap<V> {
    /// Creates an empty map whose region tier spans `pages_per_region`
    /// base pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_region` is zero.
    pub fn with_pages_per_region(pages_per_region: u64) -> Self {
        assert!(pages_per_region > 0, "pages_per_region must be nonzero");
        Self { regions: RegionMap::new(), pages_per_region, len: 0 }
    }

    /// The region-tier granularity in base pages.
    pub fn pages_per_region(&self) -> u64 {
        self.pages_per_region
    }

    #[inline]
    fn split(&self, page: PageId) -> (RegionId, PageId) {
        (
            RegionId::new(page.index() / self.pages_per_region),
            PageId::new(page.index() % self.pages_per_region),
        )
    }

    /// Inserts `value` for `page`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, page: PageId, value: V) -> Option<V> {
        let (r, off) = self.split(page);
        let prev = self.regions.entry_or_default(r).insert(off, value);
        self.len += usize::from(prev.is_none());
        prev
    }

    /// Returns a reference to `page`'s value, if present.
    #[inline]
    pub fn get(&self, page: PageId) -> Option<&V> {
        let (r, off) = self.split(page);
        self.regions.get(r)?.get(off)
    }

    /// Returns a mutable reference to `page`'s value, if present.
    #[inline]
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut V> {
        let (r, off) = self.split(page);
        self.regions.get_mut(r)?.get_mut(off)
    }

    /// Removes and returns `page`'s value, if present.
    #[inline]
    pub fn remove(&mut self, page: PageId) -> Option<V> {
        let (r, off) = self.split(page);
        let taken = self.regions.get_mut(r)?.remove(off);
        self.len -= usize::from(taken.is_some());
        taken
    }

    /// Whether `page` has a value.
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        self.get(page).is_some()
    }

    /// Number of pages with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages with a value inside `region` — O(1).
    pub fn region_len(&self, region: RegionId) -> usize {
        self.regions.get(region).map_or(0, PageMap::len)
    }

    /// Whether every page of `region` has a value.
    pub fn region_is_full(&self, region: RegionId) -> bool {
        self.region_len(region) as u64 == self.pages_per_region
    }

    /// Removes every entry, keeping the region allocations.
    pub fn clear(&mut self) {
        self.regions.clear();
        self.len = 0;
    }

    /// Iterates `(page, &value)` in ascending global page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, &V)> {
        let ppr = self.pages_per_region;
        self.regions.iter().flat_map(move |(r, pm)| {
            pm.iter().map(move |(off, v)| (PageId::new(r.index() * ppr + off.index()), v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn page_set_insert_remove_contains() {
        let mut s = PageSet::new();
        assert!(s.is_empty());
        assert!(s.insert(p(0)));
        assert!(s.insert(p(63)));
        assert!(s.insert(p(64)));
        assert!(!s.insert(p(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(p(63)));
        assert!(!s.contains(p(1)));
        assert!(!s.contains(p(1_000_000))); // beyond allocation: false, no growth
        assert!(s.remove(p(63)));
        assert!(!s.remove(p(63)));
        assert!(!s.remove(p(999))); // never inserted
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(p(0)));
    }

    #[test]
    fn page_set_with_capacity_starts_empty() {
        let s = PageSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(!s.contains(p(129)));
    }

    #[test]
    fn page_map_behaves_like_a_map() {
        let mut m: PageMap<&'static str> = PageMap::new();
        assert_eq!(m.insert(p(10), "a"), None);
        assert_eq!(m.insert(p(10), "b"), Some("a"));
        assert_eq!(m.get(p(10)), Some(&"b"));
        assert_eq!(m.get(p(11)), None);
        assert!(m.contains(p(10)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(p(10)), Some("b"));
        assert_eq!(m.remove(p(10)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn page_map_iterates_in_page_order() {
        let mut m: PageMap<u32> = PageMap::with_capacity(8);
        m.insert(p(5), 50);
        m.insert(p(1), 10);
        m.insert(p(3), 30);
        let got: Vec<_> = m.iter().map(|(k, v)| (k.index(), *v)).collect();
        assert_eq!(got, vec![(1, 10), (3, 30), (5, 50)]);
        m.clear();
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn epoch_set_clear_is_logical() {
        let mut s = EpochPageSet::new();
        assert!(s.insert(p(7)));
        assert!(!s.insert(p(7)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(p(7)));
        assert!(s.insert(p(7))); // fresh again in the new epoch
    }

    #[test]
    fn epoch_set_survives_epoch_wrap() {
        let mut s = EpochPageSet::new();
        s.insert(p(3));
        s.epoch = u32::MAX - 1;
        s.marks[3] = u32::MAX - 1; // keep page 3 current
        s.clear(); // -> MAX
        assert!(!s.contains(p(3)));
        s.insert(p(2));
        s.clear(); // wrap: marks reset
        assert!(!s.contains(p(2)));
        assert!(s.insert(p(2)));
        assert!(s.contains(p(2)));
    }

    #[test]
    fn epoch_map_stores_per_epoch_values() {
        let mut m: EpochPageMap<u64> = EpochPageMap::new();
        assert_eq!(m.insert(p(1), 100), None);
        assert_eq!(m.insert(p(1), 200), Some(100));
        assert_eq!(m.get(p(1)), Some(200));
        assert_eq!(m.len(), 1);
        m.clear();
        assert_eq!(m.get(p(1)), None);
        assert!(!m.contains(p(1)));
        assert_eq!(m.insert(p(1), 300), None); // stale value not reported
        assert_eq!(m.get(p(1)), Some(300));
    }

    #[test]
    fn epoch_map_out_of_range_reads_are_none() {
        let m: EpochPageMap<u64> = EpochPageMap::new();
        assert_eq!(m.get(p(12345)), None);
        assert!(!m.contains(p(12345)));
        assert!(m.is_empty());
    }

    fn r(i: u64) -> RegionId {
        RegionId::new(i)
    }

    #[test]
    fn region_set_mirrors_page_set_semantics() {
        let mut s = RegionSet::new();
        assert!(s.insert(r(0)));
        assert!(s.insert(r(65)));
        assert!(!s.insert(r(65)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(r(65)));
        assert!(!s.contains(r(1_000_000)));
        assert_eq!(s.iter().map(RegionId::index).collect::<Vec<_>>(), vec![0, 65]);
        assert!(s.remove(r(0)));
        assert!(!s.remove(r(0)));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn region_map_mirrors_page_map_semantics() {
        let mut m: RegionMap<u32> = RegionMap::new();
        assert_eq!(m.insert(r(4), 40), None);
        assert_eq!(m.insert(r(4), 44), Some(40));
        *m.entry_or_default(r(2)) += 20;
        assert_eq!(m.get(r(2)), Some(&20));
        assert_eq!(m.len(), 2);
        let got: Vec<_> = m.iter().map(|(k, v)| (k.index(), *v)).collect();
        assert_eq!(got, vec![(2, 20), (4, 44)]);
        assert_eq!(m.remove(r(4)), Some(44));
        assert_eq!(m.get(r(4)), None);
    }

    #[test]
    fn tiered_map_tracks_both_tiers() {
        let mut m: TieredPageMap<u64> = TieredPageMap::with_pages_per_region(4);
        // Fill region 1 (pages 4..8) and half of region 0.
        for i in 4..8 {
            assert_eq!(m.insert(p(i), i * 10), None);
        }
        m.insert(p(0), 0);
        m.insert(p(2), 20);
        assert_eq!(m.len(), 6);
        assert_eq!(m.region_len(r(1)), 4);
        assert!(m.region_is_full(r(1)));
        assert!(!m.region_is_full(r(0)));
        assert_eq!(m.region_len(r(9)), 0);
        assert_eq!(m.get(p(6)), Some(&60));
        assert_eq!(m.remove(p(6)), Some(60));
        assert!(!m.region_is_full(r(1)));
        assert_eq!(m.region_len(r(1)), 3);
        // Global iteration order is ascending page index across regions.
        let order: Vec<_> = m.iter().map(|(k, _)| k.index()).collect();
        assert_eq!(order, vec![0, 2, 4, 5, 7]);
        if let Some(v) = m.get_mut(p(2)) {
            *v = 21;
        }
        assert_eq!(m.get(p(2)), Some(&21));
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.region_len(r(1)), 0);
    }

    #[test]
    fn tiered_map_default_matches_default_geometry() {
        let m: TieredPageMap<u8> = TieredPageMap::default();
        assert_eq!(m.pages_per_region(), 32);
    }
}
