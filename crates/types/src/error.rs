//! Structured simulation errors and the audit-level knob.
//!
//! Before this module existed, a mis-tracked frame or an impossible state
//! transition killed the process through a bare `expect()` deep inside the
//! UVM runtime — fine for a prototype, useless for a batch harness that
//! sweeps dozens of configurations. [`SimError`] carries the cycle, the
//! event, and the machine state at the point of failure so a failed run is
//! a diagnosable data point instead of a dead process.
//!
//! The error type is hand-written (`Display` + `std::error::Error`) because
//! the offline build cannot fetch `thiserror`; the shape matches what the
//! derive would have produced.

use crate::time::Cycle;
use std::error::Error;
use std::fmt;

/// How much invariant checking the engine performs while running.
///
/// Auditing re-derives conservation laws from scratch after every UVM event,
/// so it costs time proportional to the resident set; it is off by default
/// and intended for tests, CI, and debugging suspect runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum AuditLevel {
    /// No checking (production default).
    #[default]
    Off,
    /// Cheap structural checks: state/plan consistency, in-flight counts.
    Basic,
    /// Everything: frame conservation, frame uniqueness, page-table
    /// cross-checks. Cost is O(resident pages) per UVM event.
    Full,
}

impl AuditLevel {
    /// Whether any auditing is enabled.
    pub fn enabled(self) -> bool {
        self != AuditLevel::Off
    }
}

impl fmt::Display for AuditLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditLevel::Off => write!(f, "off"),
            AuditLevel::Basic => write!(f, "basic"),
            AuditLevel::Full => write!(f, "full"),
        }
    }
}

/// A structured simulation failure.
///
/// Every variant carries enough context to reconstruct *where* in simulated
/// time and *in which piece of machine state* the failure happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration field failed validation before the run started.
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `gpu.num_sms`).
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// An event arrived that the current machine state cannot legally accept.
    StateMachine {
        /// Simulated time of the offending event.
        cycle: Cycle,
        /// The event that could not be applied.
        event: String,
        /// The state the machine was in.
        state: String,
        /// What specifically went wrong.
        detail: String,
    },
    /// Page/frame residency bookkeeping contradicted itself.
    Accounting {
        /// Simulated time of the detection.
        cycle: Cycle,
        /// What the books said versus what was attempted.
        detail: String,
    },
    /// An enabled invariant audit found a conservation law broken.
    InvariantViolated {
        /// Simulated time of the audit.
        cycle: Cycle,
        /// Name of the violated invariant.
        invariant: &'static str,
        /// Snapshot of the relevant state at the point of violation.
        snapshot: String,
    },
    /// The watchdog saw a configurable budget of events pass with no forward
    /// progress (no warp advanced, no page arrived, no block retired).
    Livelock {
        /// Simulated time when the watchdog fired.
        cycle: Cycle,
        /// Consecutive no-progress events observed.
        events_without_progress: u64,
        /// Diagnostic dump of the engine state.
        snapshot: String,
    },
    /// The event queue drained with unfinished work — nothing left to do,
    /// but blocks or pages remain outstanding.
    Deadlock {
        /// Simulated time when the queue emptied.
        cycle: Cycle,
        /// Diagnostic dump of what was still outstanding.
        detail: String,
    },
    /// A policy-registry lookup named a strategy that is not registered.
    UnknownPolicy {
        /// Which policy axis the lookup was on (`eviction`, `prefetch`, …).
        axis: &'static str,
        /// The name that failed to resolve.
        name: String,
        /// Comma-separated list of names the registry does know.
        known: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            SimError::StateMachine { cycle, event, state, detail } => {
                write!(
                    f,
                    "state-machine violation at cycle {cycle}: event {event} in state {state}: {detail}"
                )
            }
            SimError::Accounting { cycle, detail } => {
                write!(f, "accounting violation at cycle {cycle}: {detail}")
            }
            SimError::InvariantViolated { cycle, invariant, snapshot } => {
                write!(
                    f,
                    "invariant violated at cycle {cycle}: {invariant}; state: {snapshot}"
                )
            }
            SimError::Livelock { cycle, events_without_progress, snapshot } => {
                write!(
                    f,
                    "livelock detected at cycle {cycle}: {events_without_progress} events without forward progress; state: {snapshot}"
                )
            }
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: event queue empty but {detail}")
            }
            SimError::UnknownPolicy { axis, name, known } => {
                write!(f, "unknown {axis} policy `{name}` (known: {known})")
            }
        }
    }
}

impl Error for SimError {}

impl SimError {
    /// Shorthand constructor for config-validation failures.
    pub fn invalid_config(field: &'static str, reason: impl Into<String>) -> Self {
        SimError::InvalidConfig { field, reason: reason.into() }
    }

    /// Stamps a mid-run cycle onto an error. Every in-tree error producer
    /// now takes the caller's clock and stamps errors at the mint site, so
    /// this is only needed by external drivers that replay stored errors at
    /// a different simulated time.
    pub fn at_cycle(mut self, at: Cycle) -> Self {
        match &mut self {
            SimError::InvalidConfig { .. } | SimError::UnknownPolicy { .. } => {}
            SimError::StateMachine { cycle, .. }
            | SimError::Accounting { cycle, .. }
            | SimError::InvariantViolated { cycle, .. }
            | SimError::Livelock { cycle, .. }
            | SimError::Deadlock { cycle, .. } => *cycle = at,
        }
        self
    }

    /// The simulated cycle the error occurred at, if it happened mid-run.
    pub fn cycle(&self) -> Option<Cycle> {
        match self {
            SimError::InvalidConfig { .. } | SimError::UnknownPolicy { .. } => None,
            SimError::StateMachine { cycle, .. }
            | SimError::Accounting { cycle, .. }
            | SimError::InvariantViolated { cycle, .. }
            | SimError::Livelock { cycle, .. }
            | SimError::Deadlock { cycle, .. } => Some(*cycle),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cycle_and_context() {
        let e = SimError::StateMachine {
            cycle: 1234,
            event: "PageArrived(page:7)".into(),
            state: "Idle".into(),
            detail: "no batch is migrating".into(),
        };
        let s = e.to_string();
        assert!(s.contains("1234"));
        assert!(s.contains("PageArrived"));
        assert!(s.contains("Idle"));
        assert_eq!(e.cycle(), Some(1234));
    }

    #[test]
    fn config_errors_have_no_cycle() {
        let e = SimError::invalid_config("gpu.num_sms", "must be nonzero");
        assert_eq!(e.cycle(), None);
        assert!(e.to_string().contains("gpu.num_sms"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> =
            Box::new(SimError::Deadlock { cycle: 9, detail: "3 blocks remaining".into() });
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn unknown_policy_has_no_cycle_and_names_the_axis() {
        let e = SimError::UnknownPolicy {
            axis: "eviction",
            name: "mru".into(),
            known: "ideal, lru, random, ue".into(),
        };
        assert_eq!(e.cycle(), None);
        let s = e.to_string();
        assert!(s.contains("eviction"));
        assert!(s.contains("`mru`"));
        assert!(s.contains("lru"));
        assert_eq!(e.clone().at_cycle(99).cycle(), None);
    }

    #[test]
    fn audit_levels_are_ordered() {
        assert!(AuditLevel::Off < AuditLevel::Basic);
        assert!(AuditLevel::Basic < AuditLevel::Full);
        assert!(!AuditLevel::Off.enabled());
        assert!(AuditLevel::Full.enabled());
        assert_eq!(AuditLevel::default(), AuditLevel::Off);
        assert_eq!(AuditLevel::Full.to_string(), "full");
    }
}
