//! Identifiers for the hardware and software entities of the simulated GPU.

use std::fmt;

/// A streaming multiprocessor (SM) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SmId(u16);

impl SmId {
    /// Creates an SM id.
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the raw SM index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sm:{}", self.0)
    }
}

/// A thread block, identified by its global launch index within a kernel grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a global grid index.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the raw grid index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block:{}", self.0)
    }
}

/// A warp, identified globally by `(block, lane-within-block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WarpId {
    /// The thread block this warp belongs to.
    pub block: BlockId,
    /// The warp's index within its block.
    pub within_block: u16,
}

impl WarpId {
    /// Creates a warp id.
    pub const fn new(block: BlockId, within_block: u16) -> Self {
        Self { block, within_block }
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warp:{}.{}", self.block.index(), self.within_block)
    }
}

/// A kernel launch index within a workload (workloads may launch many kernels,
/// e.g. one per BFS level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KernelId(u32);

impl KernelId {
    /// Creates a kernel id.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the raw launch index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_id_orders_by_block_then_lane() {
        let a = WarpId::new(BlockId::new(0), 5);
        let b = WarpId::new(BlockId::new(1), 0);
        assert!(a < b);
        let c = WarpId::new(BlockId::new(0), 6);
        assert!(a < c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SmId::new(3)), "sm:3");
        assert_eq!(format!("{}", WarpId::new(BlockId::new(2), 1)), "warp:2.1");
        assert_eq!(format!("{}", KernelId::new(9)), "kernel:9");
    }
}
