//! Shared newtypes, units, and configuration for the `batmem` GPU UVM simulator.
//!
//! This crate is the vocabulary layer of the workspace: every other crate
//! speaks in the types defined here. It contains no simulation logic.
//!
//! # Overview
//!
//! * [`addr`] — virtual/physical addresses, pages, frames, and 2 MB regions.
//! * [`ids`] — identifiers for SMs, thread blocks, warps, and kernels.
//! * [`time`] — the simulated clock ([`Cycle`]) and time-unit conversions.
//! * [`config`] — the full simulated-system configuration, whose defaults
//!   reproduce Table 1 of Kim et al., *Batch-Aware Unified Memory Management
//!   in GPUs for Irregular Workloads* (ASPLOS 2020).
//! * [`policy`] — the policy knobs that select between the paper's baseline
//!   and proposed mechanisms (thread oversubscription, unobtrusive eviction,
//!   prefetching, PCIe compression).
//! * [`dense`] — dense page-indexed collections (flat tables and epoch
//!   sets) backing the simulator's per-event hot paths.
//! * [`error`] — structured simulation errors ([`SimError`]) and the
//!   invariant-audit knob ([`AuditLevel`]).
//! * [`probe`] — the pluggable observation layer: the [`Probe`] trait, the
//!   typed [`ProbeEvent`] stream, and the fan-out plumbing the engine and
//!   UVM runtime emit through.
//! * [`rng`] — the deterministic seeded generator used wherever the
//!   simulator needs reproducible randomness.
//! * [`sweep`] — sweep-service vocabulary: stable config hashing
//!   ([`sweep::CellId`]), typed per-cell outcomes, and bounded retry
//!   backoff shared by the bench harness's parallel runner.
//!
//! # Examples
//!
//! ```
//! use batmem_types::config::SimConfig;
//! use batmem_types::addr::VirtAddr;
//!
//! let config = SimConfig::default();
//! assert_eq!(config.gpu.num_sms, 16);
//! let page = config.uvm.geometry.page_of(VirtAddr::new(0x1_0000));
//! assert_eq!(page.index(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod config;
pub mod dense;
pub mod error;
pub mod ids;
pub mod policy;
pub mod probe;
pub mod rng;
pub mod sweep;
pub mod time;

pub use addr::{FrameId, PageGeometry, PageId, RegionId, VirtAddr};
pub use config::SimConfig;
pub use error::{AuditLevel, SimError};
pub use ids::{BlockId, KernelId, SmId, WarpId};
pub use probe::{EvictionCause, Probe, ProbeEvent, ProbeHub, SharedProbes};
pub use rng::DetRng;
pub use sweep::{Backoff, CellId, OutcomeKind, StableHasher};
pub use time::Cycle;
