//! Policy knobs selecting between the paper's baseline and proposed mechanisms.
//!
//! The evaluation in the paper compares six configurations (Fig. 11):
//!
//! * `BASELINE` — demand paging with the state-of-the-art tree prefetcher,
//!   serialized LRU eviction, no oversubscription of thread blocks;
//! * `BASELINE with PCIe Compression` — the same plus link compression;
//! * `TO` — thread oversubscription (Virtual-Thread-based block context
//!   switching on page-fault stalls, with a dynamic degree controller);
//! * `UE` — unobtrusive eviction (preemptive + pipelined bidirectional);
//! * `TO+UE` — both (the paper's proposal);
//! * `ETC` — the Li et al. ASPLOS'19 framework (see `batmem-etc`).
//!
//! All of these are expressible as a [`PolicyConfig`] value.

use crate::error::SimError;
use crate::time::Cycle;
use std::fmt;

/// Page prefetching policy applied while a batch is preprocessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetching: only faulted pages migrate.
    None,
    /// Tree-based prefetcher (Zheng et al., HPCA'16 / the NVIDIA UVM
    /// driver): when the faulted 64 KB subpages of a 2 MB region reach
    /// `threshold_percent` density (counting already-resident pages), the
    /// region's remaining non-resident pages are appended to the batch.
    Tree {
        /// Density threshold, in percent of the region's pages.
        threshold_percent: u8,
    },
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy::Tree { threshold_percent: 50 }
    }
}

/// Page eviction engine used when device memory is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// The baseline, modeled on the NVIDIA driver (§3 of the paper): an
    /// eviction is requested reactively when an allocation fails, and the
    /// incoming page's transfer is **serialized** behind the eviction.
    #[default]
    SerializedLru,
    /// Unobtrusive Eviction (§4.2): one preemptive eviction is issued by the
    /// top-half ISR at batch start (overlapping the runtime fault-handling
    /// window), and subsequent evictions are pipelined on the
    /// device-to-host direction concurrently with host-to-device migrations.
    Unobtrusive,
    /// Ideal (zero-latency) eviction — the limit study of Fig. 8.
    Ideal,
}

/// The granularity at which the physical memory manager evicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionGranularity {
    /// Evict one 64 KB page at a time (the paper's simulator model).
    #[default]
    Page,
    /// Evict a whole 2 MB root chunk, as the real driver's
    /// `pick_and_evict_root_chunk` does (ablation).
    RootChunk,
}

/// What makes an active thread block eligible for a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchTrigger {
    /// Switch only when every warp of the block is blocked on a page fault
    /// (the paper's TO mechanism, §4.1).
    #[default]
    FaultStall,
    /// Switch whenever every warp is stalled for any reason, including plain
    /// memory latency — the "traditional GPU" experiment of Fig. 5, where
    /// context switching without demand paging only hurts.
    AnyStall,
}

/// Thread Oversubscription (TO) configuration (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToConfig {
    /// Master switch.
    pub enabled: bool,
    /// Extra (inactive) blocks allocated per SM at kernel launch.
    pub initial_extra_blocks: u32,
    /// Upper bound on the oversubscription degree the dynamic controller
    /// may reach.
    pub max_extra_blocks: u32,
    /// When a block becomes switchable.
    pub trigger: SwitchTrigger,
    /// Period, in cycles, of the premature-eviction (page lifetime)
    /// monitoring used by the dynamic controller (paper: every 100k cycles).
    pub lifetime_sample_period: Cycle,
    /// If the running average page lifetime drops by at least this percent
    /// between samples, the controller decrements the oversubscription
    /// degree (paper: threshold empirically set to 20 %).
    pub lifetime_drop_threshold_percent: u8,
}

impl Default for ToConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            initial_extra_blocks: 1,
            max_extra_blocks: 3,
            trigger: SwitchTrigger::FaultStall,
            lifetime_sample_period: 100_000,
            lifetime_drop_threshold_percent: 20,
        }
    }
}

impl ToConfig {
    /// An enabled TO configuration with the paper's defaults.
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// PCIe link compression (the `BASELINE with PCIe Compression` bar of Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcieCompression {
    /// Master switch.
    pub enabled: bool,
    /// Compression ratio ×100 (150 ⇒ transfers shrink to 2⁄3 size).
    pub ratio_x100: u32,
    /// Added (de)compression latency per page transfer.
    pub per_page_latency: Cycle,
}

impl Default for PcieCompression {
    fn default() -> Self {
        Self { enabled: false, ratio_x100: 150, per_page_latency: 500 }
    }
}

impl PcieCompression {
    /// Effective wire bytes for a logical transfer of `bytes`.
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        if self.enabled {
            (bytes * 100).div_ceil(u64::from(self.ratio_x100))
        } else {
            bytes
        }
    }
}

/// The decision point of the fault pipeline a registered strategy plugs into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyAxis {
    /// Victim selection and device-to-host transfer scheduling.
    Eviction,
    /// Batch-time page prefetch expansion.
    Prefetch,
    /// Thread-oversubscription degree control.
    Oversubscription,
    /// Large-page coalescing and splintering (multi-page-size management).
    Coalesce,
    /// Fault-servicing cost model: who runs the fault handler (the CPU
    /// round-trip of the classic driver, or a GPU-driven handler).
    FaultServicing,
}

impl PolicyAxis {
    /// Lower-case label used in error messages and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            PolicyAxis::Eviction => "eviction",
            PolicyAxis::Prefetch => "prefetch",
            PolicyAxis::Oversubscription => "oversubscription",
            PolicyAxis::Coalesce => "coalesce",
            PolicyAxis::FaultServicing => "fault-servicing",
        }
    }
}

impl fmt::Display for PolicyAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Self-description of a strategy registered in a policy registry.
///
/// Descriptors drive `--list-policies` introspection: a registry entry
/// carries one next to its build closure so the CLI can enumerate what is
/// available without constructing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyDescriptor {
    /// Which pipeline decision point the strategy implements.
    pub axis: PolicyAxis,
    /// Registry key, matched against the name part of a spec string.
    pub name: &'static str,
    /// Human-readable parameter syntax (empty when the strategy takes none),
    /// e.g. `":<threshold_percent>"` for `tree:50`.
    pub params: &'static str,
    /// One-line summary shown by `--list-policies`.
    pub summary: &'static str,
}

/// The combined policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicyConfig {
    /// Batch-time page prefetching.
    pub prefetch: PrefetchPolicy,
    /// Eviction engine.
    pub eviction: EvictionPolicy,
    /// ETC-style proactive eviction: at batch start, evict enough pages to
    /// cover the batch's predicted frame demand, overlapped with the
    /// handling window. Mispredictions surface as premature evictions —
    /// the reason the ETC authors disable it for irregular workloads.
    pub proactive_eviction: bool,
    /// Eviction granularity.
    pub eviction_granularity: EvictionGranularity,
    /// Thread oversubscription.
    pub oversubscription: ToConfig,
    /// PCIe link compression.
    pub compression: PcieCompression,
}

impl PolicyConfig {
    /// The paper's `BASELINE`: prefetching on, serialized eviction, no TO.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// `BASELINE with PCIe Compression`.
    pub fn baseline_with_compression() -> Self {
        Self {
            compression: PcieCompression { enabled: true, ..PcieCompression::default() },
            ..Self::default()
        }
    }

    /// `TO`: thread oversubscription only.
    pub fn to_only() -> Self {
        Self { oversubscription: ToConfig::enabled(), ..Self::default() }
    }

    /// `UE`: unobtrusive eviction only.
    pub fn ue_only() -> Self {
        Self { eviction: EvictionPolicy::Unobtrusive, ..Self::default() }
    }

    /// `TO+UE`: the paper's full proposal.
    pub fn to_ue() -> Self {
        Self {
            oversubscription: ToConfig::enabled(),
            eviction: EvictionPolicy::Unobtrusive,
            ..Self::default()
        }
    }

    /// Ideal-eviction limit study (Fig. 8).
    pub fn ideal_eviction() -> Self {
        Self { eviction: EvictionPolicy::Ideal, ..Self::default() }
    }

    /// Rejects policy knobs outside their meaningful ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        if let PrefetchPolicy::Tree { threshold_percent } = self.prefetch {
            if threshold_percent == 0 || threshold_percent > 100 {
                return Err(SimError::invalid_config(
                    "policy.prefetch.threshold_percent",
                    format!("must be in 1..=100, got {threshold_percent}"),
                ));
            }
        }
        let to = &self.oversubscription;
        if to.enabled {
            if to.max_extra_blocks == 0 || to.max_extra_blocks < to.initial_extra_blocks {
                return Err(SimError::invalid_config(
                    "policy.oversubscription.max_extra_blocks",
                    format!(
                        "must be nonzero and >= initial_extra_blocks ({}), got {}",
                        to.initial_extra_blocks, to.max_extra_blocks
                    ),
                ));
            }
            if to.lifetime_sample_period == 0 {
                return Err(SimError::invalid_config(
                    "policy.oversubscription.lifetime_sample_period",
                    "must be nonzero (the dynamic controller samples on this period)",
                ));
            }
            if to.lifetime_drop_threshold_percent > 100 {
                return Err(SimError::invalid_config(
                    "policy.oversubscription.lifetime_drop_threshold_percent",
                    format!("must be <= 100, got {}", to.lifetime_drop_threshold_percent),
                ));
            }
        }
        if self.compression.enabled && self.compression.ratio_x100 < 100 {
            return Err(SimError::invalid_config(
                "policy.compression.ratio_x100",
                format!("compression must not expand data (>= 100), got {}", self.compression.ratio_x100),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shapes() {
        let b = PolicyConfig::baseline();
        assert!(!b.oversubscription.enabled);
        assert_eq!(b.eviction, EvictionPolicy::SerializedLru);
        assert!(matches!(b.prefetch, PrefetchPolicy::Tree { .. }));

        let p = PolicyConfig::to_ue();
        assert!(p.oversubscription.enabled);
        assert_eq!(p.eviction, EvictionPolicy::Unobtrusive);

        assert!(PolicyConfig::baseline_with_compression().compression.enabled);
        assert_eq!(PolicyConfig::ideal_eviction().eviction, EvictionPolicy::Ideal);
    }

    #[test]
    fn compression_shrinks_wire_bytes() {
        let c = PcieCompression { enabled: true, ratio_x100: 150, per_page_latency: 0 };
        assert_eq!(c.wire_bytes(150), 100);
        assert_eq!(c.wire_bytes(65536), 43691); // rounds up
        let off = PcieCompression::default();
        assert_eq!(off.wire_bytes(65536), 65536);
    }

    #[test]
    fn every_preset_validates() {
        for p in [
            PolicyConfig::baseline(),
            PolicyConfig::baseline_with_compression(),
            PolicyConfig::to_only(),
            PolicyConfig::ue_only(),
            PolicyConfig::to_ue(),
            PolicyConfig::ideal_eviction(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn degenerate_policy_knobs_are_rejected() {
        let mut p = PolicyConfig::baseline();
        p.prefetch = PrefetchPolicy::Tree { threshold_percent: 101 };
        assert!(p.validate().is_err());

        let mut p = PolicyConfig::to_only();
        p.oversubscription.max_extra_blocks = 0;
        assert!(p.validate().is_err());

        let mut p = PolicyConfig::to_only();
        p.oversubscription.lifetime_sample_period = 0;
        assert!(p.validate().is_err());

        let mut p = PolicyConfig::baseline_with_compression();
        p.compression.ratio_x100 = 50;
        assert!(p.validate().is_err());
    }

    #[test]
    fn policy_axis_labels_are_cli_friendly() {
        assert_eq!(PolicyAxis::Eviction.label(), "eviction");
        assert_eq!(PolicyAxis::Prefetch.to_string(), "prefetch");
        assert_eq!(PolicyAxis::Oversubscription.label(), "oversubscription");
        assert_eq!(PolicyAxis::Coalesce.label(), "coalesce");
        assert_eq!(PolicyAxis::FaultServicing.label(), "fault-servicing");
        let d = PolicyDescriptor {
            axis: PolicyAxis::Prefetch,
            name: "tree",
            params: ":<threshold_percent>",
            summary: "tree-based density prefetcher",
        };
        assert_eq!(d, d.clone());
    }

    #[test]
    fn to_defaults_match_paper() {
        let t = ToConfig::enabled();
        assert!(t.enabled);
        assert_eq!(t.initial_extra_blocks, 1);
        assert_eq!(t.lifetime_sample_period, 100_000);
        assert_eq!(t.lifetime_drop_threshold_percent, 20);
        assert_eq!(t.trigger, SwitchTrigger::FaultStall);
    }
}
