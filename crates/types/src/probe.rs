//! The pluggable observation layer of the simulator.
//!
//! Every load-bearing event of a run — faults, batch lifecycle, migrations,
//! evictions, warp stalls, context switches, watchdog ticks — is described
//! by a [`ProbeEvent`]. A [`Probe`] receives the stream; the engine and the
//! UVM runtime emit through a shared [`SharedProbes`] handle instead of
//! mutating statistics structs inline, so cross-cutting instrumentation
//! (tracers, timelines, metrics sinks, live dashboards, differential
//! testers) is an extension point rather than a code change.
//!
//! # Zero-overhead-when-off contract
//!
//! With no probe attached, [`SharedProbes`] is a `None` and every emission
//! site reduces to one predictable branch; the event value is **not even
//! constructed** (emission takes a closure). The `engine_hotpaths` bench
//! guards this: the no-probe simulation must perform exactly as before the
//! probe layer existed.
//!
//! # Writing a probe
//!
//! Implement [`Probe::on_event`]; all events funnel through it, typed by
//! the [`ProbeEvent`] variants. Probes run synchronously on the simulation
//! thread in attachment order, and must not panic: the simulator treats the
//! stream as fire-and-forget. A probe that needs to hand data back after
//! the run should be a cheap handle over shared interior state (the shipped
//! `Tracer`/`Timeline`/`MetricsSink` in `batmem::probes` all follow this
//! pattern: `Clone` the handle, attach one, keep the other).

use crate::addr::{FrameId, PageId, RegionId};
use crate::time::Cycle;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Why an eviction was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictionCause {
    /// Reactive: a migration needed a frame and none was free.
    Demand,
    /// Unobtrusive Eviction's preemptive eviction at batch start (§4.2).
    Preemptive,
    /// ETC-style proactive eviction ahead of predicted batch demand.
    Proactive,
}

impl EvictionCause {
    /// Stable lowercase label (used by trace exporters).
    pub fn label(self) -> &'static str {
        match self {
            EvictionCause::Demand => "demand",
            EvictionCause::Preemptive => "preemptive",
            EvictionCause::Proactive => "proactive",
        }
    }
}

/// One structured simulation event.
///
/// Payload timestamps (`start`, `ready`, ...) describe *scheduled* times on
/// the PCIe pipes and may lie in the future of the emission cycle; the
/// emission cycle itself is the `at` argument of [`Probe::on_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProbeEvent {
    /// A demand fault entered the fault buffer.
    FaultRaised {
        /// The faulting page.
        page: PageId,
    },
    /// A fault for a page the open batch will already deliver; absorbed.
    FaultAbsorbed {
        /// The faulting page.
        page: PageId,
    },
    /// The runtime opened a fault batch (preprocessing begins).
    BatchOpened {
        /// Batch sequence number.
        batch: u64,
        /// Distinct faulted pages in the batch.
        faults: u32,
        /// Prefetched pages appended by the prefetcher.
        prefetches: u32,
        /// Length of the GPU-runtime handling window.
        handling_cycles: Cycle,
    },
    /// The batch's last page arrived; the batch closed.
    BatchClosed {
        /// Batch sequence number.
        batch: u64,
        /// Distinct faulted pages serviced.
        faults: u32,
        /// Prefetched pages migrated.
        prefetches: u32,
        /// Evictions the batch scheduled.
        evictions: u32,
        /// Evictions forced to take a pinned (same-batch) page.
        forced_pinned_evictions: u32,
        /// Bytes migrated host-to-device.
        migrated_bytes: u64,
        /// When the batch opened.
        opened_at: Cycle,
        /// When the batch's first page transfer started on the PCIe pipe.
        first_migration_start: Cycle,
    },
    /// A page's host-to-device transfer was scheduled.
    MigrationStarted {
        /// The owning batch.
        batch: u64,
        /// The migrating page.
        page: PageId,
        /// Scheduled transfer start.
        start: Cycle,
        /// Scheduled transfer end (arrival).
        end: Cycle,
    },
    /// A page's host-to-device transfer completed and the page installed.
    MigrationCompleted {
        /// The arrived page.
        page: PageId,
        /// The frame it occupies.
        frame: FrameId,
    },
    /// An eviction was scheduled for `page`.
    EvictionBegun {
        /// The victim page.
        page: PageId,
        /// What triggered the eviction.
        cause: EvictionCause,
        /// The victim was pinned by the open batch (capacity overflow).
        forced_pinned: bool,
        /// Scheduled start of the eviction transfer (shootdown time).
        start: Cycle,
    },
    /// The eviction's frame becomes reusable at `ready`.
    EvictionFinished {
        /// The victim page.
        page: PageId,
        /// When the freed frame is available to a migration.
        ready: Cycle,
    },
    /// A previously evicted page faulted again: the eviction was premature.
    PrematureEviction {
        /// The re-faulting page.
        page: PageId,
    },
    /// A warp stalled on faulting pages (entered `FaultBlocked`).
    WarpStalled {
        /// SM the warp's block resides on.
        sm: u16,
        /// Grid-wide block id.
        block: u32,
        /// Warp index within the block.
        warp: u16,
        /// Distinct pages the warp now waits for.
        waiting_pages: u32,
    },
    /// A fault-blocked warp received its last awaited page and re-issued.
    WarpResumed {
        /// SM the warp's block resides on.
        sm: u16,
        /// Grid-wide block id.
        block: u32,
        /// Warp index within the block.
        warp: u16,
    },
    /// Thread Oversubscription context-switched a block pair on `sm`.
    ContextSwitch {
        /// The SM that switched.
        sm: u16,
        /// Cycles the switch transfer costs.
        cost: Cycle,
        /// Restore-only switch into a freed active slot (half cost).
        restore: bool,
    },
    /// The forward-progress watchdog observed an event with no progress.
    WatchdogTick {
        /// Consecutive events without forward progress so far.
        events_without_progress: u64,
        /// Events pending in the scheduler's same-cycle ring tier.
        ring: u64,
        /// Events pending in the scheduler's timing-wheel tier.
        wheel: u64,
        /// Events pending in the scheduler's overflow-heap tier.
        overflow: u64,
    },
    /// A kernel was launched onto the grid.
    KernelLaunched {
        /// Kernel sequence number within the workload.
        kernel: u32,
        /// Thread blocks in the kernel's grid.
        blocks: u32,
    },
    /// A fully-resident large-page group was promoted to one large-page
    /// mapping (coalescing, Mosaic-style).
    RegionCoalesced {
        /// The promoted large-page group.
        region: RegionId,
        /// Base pages covered by the new large mapping.
        pages: u32,
    },
    /// A promoted large-page group was demoted back to base-page mappings
    /// (splintering), usually because the memmgr needed sub-region eviction.
    RegionSplintered {
        /// The demoted large-page group.
        region: RegionId,
    },
    /// End-of-run address-translation summary (TLB reach accounting),
    /// emitted once just before the run finishes.
    TranslationSummary {
        /// L1 TLB hits (base-page entries).
        l1_hits: u64,
        /// L1 TLB misses.
        l1_misses: u64,
        /// Large-page TLB hits (translations served by a promoted mapping).
        large_hits: u64,
        /// Page-table walks performed.
        walks: u64,
        /// Large-page promotions over the run.
        coalesces: u64,
        /// Splinters over the run.
        splinters: u64,
    },
    /// End-of-run fault-servicing summary, emitted once just before the run
    /// finishes — and only when a non-default (non-CPU) servicing model is
    /// active, so the default path stays event-for-event identical to the
    /// seed.
    FaultServicingSummary {
        /// Fault batches the servicing model handled.
        batches: u64,
        /// Faults serviced across those batches.
        faults: u64,
        /// Cumulative handler-occupancy cycles charged by the model.
        occupancy_cycles: u64,
    },
    /// End-of-run data-path summary (banked L2 accounting), emitted once
    /// just before the run finishes.
    DataPathSummary {
        /// L2 hits summed over banks.
        l2_hits: u64,
        /// L2 misses summed over banks.
        l2_misses: u64,
        /// L2 misses that evicted a resident line from a full set.
        l2_conflict_evictions: u64,
        /// Number of banks the L2 is striped into.
        l2_banks: u32,
        /// Share of L2 accesses landing on the busiest bank, in percent
        /// (100 / banks for a perfectly balanced stripe; 0 if no traffic).
        l2_hot_bank_pct: u32,
    },
}

impl ProbeEvent {
    /// Stable snake_case discriminant name (trace `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::FaultRaised { .. } => "fault_raised",
            ProbeEvent::FaultAbsorbed { .. } => "fault_absorbed",
            ProbeEvent::BatchOpened { .. } => "batch_opened",
            ProbeEvent::BatchClosed { .. } => "batch_closed",
            ProbeEvent::MigrationStarted { .. } => "migration_started",
            ProbeEvent::MigrationCompleted { .. } => "migration_completed",
            ProbeEvent::EvictionBegun { .. } => "eviction_begun",
            ProbeEvent::EvictionFinished { .. } => "eviction_finished",
            ProbeEvent::PrematureEviction { .. } => "premature_eviction",
            ProbeEvent::WarpStalled { .. } => "warp_stalled",
            ProbeEvent::WarpResumed { .. } => "warp_resumed",
            ProbeEvent::ContextSwitch { .. } => "context_switch",
            ProbeEvent::WatchdogTick { .. } => "watchdog_tick",
            ProbeEvent::KernelLaunched { .. } => "kernel_launched",
            ProbeEvent::RegionCoalesced { .. } => "region_coalesced",
            ProbeEvent::RegionSplintered { .. } => "region_splintered",
            ProbeEvent::TranslationSummary { .. } => "translation_summary",
            ProbeEvent::FaultServicingSummary { .. } => "fault_servicing_summary",
            ProbeEvent::DataPathSummary { .. } => "data_path_summary",
        }
    }
}

/// An observer of the simulation's event stream.
pub trait Probe {
    /// Delivers one event emitted at simulation time `at`.
    ///
    /// Events of equal `at` arrive in emission order, which is
    /// deterministic for a given configuration and workload.
    fn on_event(&mut self, at: Cycle, event: &ProbeEvent);

    /// Called once when the run completes successfully, at the final
    /// simulation time. Not called when the run fails with an error.
    fn on_run_finished(&mut self, at: Cycle) {
        let _ = at;
    }
}

/// A fan-out combinator: broadcasts every event to each attached probe, in
/// attachment order. This is also the container
/// [`SimulationBuilder::probe`](https://docs.rs/batmem) fills.
#[derive(Default)]
pub struct ProbeHub {
    probes: Vec<Box<dyn Probe>>,
}

impl ProbeHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches `probe` after any existing ones.
    pub fn attach(&mut self, probe: Box<dyn Probe>) {
        self.probes.push(probe);
    }

    /// Number of attached probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether no probe is attached.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }
}

impl fmt::Debug for ProbeHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeHub").field("probes", &self.probes.len()).finish()
    }
}

impl Probe for ProbeHub {
    fn on_event(&mut self, at: Cycle, event: &ProbeEvent) {
        for p in &mut self.probes {
            p.on_event(at, event);
        }
    }

    fn on_run_finished(&mut self, at: Cycle) {
        for p in &mut self.probes {
            p.on_run_finished(at);
        }
    }
}

/// The emission handle the engine and the UVM runtime share.
///
/// Cloning is cheap (an `Rc`); all clones feed the same [`ProbeHub`]. With
/// no probes attached the handle is inert and [`emit_with`](Self::emit_with)
/// is a single branch that never constructs the event.
#[derive(Clone, Default)]
pub struct SharedProbes {
    hub: Option<Rc<RefCell<ProbeHub>>>,
}

impl SharedProbes {
    /// A handle over `hub`; inert if the hub is empty.
    pub fn new(hub: ProbeHub) -> Self {
        if hub.is_empty() {
            Self::disabled()
        } else {
            Self { hub: Some(Rc::new(RefCell::new(hub))) }
        }
    }

    /// The inert handle (the no-probe fast path).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether any probe is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.hub.is_some()
    }

    /// Emits the event built by `f` at simulation time `at`. When disabled,
    /// `f` is never called.
    #[inline]
    pub fn emit_with(&self, at: Cycle, f: impl FnOnce() -> ProbeEvent) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().on_event(at, &f());
        }
    }

    /// Signals a successful run completion to every probe.
    pub fn finish(&self, at: Cycle) {
        if let Some(hub) = &self.hub {
            hub.borrow_mut().on_run_finished(at);
        }
    }
}

impl fmt::Debug for SharedProbes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.hub {
            Some(hub) => write!(f, "SharedProbes({} probes)", hub.borrow().len()),
            None => write!(f, "SharedProbes(off)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        events: Vec<(Cycle, &'static str)>,
        finished_at: Option<Cycle>,
    }

    /// A counting probe over shared state, the handle pattern probes use.
    #[derive(Clone, Default)]
    struct CountingProbe(Rc<RefCell<Counter>>);

    impl Probe for CountingProbe {
        fn on_event(&mut self, at: Cycle, event: &ProbeEvent) {
            self.0.borrow_mut().events.push((at, event.kind()));
        }

        fn on_run_finished(&mut self, at: Cycle) {
            self.0.borrow_mut().finished_at = Some(at);
        }
    }

    #[test]
    fn hub_broadcasts_in_attachment_order() {
        let a = CountingProbe::default();
        let b = CountingProbe::default();
        let mut hub = ProbeHub::new();
        hub.attach(Box::new(a.clone()));
        hub.attach(Box::new(b.clone()));
        assert_eq!(hub.len(), 2);
        hub.on_event(7, &ProbeEvent::FaultRaised { page: PageId::new(1) });
        hub.on_run_finished(9);
        for p in [&a, &b] {
            let c = p.0.borrow();
            assert_eq!(c.events, vec![(7, "fault_raised")]);
            assert_eq!(c.finished_at, Some(9));
        }
    }

    #[test]
    fn disabled_handle_never_builds_the_event() {
        let probes = SharedProbes::disabled();
        assert!(!probes.enabled());
        probes.emit_with(0, || unreachable!("event built on the no-probe path"));
        probes.finish(0);
    }

    #[test]
    fn empty_hub_collapses_to_disabled() {
        let probes = SharedProbes::new(ProbeHub::new());
        assert!(!probes.enabled());
    }

    #[test]
    fn clones_share_one_hub() {
        let counter = CountingProbe::default();
        let mut hub = ProbeHub::new();
        hub.attach(Box::new(counter.clone()));
        let a = SharedProbes::new(hub);
        let b = a.clone();
        a.emit_with(1, || ProbeEvent::FaultRaised { page: PageId::new(1) });
        b.emit_with(2, || ProbeEvent::PrematureEviction { page: PageId::new(1) });
        let seen: Vec<_> = counter.0.borrow().events.clone();
        assert_eq!(seen, vec![(1, "fault_raised"), (2, "premature_eviction")]);
    }

    #[test]
    fn kinds_are_stable_snake_case() {
        let ev = ProbeEvent::BatchOpened { batch: 0, faults: 1, prefetches: 0, handling_cycles: 5 };
        assert_eq!(ev.kind(), "batch_opened");
        assert_eq!(EvictionCause::Preemptive.label(), "preemptive");
    }
}
