//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds offline, so it cannot depend on the `rand` crate;
//! everything that needs seeded randomness — graph generation, fault
//! injection — uses [`DetRng`] instead. The generator is splitmix64
//! (Steele et al., "Fast splittable pseudorandom number generators"), which
//! passes BigCrush for this output width, is platform-independent, and is
//! trivially reproducible from a `u64` seed — the property the simulator's
//! bit-for-bit determinism tests rely on.

use std::fmt;

/// A seeded, deterministic splitmix64 generator.
///
/// The same seed always produces the same stream on every platform.
///
/// # Examples
///
/// ```
/// use batmem_types::rng::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl fmt::Debug for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetRng").finish_non_exhaustive()
    }
}

impl DetRng {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Advances the generator past the next `n` raw draws in O(1).
    ///
    /// splitmix64's state walks a fixed additive sequence (one golden-ratio
    /// increment per [`next_u64`](Self::next_u64)), so jumping `n` draws
    /// ahead is a single multiply-add. This is what lets parallel graph
    /// generation hand each worker a chunk-aligned generator that produces
    /// exactly the draws the serial generator would have at that offset.
    ///
    /// # Examples
    ///
    /// ```
    /// use batmem_types::rng::DetRng;
    ///
    /// let mut serial = DetRng::new(9);
    /// for _ in 0..1000 {
    ///     serial.next_u64();
    /// }
    /// let mut jumped = DetRng::new(9);
    /// jumped.skip(1000);
    /// assert_eq!(serial.next_u64(), jumped.next_u64());
    /// ```
    pub fn skip(&mut self, n: u64) {
        self.state = self.state.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    ///
    /// Uses 128-bit arithmetic so the modulo bias is negligible for any
    /// bound the simulator uses.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "DetRng::below requires a nonzero bound");
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        (wide % u128::from(bound)) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "DetRng::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "DetRng::range_inclusive requires lo <= hi");
        let span = u128::from(hi - lo) + 1;
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        lo + (wide % span) as u64
    }

    /// Bernoulli draw: `true` with probability `percent / 100`.
    pub fn chance_percent(&mut self, percent: u8) -> bool {
        match percent {
            0 => false,
            p if p >= 100 => true,
            p => self.below(100) < u64::from(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(8);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_draws_in_range() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
            let r = rng.range(3, 9);
            assert!((3..9).contains(&r));
            let ri = rng.range_inclusive(3, 9);
            assert!((3..=9).contains(&ri));
        }
    }

    #[test]
    fn skip_matches_serial_draws() {
        for n in [0u64, 1, 7, 1000, 1 << 40] {
            let mut serial = DetRng::new(42);
            for _ in 0..n.min(2000) {
                serial.next_u64();
            }
            let mut jumped = DetRng::new(42);
            jumped.skip(n.min(2000));
            assert_eq!(serial.next_u64(), jumped.next_u64(), "skip({n}) diverged");
        }
        // Composition: skip(a) then skip(b) equals skip(a + b).
        let mut a = DetRng::new(7);
        a.skip(3);
        a.skip(5);
        let mut b = DetRng::new(7);
        b.skip(8);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_percent_extremes() {
        let mut rng = DetRng::new(11);
        for _ in 0..100 {
            assert!(!rng.chance_percent(0));
            assert!(rng.chance_percent(100));
        }
        // 50% lands strictly between the extremes over a long run.
        let hits = (0..1000).filter(|_| rng.chance_percent(50)).count();
        assert!((300..700).contains(&hits), "hits = {hits}");
    }
}
