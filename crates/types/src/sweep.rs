//! Vocabulary for the parallel sweep service: stable config hashing, cell
//! identities, typed per-cell outcomes, and bounded retry backoff.
//!
//! The sweep runner in `batmem-bench` expands a cartesian plan into cells,
//! each identified by a [`CellId`] — a stable 64-bit content hash of the
//! cell's full configuration. The hash must be reproducible across
//! processes and Rust versions (it keys the on-disk artifact store that
//! crash-resume depends on), so it is a hand-rolled FNV-1a rather than
//! `std::hash`, whose `SipHash` keys are randomized per process in spirit
//! and unspecified across releases in letter.

use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with a stable, documented output:
/// the same byte stream always produces the same hash, in any process, on
/// any platform, under any Rust release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a string field followed by a `\x1f` separator, so adjacent
    /// fields cannot collide by concatenation (`("ab","c")` ≠ `("a","bc")`).
    pub fn field(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0x1f])
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// The identity of one sweep cell: a stable content hash of its full
/// configuration (workload, policy, scale, ratio, seed, injection, …).
///
/// Rendered as 16 lowercase hex digits; that rendering is the artifact
/// store's file-name key, so it round-trips through [`FromStr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(u64);

impl CellId {
    /// Wraps a precomputed stable hash.
    pub fn from_hash(hash: u64) -> Self {
        Self(hash)
    }

    /// The raw 64-bit hash.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl FromStr for CellId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 16 {
            return Err(format!("cell id must be 16 hex digits, got `{s}`"));
        }
        u64::from_str_radix(s, 16)
            .map(CellId)
            .map_err(|e| format!("cell id `{s}` is not hex: {e}"))
    }
}

/// How one sweep cell ended, as recorded in the artifact store and the
/// quarantine report. The discriminant is stable text (see
/// [`OutcomeKind::label`]) so artifacts survive enum evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// The run finished and produced a metrics row.
    Completed,
    /// The run returned a typed error (`SimError`/harness error).
    Failed,
    /// The run exceeded its wall-clock deadline and was abandoned.
    TimedOut,
    /// The run panicked; the panic was caught and demoted to this record.
    Panicked,
}

impl OutcomeKind {
    /// Stable lowercase discriminant used in artifacts.
    pub fn label(self) -> &'static str {
        match self {
            OutcomeKind::Completed => "completed",
            OutcomeKind::Failed => "failed",
            OutcomeKind::TimedOut => "timed_out",
            OutcomeKind::Panicked => "panicked",
        }
    }

    /// Parses the stable discriminant back; `None` for unknown text.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "completed" => OutcomeKind::Completed,
            "failed" => OutcomeKind::Failed,
            "timed_out" => OutcomeKind::TimedOut,
            "panicked" => OutcomeKind::Panicked,
            _ => return None,
        })
    }

    /// Whether a cell with this outcome is terminal-successful (skipped on
    /// resume rather than re-run).
    pub fn is_success(self) -> bool {
        self == OutcomeKind::Completed
    }
}

impl fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Bounded exponential backoff: attempt `n` (1-based) waits
/// `base × 2^(n-1)`, capped at `cap`.
///
/// The schedule is fully determined by the config — no jitter — so retry
/// timing is reproducible in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Default for Backoff {
    /// 100 ms doubling up to 5 s — a sweep-friendly schedule that retries
    /// transient failures quickly without hammering a persistently broken
    /// cell.
    fn default() -> Self {
        Self { base: Duration::from_millis(100), cap: Duration::from_secs(5) }
    }
}

impl Backoff {
    /// A schedule starting at `base` and capped at `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self { base, cap }
    }

    /// The delay before retry attempt `attempt` (1-based: the first retry
    /// is attempt 1). Attempt 0 returns zero.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = 1u32 << (attempt - 1).min(20);
        self.base.saturating_mul(factor).min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_separation_prevents_concat_collisions() {
        let mut a = StableHasher::new();
        a.field("ab").field("c");
        let mut b = StableHasher::new();
        b.field("a").field("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn cell_id_roundtrips_through_hex() {
        let id = CellId::from_hash(0x0123_4567_89ab_cdef);
        let s = id.to_string();
        assert_eq!(s, "0123456789abcdef");
        assert_eq!(s.parse::<CellId>().unwrap(), id);
        assert!("xyz".parse::<CellId>().is_err());
        assert!("0123".parse::<CellId>().is_err());
    }

    #[test]
    fn outcome_labels_roundtrip() {
        for k in [
            OutcomeKind::Completed,
            OutcomeKind::Failed,
            OutcomeKind::TimedOut,
            OutcomeKind::Panicked,
        ] {
            assert_eq!(OutcomeKind::from_label(k.label()), Some(k));
        }
        assert_eq!(OutcomeKind::from_label("exploded"), None);
        assert!(OutcomeKind::Completed.is_success());
        assert!(!OutcomeKind::TimedOut.is_success());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1));
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(1), Duration::from_millis(100));
        assert_eq!(b.delay(2), Duration::from_millis(200));
        assert_eq!(b.delay(3), Duration::from_millis(400));
        assert_eq!(b.delay(4), Duration::from_millis(800));
        assert_eq!(b.delay(5), Duration::from_secs(1)); // capped
        assert_eq!(b.delay(30), Duration::from_secs(1)); // shift-safe
    }
}
