//! Simulated time.
//!
//! The simulator clocks the GPU core at 1 GHz (Table 1), so **one cycle is
//! one nanosecond**. All latencies, bandwidth computations, and timestamps in
//! the workspace are expressed in [`Cycle`]s.

/// A simulated clock value or duration, in GPU core cycles (1 cycle = 1 ns).
pub type Cycle = u64;

/// Converts microseconds to cycles at the 1 GHz core clock.
///
/// # Examples
///
/// ```
/// assert_eq!(batmem_types::time::us(20), 20_000);
/// ```
pub const fn us(micros: u64) -> Cycle {
    micros * 1_000
}

/// Converts nanoseconds to cycles (identity at 1 GHz, kept for clarity).
pub const fn ns(nanos: u64) -> Cycle {
    nanos
}

/// Returns the number of cycles needed to transfer `bytes` at
/// `bytes_per_sec`, rounding up and never returning zero for nonzero sizes.
///
/// # Examples
///
/// ```
/// // A 64 KB page over PCIe 3.0 x16 (15.75 GB/s) takes ~4161 ns.
/// let cycles = batmem_types::time::transfer_cycles(64 * 1024, 15_750_000_000);
/// assert_eq!(cycles, 4162);
/// ```
pub const fn transfer_cycles(bytes: u64, bytes_per_sec: u64) -> Cycle {
    if bytes == 0 {
        return 0;
    }
    // cycles = bytes / (bytes_per_sec / 1e9) = bytes * 1e9 / bytes_per_sec
    let num = bytes as u128 * 1_000_000_000u128;
    let den = bytes_per_sec as u128;
    num.div_ceil(den) as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_converts_at_1ghz() {
        assert_eq!(us(1), 1_000);
        assert_eq!(us(50), 50_000);
    }

    #[test]
    fn transfer_cycles_rounds_up() {
        // 1 byte at 2 GB/s is half a nanosecond; must round to 1 cycle.
        assert_eq!(transfer_cycles(1, 2_000_000_000), 1);
    }

    #[test]
    fn transfer_cycles_zero_bytes_is_free() {
        assert_eq!(transfer_cycles(0, 15_750_000_000), 0);
    }

    #[test]
    fn transfer_cycles_scales_linearly() {
        let one = transfer_cycles(64 * 1024, 15_750_000_000);
        let ten = transfer_cycles(640 * 1024, 15_750_000_000);
        assert!(ten >= 10 * one - 10 && ten <= 10 * one);
    }
}
