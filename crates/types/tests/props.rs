//! Property-based tests for address arithmetic and time conversion.

use batmem_types::addr::{PageGeometry, PageId, RegionId, VirtAddr};
use batmem_types::time::transfer_cycles;
use proptest::prelude::*;

proptest! {
    #[test]
    fn page_region_consistency(raw in 0u64..(1 << 40), page_shift in 12u32..20) {
        let g = PageGeometry::base_region(page_shift, page_shift + 5).unwrap();
        let a = VirtAddr::new(raw);
        // addr -> region == addr -> page -> region.
        prop_assert_eq!(g.region_of(a), g.region_of_page(g.page_of(a)));
        // Page base address is within the page.
        let p = g.page_of(a);
        let base = g.page_base(p);
        prop_assert!(base.raw() <= raw);
        prop_assert!(raw - base.raw() < g.page_bytes());
    }

    #[test]
    fn region_first_page_round_trips(idx in 0u64..(1 << 30)) {
        let g = PageGeometry::default();
        let r = RegionId::new(idx);
        let first = g.first_page(r);
        prop_assert_eq!(g.region_of_page(first), r);
        // The page just before belongs to the previous region.
        if idx > 0 {
            let before = PageId::new(first.index() - 1);
            prop_assert_eq!(g.region_of_page(before).index(), idx - 1);
        }
    }

    #[test]
    fn large_tier_nests_between_pages_and_regions(
        raw in 0u64..(1 << 40),
        base in 12u32..16,
        large_gap in 0u32..4,
        region_gap in 0u32..4,
    ) {
        let g = PageGeometry::new(base, base + large_gap, base + large_gap + region_gap).unwrap();
        let a = VirtAddr::new(raw);
        let p = g.page_of(a);
        // A page's large group starts at or before the page and spans it.
        let group = g.large_of_page(p);
        let first = g.first_page_of_large(group);
        prop_assert!(first <= p);
        prop_assert!(p.index() - first.index() < g.pages_per_large());
        // Tier sizes multiply out: pages/large x larges/region = pages/region.
        prop_assert_eq!(g.pages_per_large() * g.larges_per_region(), g.pages_per_region());
        // The large tier refines the region tier.
        prop_assert_eq!(g.region_of_page(first), g.region_of_page(p));
    }

    #[test]
    fn transfer_cycles_is_monotone_in_bytes(
        a in 0u64..(1 << 30),
        b in 0u64..(1 << 30),
        bw in 1_000_000u64..100_000_000_000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(transfer_cycles(lo, bw) <= transfer_cycles(hi, bw));
    }

    #[test]
    fn transfer_cycles_is_antitone_in_bandwidth(
        bytes in 1u64..(1 << 30),
        bw1 in 1_000_000u64..100_000_000_000,
        bw2 in 1_000_000u64..100_000_000_000,
    ) {
        let (slow, fast) = if bw1 <= bw2 { (bw1, bw2) } else { (bw2, bw1) };
        prop_assert!(transfer_cycles(bytes, fast) <= transfer_cycles(bytes, slow));
    }

    #[test]
    fn transfer_cycles_never_undercounts(
        bytes in 1u64..(1 << 30),
        bw in 1_000_000u64..100_000_000_000,
    ) {
        // cycles * bw >= bytes * 1e9 (round-up semantics).
        let c = transfer_cycles(bytes, bw) as u128;
        let need = bytes as u128 * 1_000_000_000;
        let capacity = c * bw as u128;
        let capacity_minus_one = (c - 1) * bw as u128;
        prop_assert!(capacity >= need);
        // And it is tight to within one cycle.
        prop_assert!(capacity_minus_one < need);
    }
}
