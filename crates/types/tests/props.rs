//! Property-based tests for address arithmetic and time conversion.

use batmem_types::addr::{PageId, RegionId, VirtAddr};
use batmem_types::time::transfer_cycles;
use proptest::prelude::*;

proptest! {
    #[test]
    fn page_region_consistency(raw in 0u64..(1 << 40), page_shift in 12u32..20) {
        let region_shift = page_shift + 5;
        let a = VirtAddr::new(raw);
        // addr -> region == addr -> page -> region.
        prop_assert_eq!(
            a.region(region_shift),
            a.page(page_shift).region(page_shift, region_shift)
        );
        // Page base address is within the page.
        let p = a.page(page_shift);
        let base = p.base_addr(page_shift);
        prop_assert!(base.raw() <= raw);
        prop_assert!(raw - base.raw() < (1 << page_shift));
    }

    #[test]
    fn region_first_page_round_trips(idx in 0u64..(1 << 30)) {
        let r = RegionId::new(idx);
        let first = r.first_page(16, 21);
        prop_assert_eq!(first.region(16, 21), r);
        // The page just before belongs to the previous region.
        if idx > 0 {
            let before = PageId::new(first.index() - 1);
            prop_assert_eq!(before.region(16, 21).index(), idx - 1);
        }
    }

    #[test]
    fn transfer_cycles_is_monotone_in_bytes(
        a in 0u64..(1 << 30),
        b in 0u64..(1 << 30),
        bw in 1_000_000u64..100_000_000_000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(transfer_cycles(lo, bw) <= transfer_cycles(hi, bw));
    }

    #[test]
    fn transfer_cycles_is_antitone_in_bandwidth(
        bytes in 1u64..(1 << 30),
        bw1 in 1_000_000u64..100_000_000_000,
        bw2 in 1_000_000u64..100_000_000_000,
    ) {
        let (slow, fast) = if bw1 <= bw2 { (bw1, bw2) } else { (bw2, bw1) };
        prop_assert!(transfer_cycles(bytes, fast) <= transfer_cycles(bytes, slow));
    }

    #[test]
    fn transfer_cycles_never_undercounts(
        bytes in 1u64..(1 << 30),
        bw in 1_000_000u64..100_000_000_000,
    ) {
        // cycles * bw >= bytes * 1e9 (round-up semantics).
        let c = transfer_cycles(bytes, bw) as u128;
        let need = bytes as u128 * 1_000_000_000;
        let capacity = c * bw as u128;
        let capacity_minus_one = (c - 1) * bw as u128;
        prop_assert!(capacity >= need);
        // And it is tight to within one cycle.
        prop_assert!(capacity_minus_one < need);
    }
}
