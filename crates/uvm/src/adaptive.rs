//! The adaptive closed-loop oversubscription policy
//! (`oversubscription=adaptive[:window]`).
//!
//! The first policy that *consumes* the probe stream as a sensor, in the
//! spirit of the intelligent-framework line of work (PAPERS.md, arXiv
//! 2204.02974). An [`AdaptiveProbe`] attaches to the run's probe hub and
//! maintains per-epoch counters — distinct faulted pages (an
//! [`EpochPageSet`] whose O(1) epoch bump *is* the epoch roll), evictions,
//! and premature refaults. At each epoch boundary it publishes three
//! boolean actuation signals through the lock-free [`AdaptiveSignals`]
//! handle:
//!
//! * **throttle-prefetch** (premature ≥ 25% of evictions): prefetched pages
//!   are being evicted before use, so the formation stage drops tree
//!   prefetches for the epoch (density → 0);
//! * **eager-eviction** (faults active, premature < 10%): evictions are
//!   healthy, so formation runs ETC-style proactive eviction ahead of batch
//!   demand even when the static policy did not ask for it;
//! * **pressure** (premature ≥ 50%): severe thrash — the
//!   [`AdaptiveController`] lowers the effective TO degree by one and
//!   disallows context switch-ins until the epoch signals recover.
//!
//! # Determinism
//!
//! The loop reads only in-sim probe events, which are emitted in
//! deterministic order at deterministic cycles; the signals are plain
//! shared state flipped at epoch boundaries derived from those cycles. Two
//! runs of the same configuration therefore see identical signal
//! trajectories — `adaptive` is as reproducible as any static policy. With
//! an unreachable window (`adaptive:18446744073709551615`) no epoch ever
//! closes, no signal ever fires, and the run is byte-identical to the
//! static `to` baseline (pinned by `tests/adaptive.rs`).

use crate::lifetime::LifetimeSample;
use crate::oversub::OversubController;
use crate::strategies::OversubscriptionHandler;
use batmem_types::dense::EpochPageSet;
use batmem_types::policy::ToConfig;
use batmem_types::probe::{Probe, ProbeEvent};
use batmem_types::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Default adaptive epoch length in cycles (two lifetime-sample periods).
pub const ADAPTIVE_DEFAULT_WINDOW: Cycle = 200_000;

#[derive(Debug, Default)]
struct AdaptiveShared {
    throttle_prefetch: AtomicBool,
    eager_eviction: AtomicBool,
    pressure: AtomicBool,
}

/// The cloneable signal handle shared between the [`AdaptiveProbe`]
/// (writer, lives in the probe hub) and the pipeline + controller
/// (readers). Atomics because the handler half must be `Send` while the
/// probe half lives behind the hub's `Rc`.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveSignals {
    shared: Arc<AdaptiveShared>,
}

impl AdaptiveSignals {
    /// A fresh handle with all signals quiet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the formation stage should drop prefetches this epoch.
    pub fn throttle_prefetch(&self) -> bool {
        self.shared.throttle_prefetch.load(Ordering::Relaxed)
    }

    /// Whether the formation stage should evict proactively this epoch.
    pub fn eager_eviction(&self) -> bool {
        self.shared.eager_eviction.load(Ordering::Relaxed)
    }

    /// Whether the controller should back off the TO degree this epoch.
    pub fn pressure(&self) -> bool {
        self.shared.pressure.load(Ordering::Relaxed)
    }

    /// Publishes one epoch's decisions (the probe's epoch-boundary write).
    pub fn publish(&self, throttle_prefetch: bool, eager_eviction: bool, pressure: bool) {
        self.shared.throttle_prefetch.store(throttle_prefetch, Ordering::Relaxed);
        self.shared.eager_eviction.store(eager_eviction, Ordering::Relaxed);
        self.shared.pressure.store(pressure, Ordering::Relaxed);
    }
}

/// The sensor half of the adaptive policy: counts faults, evictions and
/// premature refaults per epoch and publishes actuation signals at epoch
/// boundaries.
#[derive(Debug)]
pub struct AdaptiveProbe {
    signals: AdaptiveSignals,
    window: Cycle,
    epoch_end: Cycle,
    faulted: EpochPageSet,
    premature: u64,
    evictions: u64,
}

impl AdaptiveProbe {
    /// A probe closing an epoch every `window` cycles (must be ≥ 1,
    /// enforced at the registry parse site).
    pub fn new(window: Cycle, signals: AdaptiveSignals) -> Self {
        Self {
            signals,
            window,
            epoch_end: window,
            faulted: EpochPageSet::new(),
            premature: 0,
            evictions: 0,
        }
    }

    /// Closes every epoch that ended at or before `at`. The counters
    /// accumulated so far all belong to the epoch that just ended (events
    /// arrive in nondecreasing `at` order), so one publish covers it; fully
    /// quiet epochs after it decay the signals back to quiet without
    /// looping per window.
    fn close_epochs(&mut self, at: Cycle) {
        if at < self.epoch_end {
            return;
        }
        let faults = self.faulted.len() as u64;
        let ev = self.evictions;
        let pm = self.premature;
        let throttle = ev > 0 && pm * 4 >= ev;
        let pressure = ev > 0 && pm * 2 >= ev;
        let eager = faults > 0 && ev > 0 && pm * 10 <= ev;
        self.signals.publish(throttle, eager, pressure);
        let behind = at - self.epoch_end;
        if behind >= self.window {
            // At least one fully-empty epoch elapsed after the active one.
            self.signals.publish(false, false, false);
        }
        self.faulted.clear();
        self.premature = 0;
        self.evictions = 0;
        let skip = behind / self.window + 1;
        self.epoch_end = self.epoch_end.saturating_add(self.window.saturating_mul(skip));
    }
}

impl Probe for AdaptiveProbe {
    fn on_event(&mut self, at: Cycle, event: &ProbeEvent) {
        self.close_epochs(at);
        match event {
            ProbeEvent::FaultRaised { page } => {
                self.faulted.insert(*page);
            }
            ProbeEvent::PrematureEviction { .. } => self.premature += 1,
            ProbeEvent::EvictionBegun { .. } => self.evictions += 1,
            _ => {}
        }
    }
}

/// The actuator half: a TO controller whose effective degree and
/// switch-in gate back off while the probe signals pressure.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    inner: OversubController,
    signals: AdaptiveSignals,
}

impl AdaptiveController {
    /// Wraps the static TO controller built from `config` with the
    /// pressure signal of `signals`.
    pub fn new(config: ToConfig, signals: AdaptiveSignals) -> Self {
        Self { inner: OversubController::new(config), signals }
    }
}

impl OversubscriptionHandler for AdaptiveController {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn degree(&self) -> u32 {
        let d = self.inner.degree();
        if self.signals.pressure() {
            d.saturating_sub(1)
        } else {
            d
        }
    }

    fn switching_allowed(&self) -> bool {
        self.inner.switching_allowed() && !self.signals.pressure()
    }

    fn on_sample(&mut self, sample: LifetimeSample) {
        self.inner.on_sample(sample);
    }

    fn decrements(&self) -> u64 {
        self.inner.decrements()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmem_types::PageId;

    fn fault(n: u64) -> ProbeEvent {
        ProbeEvent::FaultRaised { page: PageId::new(n) }
    }

    fn eviction(n: u64) -> ProbeEvent {
        ProbeEvent::EvictionBegun {
            page: PageId::new(n),
            cause: batmem_types::probe::EvictionCause::Demand,
            forced_pinned: false,
            start: 0,
        }
    }

    fn premature(n: u64) -> ProbeEvent {
        ProbeEvent::PrematureEviction { page: PageId::new(n) }
    }

    #[test]
    fn quiet_until_the_first_epoch_closes() {
        let signals = AdaptiveSignals::new();
        let mut probe = AdaptiveProbe::new(1_000, signals.clone());
        for i in 0..10 {
            probe.on_event(i, &fault(i));
            probe.on_event(i, &eviction(i));
            probe.on_event(i, &premature(i));
        }
        assert!(!signals.throttle_prefetch());
        assert!(!signals.pressure());
        // The event at cycle 1_000 closes the epoch: 100% premature.
        probe.on_event(1_000, &fault(99));
        assert!(signals.throttle_prefetch());
        assert!(signals.pressure());
        assert!(!signals.eager_eviction());
    }

    #[test]
    fn healthy_epoch_goes_eager_and_thrashy_epoch_backs_off() {
        let signals = AdaptiveSignals::new();
        let mut probe = AdaptiveProbe::new(1_000, signals.clone());
        // Epoch 1: 20 evictions, 1 premature (5%) with fault activity.
        for i in 0..20 {
            probe.on_event(i, &fault(i));
            probe.on_event(i, &eviction(i));
        }
        probe.on_event(30, &premature(0));
        probe.on_event(1_000, &fault(100));
        assert!(signals.eager_eviction());
        assert!(!signals.throttle_prefetch());
        assert!(!signals.pressure());
        // Epoch 2: 4 evictions, 3 premature (75%).
        for i in 0..4 {
            probe.on_event(1_100, &eviction(i));
        }
        for i in 0..3 {
            probe.on_event(1_200, &premature(i));
        }
        probe.on_event(2_000, &fault(101));
        assert!(!signals.eager_eviction());
        assert!(signals.throttle_prefetch());
        assert!(signals.pressure());
    }

    #[test]
    fn empty_epochs_decay_signals_without_looping() {
        let signals = AdaptiveSignals::new();
        let mut probe = AdaptiveProbe::new(10, signals.clone());
        probe.on_event(0, &eviction(0));
        probe.on_event(0, &premature(0));
        // A huge jump: the active epoch published, then decayed to quiet.
        probe.on_event(u64::MAX - 1, &fault(1));
        assert!(!signals.pressure());
        assert!(!signals.throttle_prefetch());
        // And the probe keeps accepting events without overflow.
        probe.on_event(u64::MAX, &fault(2));
    }

    #[test]
    fn infinite_window_never_publishes() {
        let signals = AdaptiveSignals::new();
        let mut probe = AdaptiveProbe::new(u64::MAX, signals.clone());
        for i in 0..100 {
            probe.on_event(i * 1_000_000, &eviction(i));
            probe.on_event(i * 1_000_000, &premature(i));
        }
        assert!(!signals.pressure());
        assert!(!signals.throttle_prefetch());
        assert!(!signals.eager_eviction());
    }

    #[test]
    fn controller_matches_static_to_when_quiet_and_backs_off_under_pressure() {
        let signals = AdaptiveSignals::new();
        let adaptive = AdaptiveController::new(ToConfig::enabled(), signals.clone());
        let baseline = OversubController::new(ToConfig::enabled());
        assert_eq!(
            OversubscriptionHandler::degree(&adaptive),
            OversubscriptionHandler::degree(&baseline)
        );
        assert_eq!(
            OversubscriptionHandler::switching_allowed(&adaptive),
            OversubscriptionHandler::switching_allowed(&baseline)
        );
        signals.publish(false, false, true);
        assert_eq!(OversubscriptionHandler::degree(&adaptive), 0);
        assert!(!OversubscriptionHandler::switching_allowed(&adaptive));
        signals.publish(false, false, false);
        assert_eq!(OversubscriptionHandler::degree(&adaptive), 1);
    }
}
