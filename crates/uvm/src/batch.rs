//! Per-batch timing records.
//!
//! The paper defines (§2.2, Fig. 2):
//!
//! * **GPU runtime fault handling time** — from the start of a batch's
//!   processing to the start of the batch's first page transfer;
//! * **batch processing time** — from the start of a batch's processing to
//!   the migration of its last page.

use batmem_types::Cycle;

/// The timing and composition of one processed fault batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// Sequence number (0-based).
    pub id: u64,
    /// When the runtime began processing the batch.
    pub start: Cycle,
    /// When preprocessing/page-table walks finished and migration
    /// scheduling began.
    pub handling_done: Cycle,
    /// When the first page transfer actually started on the PCIe pipe
    /// (≥ `handling_done`; later if the pipe was still draining).
    pub first_migration_start: Cycle,
    /// When the batch's last page arrived in device memory.
    pub end: Cycle,
    /// Distinct faulted pages serviced.
    pub faults: u32,
    /// Prefetched pages appended by the prefetcher.
    pub prefetches: u32,
    /// Evictions this batch scheduled.
    pub evictions: u32,
    /// Evictions that were forced to take a pinned (same-batch) page.
    pub forced_pinned_evictions: u32,
    /// Bytes migrated host-to-device.
    pub migrated_bytes: u64,
}

impl BatchRecord {
    /// Pages migrated (faults + prefetches).
    pub fn pages(&self) -> u32 {
        self.faults + self.prefetches
    }

    /// GPU runtime fault handling time (paper definition: batch start to
    /// first page transfer).
    pub fn fault_handling_time(&self) -> Cycle {
        self.first_migration_start - self.start
    }

    /// Batch processing time (batch start to last page migrated).
    pub fn processing_time(&self) -> Cycle {
        self.end - self.start
    }

    /// Per-page fault handling time (processing time / pages), the Fig. 3
    /// metric. Zero pages yields `None`.
    pub fn per_page_time(&self) -> Option<f64> {
        let p = self.pages();
        if p == 0 {
            None
        } else {
            Some(self.processing_time() as f64 / f64::from(p))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BatchRecord {
        BatchRecord {
            id: 0,
            start: 1000,
            handling_done: 21_000,
            first_migration_start: 21_000,
            end: 62_000,
            faults: 8,
            prefetches: 2,
            evictions: 3,
            forced_pinned_evictions: 0,
            migrated_bytes: 10 * 65_536,
        }
    }

    #[test]
    fn derived_times() {
        let r = record();
        assert_eq!(r.pages(), 10);
        assert_eq!(r.fault_handling_time(), 20_000);
        assert_eq!(r.processing_time(), 61_000);
        assert_eq!(r.per_page_time(), Some(6_100.0));
    }

    #[test]
    fn per_page_time_of_empty_batch() {
        let mut r = record();
        r.faults = 0;
        r.prefetches = 0;
        assert_eq!(r.per_page_time(), None);
    }

    #[test]
    fn handling_time_uses_actual_first_transfer() {
        let mut r = record();
        r.first_migration_start = 25_000; // pipe was busy
        assert_eq!(r.fault_handling_time(), 24_000);
    }
}
