//! The replayable page-fault buffer.
//!
//! The GPU MMU appends fault entries to a fixed-capacity buffer (Table 1:
//! 1024 entries); the runtime drains it at the start of each batch. Faults
//! raised while a batch is in flight accumulate for the next batch (§2.2).
//! On overflow the hardware drops the entry and relies on replay — the warp
//! stays stalled and the access re-faults after the current batch completes.
//! We model replay precisely by keeping overflowed pages in a side set that
//! merges into the next drain.

use batmem_types::{Cycle, PageId};
use std::collections::BTreeSet;

/// A recorded page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// The faulting page.
    pub page: PageId,
    /// When the fault was raised.
    pub at: Cycle,
}

/// The bounded, deduplicating fault buffer plus the replay side set.
#[derive(Debug, Clone)]
pub struct FaultBuffer {
    capacity: usize,
    entries: Vec<FaultEntry>,
    present: BTreeSet<PageId>,
    overflow: BTreeSet<PageId>,
    raised: u64,
    duplicates: u64,
    overflows: u64,
}

impl FaultBuffer {
    /// Creates a buffer holding up to `capacity` distinct pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "fault buffer needs capacity");
        Self {
            capacity: capacity as usize,
            entries: Vec::new(),
            present: BTreeSet::new(),
            overflow: BTreeSet::new(),
            raised: 0,
            duplicates: 0,
            overflows: 0,
        }
    }

    /// Records a fault for `page` at time `now`.
    ///
    /// Faults for pages already buffered are deduplicated (the runtime's
    /// preprocessing would coalesce them anyway); faults beyond capacity go
    /// to the replay set.
    pub fn record(&mut self, page: PageId, now: Cycle) {
        self.raised += 1;
        if self.present.contains(&page) || self.overflow.contains(&page) {
            self.duplicates += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(FaultEntry { page, at: now });
            self.present.insert(page);
        } else {
            self.overflow.insert(page);
            self.overflows += 1;
        }
    }

    /// Drains every buffered and replayed page for batch processing,
    /// returning them **sorted by ascending page address** — the first step
    /// of the runtime's `preprocess_fault_batch` (§2.2).
    pub fn drain_sorted(&mut self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.present.iter().copied().collect();
        pages.extend(self.overflow.iter().copied());
        pages.sort_unstable();
        pages.dedup();
        self.entries.clear();
        self.present.clear();
        self.overflow.clear();
        pages
    }

    /// Distinct pages currently pending (buffered + replay).
    pub fn pending(&self) -> usize {
        self.present.len() + self.overflow.len()
    }

    /// Whether any fault is pending.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Total faults raised (including duplicates and overflows).
    pub fn raised(&self) -> u64 {
        self.raised
    }

    /// Faults coalesced into an existing entry.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Faults that overflowed into the replay set.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn records_and_drains_sorted() {
        let mut b = FaultBuffer::new(8);
        b.record(p(5), 0);
        b.record(p(1), 1);
        b.record(p(3), 2);
        assert_eq!(b.pending(), 3);
        assert_eq!(b.drain_sorted(), vec![p(1), p(3), p(5)]);
        assert!(b.is_empty());
    }

    #[test]
    fn duplicates_coalesce() {
        let mut b = FaultBuffer::new(8);
        b.record(p(7), 0);
        b.record(p(7), 5);
        assert_eq!(b.pending(), 1);
        assert_eq!(b.duplicates(), 1);
        assert_eq!(b.raised(), 2);
    }

    #[test]
    fn overflow_goes_to_replay_set_and_merges_on_drain() {
        let mut b = FaultBuffer::new(2);
        b.record(p(1), 0);
        b.record(p(2), 0);
        b.record(p(3), 0); // overflows
        assert_eq!(b.overflows(), 1);
        assert_eq!(b.pending(), 3);
        assert_eq!(b.drain_sorted(), vec![p(1), p(2), p(3)]);
    }

    #[test]
    fn overflowed_page_still_dedupes() {
        let mut b = FaultBuffer::new(1);
        b.record(p(1), 0);
        b.record(p(9), 0); // overflow
        b.record(p(9), 1); // duplicate of overflowed page
        assert_eq!(b.duplicates(), 1);
        assert_eq!(b.overflows(), 1);
    }

    #[test]
    fn drain_resets_capacity() {
        let mut b = FaultBuffer::new(2);
        b.record(p(1), 0);
        b.record(p(2), 0);
        let _ = b.drain_sorted();
        b.record(p(3), 1);
        assert_eq!(b.overflows(), 0);
        assert_eq!(b.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = FaultBuffer::new(0);
    }
}
