//! Deterministic fault injection for robustness testing.
//!
//! The injector perturbs the UVM runtime at its natural seams — PCIe
//! scheduling, far-fault recording, prefetch expansion, and DMA completion
//! delivery — so tests can assert that every policy either completes or
//! returns a typed [`SimError`](batmem_types::SimError), never panicking or
//! hanging. All randomness comes from a seeded [`DetRng`], so a failing
//! injection run replays exactly.
//!
//! Injection is opt-in: a runtime without an injector behaves identically
//! to one built before this module existed (all hooks are `None`-guarded),
//! which keeps the cycle-exact unit tests and figure sweeps untouched.

use batmem_types::{Cycle, DetRng, SimError};

/// What to perturb and how hard. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectConfig {
    /// Seed for the injector's private RNG.
    pub seed: u64,
    /// Maximum extra cycles of jitter added to each host-to-device page
    /// transfer, drawn uniformly from `0..=pcie_jitter_cycles`.
    pub pcie_jitter_cycles: Cycle,
    /// Every Nth host-to-device transfer additionally stalls for
    /// [`pcie_stall_cycles`](Self::pcie_stall_cycles) (0 disables).
    pub pcie_stall_every: u64,
    /// Length of an injected PCIe stall.
    pub pcie_stall_cycles: Cycle,
    /// Percent chance (0–100) that a recorded far-fault is delivered twice,
    /// modeling the spurious duplicate faults real fault buffers produce.
    pub duplicate_fault_pct: u8,
    /// Percent chance (0–100) that each prefetch candidate is silently
    /// dropped from the batch before migration planning.
    pub drop_prefetch_pct: u8,
    /// Every Nth `PageArrived` completion event is lost (0 disables). This
    /// models a dropped DMA completion interrupt and is the lever the
    /// livelock/deadlock tests use to strand a batch forever.
    pub drop_arrival_every: u64,
}

impl InjectConfig {
    /// A moderately hostile preset: jitter on every transfer, a stall every
    /// 16th transfer, and a few percent of duplicate faults and dropped
    /// prefetches. Completion events are still delivered, so simulations
    /// must finish — just slower and along different batch boundaries.
    pub fn noisy(seed: u64) -> Self {
        Self {
            seed,
            pcie_jitter_cycles: 2_000,
            pcie_stall_every: 16,
            pcie_stall_cycles: 50_000,
            duplicate_fault_pct: 5,
            drop_prefetch_pct: 10,
            drop_arrival_every: 0,
        }
    }

    /// Drops every Nth DMA completion: the simulation strands the affected
    /// batch and must be caught by the engine's deadlock detection or the
    /// forward-progress watchdog, depending on the policy.
    pub fn lost_completions(seed: u64, every: u64) -> Self {
        Self { seed, drop_arrival_every: every, ..Self::default() }
    }

    /// The injection spec names [`InjectConfig::parse_spec`] understands,
    /// comma-separated — the `known` list of the typed error.
    pub fn known_specs() -> &'static str {
        "off, noisy[:seed], lost[:seed[:every]]"
    }

    /// Parses a CLI injection spec (`--inject noisy:42`) into a config.
    ///
    /// Spec syntax mirrors the policy registry's `name[:param...]`:
    ///
    /// * `off` — no injection (`None`).
    /// * `noisy` / `noisy:<seed>` — [`InjectConfig::noisy`] (default seed
    ///   42).
    /// * `lost` / `lost:<seed>` / `lost:<seed>:<every>` —
    ///   [`InjectConfig::lost_completions`] (default seed 42, every 3rd
    ///   arrival dropped).
    ///
    /// # Errors
    ///
    /// Unknown preset names and malformed parameters return
    /// [`SimError::UnknownPolicy`] on the `inject` axis, listing
    /// [`InjectConfig::known_specs`] — same contract as the policy
    /// registry's spec lookups.
    pub fn parse_spec(spec: &str) -> Result<Option<Self>, SimError> {
        let unknown = || SimError::UnknownPolicy {
            axis: "inject",
            name: spec.to_string(),
            known: Self::known_specs().to_string(),
        };
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("");
        let mut num = |default: u64| -> Result<u64, SimError> {
            match parts.next() {
                None => Ok(default),
                Some(p) => p.parse().map_err(|_| unknown()),
            }
        };
        let cfg = match name {
            "off" => None,
            "noisy" => Some(Self::noisy(num(42)?)),
            "lost" => {
                let seed = num(42)?;
                let every = num(3)?;
                Some(Self::lost_completions(seed, every))
            }
            _ => return Err(unknown()),
        };
        if parts.next().is_some() {
            return Err(unknown()); // trailing parameters
        }
        Ok(cfg)
    }
}

/// Counters for what the injector actually did, for test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectStats {
    /// Total extra cycles added to transfers (jitter + stalls).
    pub extra_transfer_cycles: Cycle,
    /// Transfers that hit an injected stall.
    pub stalls: u64,
    /// Faults delivered twice.
    pub duplicated_faults: u64,
    /// Prefetch candidates removed from batches.
    pub dropped_prefetches: u64,
    /// `PageArrived` events swallowed.
    pub dropped_arrivals: u64,
}

/// The runtime-side injector: consulted at each hook point.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: InjectConfig,
    rng: DetRng,
    transfers: u64,
    arrivals: u64,
    stats: InjectStats,
}

impl FaultInjector {
    /// Creates an injector with its own RNG stream seeded from the config.
    pub fn new(cfg: InjectConfig) -> Self {
        Self {
            cfg,
            rng: DetRng::new(cfg.seed ^ 0xfa57_1e57_1a7e_5eed),
            transfers: 0,
            arrivals: 0,
            stats: InjectStats::default(),
        }
    }

    /// Extra latency to add to the next host-to-device page transfer.
    pub fn transfer_delay(&mut self) -> Cycle {
        self.transfers += 1;
        let mut extra = 0;
        if self.cfg.pcie_jitter_cycles > 0 {
            extra += self.rng.range_inclusive(0, self.cfg.pcie_jitter_cycles);
        }
        if self.cfg.pcie_stall_every > 0 && self.transfers.is_multiple_of(self.cfg.pcie_stall_every) {
            extra += self.cfg.pcie_stall_cycles;
            self.stats.stalls += 1;
        }
        self.stats.extra_transfer_cycles += extra;
        extra
    }

    /// Whether the fault just recorded should be delivered a second time.
    pub fn duplicate_fault(&mut self) -> bool {
        let dup = self.rng.chance_percent(self.cfg.duplicate_fault_pct);
        if dup {
            self.stats.duplicated_faults += 1;
        }
        dup
    }

    /// Whether to drop this prefetch candidate from the batch.
    pub fn drop_prefetch(&mut self) -> bool {
        let drop = self.rng.chance_percent(self.cfg.drop_prefetch_pct);
        if drop {
            self.stats.dropped_prefetches += 1;
        }
        drop
    }

    /// Whether to swallow the next `PageArrived` completion event.
    pub fn drop_arrival(&mut self) -> bool {
        self.arrivals += 1;
        let drop =
            self.cfg.drop_arrival_every > 0 && self.arrivals.is_multiple_of(self.cfg.drop_arrival_every);
        if drop {
            self.stats.dropped_arrivals += 1;
        }
        drop
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> InjectStats {
        self.stats
    }

    /// The config this injector was built from.
    pub fn config(&self) -> InjectConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_injects_nothing() {
        let mut inj = FaultInjector::new(InjectConfig::default());
        for _ in 0..1000 {
            assert_eq!(inj.transfer_delay(), 0);
            assert!(!inj.duplicate_fault());
            assert!(!inj.drop_prefetch());
            assert!(!inj.drop_arrival());
        }
        assert_eq!(inj.stats(), InjectStats::default());
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = InjectConfig::noisy(42);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        for _ in 0..500 {
            assert_eq!(a.transfer_delay(), b.transfer_delay());
            assert_eq!(a.duplicate_fault(), b.duplicate_fault());
            assert_eq!(a.drop_prefetch(), b.drop_prefetch());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn stalls_fire_on_schedule() {
        let cfg = InjectConfig {
            seed: 7,
            pcie_stall_every: 4,
            pcie_stall_cycles: 1_000,
            ..InjectConfig::default()
        };
        let mut inj = FaultInjector::new(cfg);
        let delays: Vec<Cycle> = (0..8).map(|_| inj.transfer_delay()).collect();
        assert_eq!(delays, vec![0, 0, 0, 1_000, 0, 0, 0, 1_000]);
        assert_eq!(inj.stats().stalls, 2);
        assert_eq!(inj.stats().extra_transfer_cycles, 2_000);
    }

    #[test]
    fn lost_completions_drop_every_nth_arrival() {
        let mut inj = FaultInjector::new(InjectConfig::lost_completions(1, 3));
        let drops: Vec<bool> = (0..6).map(|_| inj.drop_arrival()).collect();
        assert_eq!(drops, vec![false, false, true, false, false, true]);
        assert_eq!(inj.stats().dropped_arrivals, 2);
    }

    #[test]
    fn spec_parsing_covers_presets_and_rejects_unknowns() {
        assert_eq!(InjectConfig::parse_spec("off").unwrap(), None);
        assert_eq!(InjectConfig::parse_spec("noisy").unwrap(), Some(InjectConfig::noisy(42)));
        assert_eq!(InjectConfig::parse_spec("noisy:7").unwrap(), Some(InjectConfig::noisy(7)));
        assert_eq!(
            InjectConfig::parse_spec("lost:1:5").unwrap(),
            Some(InjectConfig::lost_completions(1, 5))
        );
        assert_eq!(
            InjectConfig::parse_spec("lost").unwrap(),
            Some(InjectConfig::lost_completions(42, 3))
        );
        for bad in ["", "chaos", "noisy:many", "noisy:1:2", "lost:1:2:3"] {
            let err = InjectConfig::parse_spec(bad).unwrap_err();
            match &err {
                SimError::UnknownPolicy { axis, known, .. } => {
                    assert_eq!(*axis, "inject");
                    assert!(known.contains("noisy"), "{known}");
                }
                other => panic!("expected UnknownPolicy, got {other:?}"),
            }
            assert!(err.to_string().contains("inject"), "{err}");
        }
    }

    #[test]
    fn percent_knobs_hit_roughly_their_rate() {
        let cfg = InjectConfig { seed: 9, duplicate_fault_pct: 25, ..InjectConfig::default() };
        let mut inj = FaultInjector::new(cfg);
        let hits = (0..10_000).filter(|_| inj.duplicate_fault()).count();
        assert!((2_000..3_000).contains(&hits), "25% of 10k should be ~2500, got {hits}");
    }
}
