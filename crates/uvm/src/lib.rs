//! The UVM runtime model — the core contribution of the reproduced paper.
//!
//! This crate models how the GPU runtime software handles demand paging,
//! following the NVIDIA Pascal driver behaviour the paper dissects (§2.2,
//! §3) and implementing the paper's two proposals:
//!
//! * **batched fault processing** ([`runtime::UvmRuntime`]): faults drain
//!   from the replayable [`fault::FaultBuffer`] into a batch; the runtime
//!   spends the *GPU runtime fault handling time* preprocessing (sorting,
//!   deduplication, prefetch insertion via [`prefetch::TreePrefetcher`],
//!   CPU page-table walks), then schedules page migrations over the PCIe
//!   pipes ([`pcie::PciePipes`]);
//! * **eviction engines** ([`batmem_types::policy::EvictionPolicy`]):
//!   the baseline's reactive, serialized eviction; the paper's
//!   **Unobtrusive Eviction** with a preemptive eviction at batch start and
//!   pipelined bidirectional transfers; and the ideal zero-cost limit;
//! * **Thread Oversubscription control** ([`oversub::OversubController`]):
//!   the dynamic degree controller driven by the running average of page
//!   lifetimes ([`lifetime::LifetimeTracker`]).
//!
//! The runtime is a pure state machine: the simulation engine feeds it
//! faults and events, and it returns [`runtime::UvmOutput`] commands
//! (schedule event / install page / evict page) for the engine to apply to
//! the MMU and the event queue. This keeps it deterministic and unit-testable
//! without a GPU model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fault;
pub mod inject;
pub mod lifetime;
pub mod memmgr;
pub mod oversub;
pub mod pcie;
pub mod prefetch;
pub mod runtime;
pub mod stats;

pub use batch::BatchRecord;
pub use fault::FaultBuffer;
pub use inject::{FaultInjector, InjectConfig, InjectStats};
pub use lifetime::LifetimeTracker;
pub use memmgr::MemoryManager;
pub use oversub::OversubController;
pub use pcie::PciePipes;
pub use prefetch::TreePrefetcher;
pub use runtime::{UvmEvent, UvmOutput, UvmRuntime};
pub use stats::UvmStats;
