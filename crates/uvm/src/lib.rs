//! The UVM runtime model — the core contribution of the reproduced paper.
//!
//! This crate models how the GPU runtime software handles demand paging,
//! following the NVIDIA Pascal driver behaviour the paper dissects (§2.2,
//! §3) and implementing the paper's two proposals. Since the staged-
//! pipeline refactor the runtime is organized around explicit decision
//! points:
//!
//! * **the staged fault pipeline** ([`pipeline::UvmRuntime`]): fault
//!   capture → batch formation → prefetch expansion → residency/eviction
//!   decision → migration scheduling, one module per stage, scheduling
//!   page migrations over the PCIe pipes ([`pcie::PciePipes`]);
//! * **pluggable strategies** ([`strategies`]): each decision point is a
//!   trait — [`strategies::EvictionStrategy`] (the baseline's reactive,
//!   serialized eviction; the paper's **Unobtrusive Eviction** with a
//!   preemptive eviction at batch start and pipelined bidirectional
//!   transfers; the ideal zero-cost limit; a random-victim plugin),
//!   [`strategies::Prefetcher`] ([`prefetch::TreePrefetcher`] or none),
//!   and [`strategies::OversubscriptionHandler`] (the dynamic degree
//!   controller [`oversub::OversubController`] driven by the running
//!   average of page lifetimes, [`lifetime::LifetimeTracker`]);
//! * **the policy registry** ([`registry::PolicyRegistry`]): strategies
//!   are resolved by name (`lru`, `ue`, `tree:50`, `random:7`, `to`,
//!   `etc`), so new policies register without touching the pipeline core.
//!
//! The runtime is a pure state machine: the simulation engine feeds it
//! faults and events, and it returns [`pipeline::UvmOutput`] commands
//! (schedule event / install page / evict page) for the engine to apply to
//! the MMU and the event queue. This keeps it deterministic and unit-testable
//! without a GPU model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod batch;
pub mod fault;
pub mod inject;
pub mod lifetime;
pub mod memmgr;
pub mod oversub;
pub mod pcie;
pub mod pipeline;
pub mod prefetch;
pub mod registry;
pub mod stats;
pub mod strategies;

pub use adaptive::{AdaptiveController, AdaptiveProbe, AdaptiveSignals};
pub use batch::BatchRecord;
pub use fault::FaultBuffer;
pub use inject::{FaultInjector, InjectConfig, InjectStats};
pub use lifetime::LifetimeTracker;
pub use memmgr::MemoryManager;
pub use oversub::OversubController;
pub use pcie::PciePipes;
pub use pipeline::{UvmEvent, UvmOutput, UvmRuntime};
pub use prefetch::TreePrefetcher;
pub use registry::{OversubSelection, PolicyRegistry, StrategyCtx};
pub use stats::UvmStats;
pub use strategies::{
    CoalesceOff, CoalesceStrategy, CpuServicing, EvictionStrategy, EvictionTiming,
    FaultServicingModel, GpuDrivenServicing, GreedyCoalesce, OversubscriptionHandler, Prefetcher,
    ServicingCounters, SplinterOnEvict,
};
