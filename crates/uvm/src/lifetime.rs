//! Page-lifetime tracking and premature-eviction detection.
//!
//! §4.1: "the GPU runtime monitors the premature eviction rates by
//! periodically estimating the running average of the lifetime of pages by
//! tracking when each page is allocated and evicted." A **premature
//! eviction** is an eviction of a page for which the GPU generates a fault
//! again later (§4.1, §6.1).

use batmem_types::dense::{PageSet, TieredPageMap};
use batmem_types::{AuditLevel, Cycle, PageId, RegionId, SimError};

/// A periodic lifetime sample handed to the oversubscription controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeSample {
    /// Running average page lifetime of the sampled window (cycles), or
    /// `None` if no eviction occurred in the window.
    pub avg: Option<f64>,
    /// The previous window's average.
    pub prev: Option<f64>,
}

/// Tracks page allocation/eviction times and re-fault-based premature
/// eviction counts.
#[derive(Debug, Clone, Default)]
pub struct LifetimeTracker {
    /// Birth cycle per live page, tiered by large-page group so the
    /// coalescing path can read per-group live counts in O(1).
    alloc_at: TieredPageMap<Cycle>,
    evicted_awaiting_refault: PageSet,
    window_sum: u128,
    window_count: u64,
    last_avg: Option<f64>,
    prev_avg: Option<f64>,
    total_evictions: u64,
    premature_evictions: u64,
    lifetime_sum: u128,
}

impl LifetimeTracker {
    /// Creates an empty tracker with the default large-page-group span.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty tracker whose group tier spans `pages_per_large`
    /// base pages (matching the page table's large-page geometry).
    pub fn with_pages_per_large(pages_per_large: u64) -> Self {
        Self {
            alloc_at: TieredPageMap::with_pages_per_region(pages_per_large),
            ..Self::default()
        }
    }

    /// Live (installed, not yet evicted) pages in large-page group
    /// `group` — O(1), for coalescing diagnostics.
    pub fn live_in_group(&self, group: RegionId) -> usize {
        self.alloc_at.region_len(group)
    }

    /// Records that `page` became resident at `now`.
    pub fn on_install(&mut self, page: PageId, now: Cycle) {
        self.alloc_at.insert(page, now);
    }

    /// Records that `page` was evicted at `now`.
    ///
    /// A page evicted before its recorded install time means the pipeline's
    /// clock ran backwards — an invariant violation, not a zero-length
    /// lifetime. Under an enabled [`AuditLevel`] it is a typed error;
    /// otherwise it trips a debug assertion and the lifetime clamps to zero
    /// in release builds (the pre-audit behavior).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the page was never installed.
    pub fn on_evict(&mut self, page: PageId, now: Cycle, audit: AuditLevel) -> Result<(), SimError> {
        let born = self.alloc_at.remove(page);
        debug_assert!(born.is_some(), "evicting untracked page {page}");
        if let Some(born) = born {
            if born > now {
                if audit.enabled() {
                    return Err(SimError::InvariantViolated {
                        cycle: now,
                        invariant: "page lifetime is non-negative (clock must not run backwards)",
                        snapshot: format!("page {page} installed at {born}, evicted at {now}"),
                    });
                }
                debug_assert!(false, "page {page} evicted at {now} before its install at {born}");
            }
            let life = u128::from(now.saturating_sub(born));
            self.window_sum += life;
            self.lifetime_sum += life;
            self.window_count += 1;
        }
        self.total_evictions += 1;
        self.evicted_awaiting_refault.insert(page);
        Ok(())
    }

    /// Records a fault for `page`. Returns `true` when the fault re-touches
    /// an evicted page — i.e. exactly when it classifies that page's last
    /// eviction as premature.
    pub fn on_fault(&mut self, page: PageId) -> bool {
        let premature = self.evicted_awaiting_refault.remove(page);
        if premature {
            self.premature_evictions += 1;
        }
        premature
    }

    /// Closes the current sampling window and returns the running average
    /// alongside the previous one (the controller compares them).
    pub fn sample(&mut self) -> LifetimeSample {
        let avg = if self.window_count > 0 {
            Some(self.window_sum as f64 / self.window_count as f64)
        } else {
            self.last_avg // quiet window: carry the last estimate forward
        };
        let prev = self.last_avg;
        self.prev_avg = self.last_avg;
        self.last_avg = avg;
        self.window_sum = 0;
        self.window_count = 0;
        LifetimeSample { avg, prev }
    }

    /// Evictions recorded so far.
    pub fn total_evictions(&self) -> u64 {
        self.total_evictions
    }

    /// Evictions whose page was subsequently re-faulted.
    pub fn premature_evictions(&self) -> u64 {
        self.premature_evictions
    }

    /// Premature-eviction rate in [0, 1] (0 when nothing was evicted).
    pub fn premature_rate(&self) -> f64 {
        if self.total_evictions == 0 {
            0.0
        } else {
            self.premature_evictions as f64 / self.total_evictions as f64
        }
    }

    /// Mean lifetime over the whole run (cycles), if any eviction occurred.
    pub fn mean_lifetime(&self) -> Option<f64> {
        if self.total_evictions == 0 {
            None
        } else {
            Some(self.lifetime_sum as f64 / self.total_evictions as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    #[test]
    fn lifetime_is_evict_minus_install() {
        let mut t = LifetimeTracker::new();
        t.on_install(p(1), 100);
        t.on_evict(p(1), 600, AuditLevel::Off).unwrap();
        let s = t.sample();
        assert_eq!(s.avg, Some(500.0));
        assert_eq!(s.prev, None);
    }

    #[test]
    fn windows_roll() {
        let mut t = LifetimeTracker::new();
        t.on_install(p(1), 0);
        t.on_evict(p(1), 1000, AuditLevel::Off).unwrap();
        let s1 = t.sample();
        t.on_install(p(2), 1000);
        t.on_evict(p(2), 1200, AuditLevel::Off).unwrap();
        let s2 = t.sample();
        assert_eq!(s1.avg, Some(1000.0));
        assert_eq!(s2.avg, Some(200.0));
        assert_eq!(s2.prev, Some(1000.0));
    }

    #[test]
    fn quiet_window_carries_last_average() {
        let mut t = LifetimeTracker::new();
        t.on_install(p(1), 0);
        t.on_evict(p(1), 100, AuditLevel::Off).unwrap();
        let _ = t.sample();
        let s = t.sample(); // no evictions this window
        assert_eq!(s.avg, Some(100.0));
        assert_eq!(s.prev, Some(100.0));
    }

    #[test]
    fn refault_counts_one_premature_per_eviction() {
        let mut t = LifetimeTracker::new();
        t.on_install(p(1), 0);
        t.on_evict(p(1), 10, AuditLevel::Off).unwrap();
        t.on_fault(p(1)); // premature
        t.on_fault(p(1)); // same page again: not double counted
        assert_eq!(t.premature_evictions(), 1);
        t.on_install(p(1), 20);
        t.on_evict(p(1), 30, AuditLevel::Off).unwrap();
        t.on_fault(p(1)); // second eviction also premature
        assert_eq!(t.premature_evictions(), 2);
        assert_eq!(t.total_evictions(), 2);
        assert_eq!(t.premature_rate(), 1.0);
    }

    #[test]
    fn non_refaulted_eviction_is_not_premature() {
        let mut t = LifetimeTracker::new();
        t.on_install(p(1), 0);
        t.on_evict(p(1), 10, AuditLevel::Off).unwrap();
        t.on_fault(p(2)); // unrelated page
        assert_eq!(t.premature_evictions(), 0);
        assert_eq!(t.premature_rate(), 0.0);
    }

    #[test]
    fn clock_backwards_is_a_typed_error_under_audit() {
        let mut t = LifetimeTracker::new();
        t.on_install(p(1), 100);
        let err = t.on_evict(p(1), 50, AuditLevel::Basic).unwrap_err();
        assert!(
            matches!(err, SimError::InvariantViolated { cycle: 50, .. }),
            "wrong error shape: {err:?}"
        );
    }

    #[test]
    fn group_tier_counts_live_pages() {
        let mut t = LifetimeTracker::with_pages_per_large(4);
        let g = RegionId::new(0);
        t.on_install(p(0), 0);
        t.on_install(p(1), 0);
        t.on_install(p(4), 0); // next group
        assert_eq!(t.live_in_group(g), 2);
        assert_eq!(t.live_in_group(RegionId::new(1)), 1);
        t.on_evict(p(1), 10, AuditLevel::Off).unwrap();
        assert_eq!(t.live_in_group(g), 1);
    }

    #[test]
    fn mean_lifetime_over_run() {
        let mut t = LifetimeTracker::new();
        assert_eq!(t.mean_lifetime(), None);
        t.on_install(p(1), 0);
        t.on_evict(p(1), 100, AuditLevel::Off).unwrap();
        t.on_install(p(2), 0);
        t.on_evict(p(2), 300, AuditLevel::Off).unwrap();
        assert_eq!(t.mean_lifetime(), Some(200.0));
    }
}
