//! The GPU physical memory manager.
//!
//! Tracks device-frame allocation and the aged-LRU order the NVIDIA driver
//! keeps over allocated chunks (`root_chunks.va_block_used`, §3 footnote 4).
//! The manager holds the runtime's *planned* residency: the batch planner
//! allocates frames and selects eviction victims here, while the MMU's page
//! table tracks the warps' view (which lags by the transfer latencies).
//!
//! Per-page state lives in a dense table indexed by page number (page IDs
//! are dense `0..footprint_pages`, fixed at launch — see DESIGN.md "dense
//! page state"), and the LRU is an intrusive doubly-linked list threaded
//! through that table: `mark_resident`/`touch`/`remove` are O(1), and a
//! victim scan walks the list from the LRU head instead of rescanning a
//! `BTreeMap` of age stamps. List order equals the old ascending-stamp
//! order (every refresh moves a page to the MRU tail), so victim selection
//! is bit-identical to the stamp-based implementation it replaced.

use batmem_types::policy::EvictionGranularity;
use batmem_types::{Cycle, FrameId, PageId, SimError};

/// Null link in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Dense per-page state: the frame (valid while resident) and the page's
/// links in the intrusive LRU list.
#[derive(Debug, Clone, Copy)]
struct PageEntry {
    frame: FrameId,
    prev: u32,
    next: u32,
    resident: bool,
}

impl Default for PageEntry {
    fn default() -> Self {
        Self { frame: FrameId::new(0), prev: NIL, next: NIL, resident: false }
    }
}

/// Physical frame allocation and LRU victim selection.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    /// Device capacity in frames; `None` = unlimited.
    capacity: Option<u64>,
    /// Frames never yet handed out (minted on demand).
    next_frame: u32,
    /// Frames returned by evictions and available for reuse.
    free: Vec<FrameId>,
    /// Dense per-page table; index = page number.
    pages: Vec<PageEntry>,
    /// LRU list head (least recently used) and tail (most recently used).
    head: u32,
    tail: u32,
    resident_count: usize,
    granularity: EvictionGranularity,
    pages_per_region: u64,
    evictions: u64,
    touches: u64,
    peak_resident: usize,
    contiguous_takes: u64,
}

impl MemoryManager {
    /// Creates a manager for `capacity` frames (`None` = unlimited) with
    /// the given eviction granularity; `pages_per_region` sizes root-chunk
    /// eviction.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)` or `pages_per_region` is zero.
    pub fn new(capacity: Option<u64>, granularity: EvictionGranularity, pages_per_region: u64) -> Self {
        assert!(capacity != Some(0), "capacity of zero frames is not runnable");
        assert!(pages_per_region > 0, "pages_per_region must be positive");
        Self {
            capacity,
            next_frame: 0,
            free: Vec::new(),
            pages: Vec::new(),
            head: NIL,
            tail: NIL,
            resident_count: 0,
            granularity,
            pages_per_region,
            evictions: 0,
            touches: 0,
            peak_resident: 0,
            contiguous_takes: 0,
        }
    }

    /// Attempts to take a frame: reuses a freed frame, or mints a new one
    /// while under capacity. `None` means an eviction is required.
    pub fn take_frame(&mut self) -> Option<FrameId> {
        if let Some(f) = self.free.pop() {
            return Some(f);
        }
        let under_cap = match self.capacity {
            None => true,
            Some(c) => u64::from(self.next_frame) < c,
        };
        if under_cap {
            let f = FrameId::new(self.next_frame);
            self.next_frame += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Contiguity-aware variant of [`take_frame`](Self::take_frame): if
    /// `preferred` sits in the free pool, take exactly it; if it is the
    /// next unminted frame, mint it. Otherwise falls back to the normal
    /// allocation order. Used by the coalescing path so a large-page
    /// group's frames tend toward physical contiguity (the property real
    /// coalescing designs engineer their allocators for); never called
    /// when coalescing is off, keeping that path's allocation order
    /// untouched.
    pub fn take_frame_near(&mut self, preferred: FrameId) -> Option<FrameId> {
        if let Some(pos) = self.free.iter().rposition(|&f| f == preferred) {
            self.contiguous_takes += 1;
            return Some(self.free.swap_remove(pos));
        }
        let under_cap = match self.capacity {
            None => true,
            Some(c) => u64::from(self.next_frame) < c,
        };
        if preferred.index() == self.next_frame && under_cap {
            self.contiguous_takes += 1;
            self.next_frame += 1;
            return Some(preferred);
        }
        self.take_frame()
    }

    /// Allocations where [`take_frame_near`](Self::take_frame_near) could
    /// honor the preferred frame.
    pub fn contiguous_takes(&self) -> u64 {
        self.contiguous_takes
    }

    /// The frame backing `page`, if it is (planned) resident.
    pub fn frame_of(&self, page: PageId) -> Option<FrameId> {
        self.pages
            .get(page.index() as usize)
            .and_then(|e| e.resident.then_some(e.frame))
    }

    /// Frames obtainable without evicting (free pool + unminted capacity).
    pub fn available_without_eviction(&self) -> u64 {
        let mintable = match self.capacity {
            None => u64::MAX - self.free.len() as u64,
            Some(c) => c.saturating_sub(u64::from(self.next_frame)),
        };
        self.free.len() as u64 + mintable
    }

    /// Whether no frame can be taken without an eviction.
    pub fn at_capacity(&self) -> bool {
        self.free.is_empty()
            && match self.capacity {
                None => false,
                Some(c) => u64::from(self.next_frame) >= c,
            }
    }

    /// Appends list node `i` at the MRU tail.
    #[inline]
    fn link_tail(&mut self, i: u32) {
        let e = &mut self.pages[i as usize];
        e.prev = self.tail;
        e.next = NIL;
        if self.tail != NIL {
            self.pages[self.tail as usize].next = i;
        } else {
            self.head = i;
        }
        self.tail = i;
    }

    /// Unlinks list node `i`.
    #[inline]
    fn unlink(&mut self, i: u32) {
        let PageEntry { prev, next, .. } = self.pages[i as usize];
        if prev != NIL {
            self.pages[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.pages[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Marks `page` resident in `frame` and stamps it most recently used.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] stamped with `now` if the page is
    /// already resident (a double install would leak the page's previous
    /// frame) or its index does not fit the dense table.
    pub fn mark_resident(&mut self, page: PageId, frame: FrameId, now: Cycle) -> Result<(), SimError> {
        let i = page.index();
        if i >= u64::from(NIL) {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("page {page} exceeds the dense page-table range"),
            });
        }
        let i = i as usize;
        if i >= self.pages.len() {
            self.pages.resize(i + 1, PageEntry::default());
        }
        if self.pages[i].resident {
            let prev = self.pages[i].frame;
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!(
                    "page {page} marked resident twice (held {prev}, offered {frame})"
                ),
            });
        }
        self.pages[i].frame = frame;
        self.pages[i].resident = true;
        self.resident_count += 1;
        self.peak_resident = self.peak_resident.max(self.resident_count);
        self.link_tail(i as u32);
        Ok(())
    }

    /// Refreshes `page`'s LRU position if it is resident (called on access).
    pub fn touch(&mut self, page: PageId) {
        if self.is_resident(page) {
            self.touches += 1;
            let i = page.index() as u32;
            self.unlink(i);
            self.link_tail(i);
        }
    }

    /// Removes `page` from residency (eviction), returning its frame to
    /// the free pool is the **caller's** job — the frame may only become
    /// reusable when the eviction transfer completes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] stamped with `now` if the page is
    /// not resident (the books are already corrupt).
    pub fn remove(&mut self, page: PageId, now: Cycle) -> Result<FrameId, SimError> {
        if !self.is_resident(page) {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("evicting page {page} that is not resident"),
            });
        }
        let i = page.index() as u32;
        self.unlink(i);
        let e = &mut self.pages[i as usize];
        e.resident = false;
        e.prev = NIL;
        e.next = NIL;
        self.resident_count -= 1;
        self.evictions += 1;
        Ok(e.frame)
    }

    /// Returns an eviction-completed frame to the free pool.
    pub fn release_frame(&mut self, frame: FrameId) {
        self.free.push(frame);
    }

    /// Selects the pages to evict to free at least one frame, preferring
    /// pages for which `pinned` returns `false`. Returns pages in eviction
    /// order, plus whether the selection was **forced** to take a pinned
    /// page.
    ///
    /// With [`EvictionGranularity::Page`] one page is returned; with
    /// [`EvictionGranularity::RootChunk`] the resident pages of the LRU
    /// page's region are returned (the driver's
    /// `pick_and_evict_root_chunk`), seed first, the rest in ascending page
    /// order. An unforced root-chunk sweep excludes pinned region-mates —
    /// the driver may not evict a chunk with pinned pages without first
    /// unpinning it (DESIGN.md §3) — while a forced sweep takes the whole
    /// resident region and reports `forced = true`.
    ///
    /// Returns an empty vector if nothing is resident.
    pub fn pick_victims(&self, pinned: impl Fn(PageId) -> bool) -> (Vec<PageId>, bool) {
        let mut cur = self.head;
        let mut lru = None;
        while cur != NIL {
            let p = PageId::new(u64::from(cur));
            if !pinned(p) {
                lru = Some(p);
                break;
            }
            cur = self.pages[cur as usize].next;
        }
        let (seed, forced) = match lru {
            Some(p) => (p, false),
            None if self.head != NIL => (PageId::new(u64::from(self.head)), true),
            None => return (Vec::new(), false),
        };
        match self.granularity {
            EvictionGranularity::Page => (vec![seed], forced),
            EvictionGranularity::RootChunk => {
                let region = seed.index() / self.pages_per_region;
                let first = region * self.pages_per_region;
                // Evict the seed first so one frame frees as early as possible.
                let mut pages = vec![seed];
                for idx in first..first + self.pages_per_region {
                    if idx == seed.index() {
                        continue;
                    }
                    let p = PageId::new(idx);
                    if self.is_resident(p) && (forced || !pinned(p)) {
                        pages.push(p);
                    }
                }
                (pages, forced)
            }
        }
    }

    /// Walks the resident pages in LRU order (least recently used first).
    ///
    /// Exists for eviction strategies whose victim selection is not the
    /// plain LRU-head policy of [`pick_victims`](Self::pick_victims) — e.g.
    /// a random-victim strategy samples uniformly from this walk.
    pub fn pages_in_lru_order(&self) -> impl Iterator<Item = PageId> + '_ {
        std::iter::successors((self.head != NIL).then_some(self.head), move |&i| {
            let n = self.pages[i as usize].next;
            (n != NIL).then_some(n)
        })
        .map(|i| PageId::new(u64::from(i)))
    }

    /// Whether `page` is (planned) resident.
    #[inline]
    pub fn is_resident(&self, page: PageId) -> bool {
        self.pages
            .get(page.index() as usize)
            .is_some_and(|e| e.resident)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident_count
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total LRU touches recorded.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Highest simultaneous resident-page count observed.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// The configured capacity in frames.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Frames ever minted (handed out at least once).
    pub fn minted_frames(&self) -> u64 {
        u64::from(self.next_frame)
    }

    /// Frames currently in the free pool.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Re-derives the manager's internal invariants from scratch.
    ///
    /// Called by the runtime auditor under
    /// [`AuditLevel::Full`](batmem_types::AuditLevel) with the audit's
    /// simulated time, which stamps any violation. Checks that the LRU list
    /// is well-linked and mirrors the residency flags exactly, that no
    /// frame is tracked twice, and that the books never exceed minted
    /// frames or capacity.
    pub fn audit(&self, now: Cycle) -> Result<(), SimError> {
        let violated = |invariant: &'static str, snapshot: String| {
            Err(SimError::InvariantViolated { cycle: now, invariant, snapshot })
        };
        // Walk the LRU list: every node resident, links round-trip, length
        // matches the resident count (which covers "every resident page is
        // listed", since list nodes are distinct table slots).
        let mut listed = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            let Some(e) = self.pages.get(cur as usize) else {
                return violated("LRU links stay in the table", format!("link {cur} out of range"));
            };
            if !e.resident {
                return violated(
                    "listed pages are resident",
                    format!("page:{cur} is in the LRU list but not resident"),
                );
            }
            if e.prev != prev {
                return violated(
                    "LRU list is well-linked",
                    format!("page:{cur} prev {} != walked {prev}", e.prev),
                );
            }
            listed += 1;
            if listed > self.pages.len() {
                return violated("LRU list is acyclic", format!("walked {listed} nodes"));
            }
            prev = cur;
            cur = e.next;
        }
        if prev != self.tail {
            return violated(
                "LRU tail terminates the list",
                format!("walk ended at {prev}, tail is {}", self.tail),
            );
        }
        if listed != self.resident_count {
            return violated(
                "LRU list mirrors residency",
                format!("listed={listed} resident={}", self.resident_count),
            );
        }
        let mut seen = vec![false; self.next_frame as usize];
        let resident_frames =
            self.pages.iter().filter(|e| e.resident).map(|e| e.frame);
        for f in self.free.iter().copied().chain(resident_frames) {
            if f.index() >= self.next_frame {
                return violated(
                    "tracked frames were minted",
                    format!("{f} >= next_frame {}", self.next_frame),
                );
            }
            if seen[f.index() as usize] {
                return violated("no frame tracked twice", format!("{f} appears twice"));
            }
            seen[f.index() as usize] = true;
        }
        if let Some(cap) = self.capacity {
            if u64::from(self.next_frame) > cap {
                return violated(
                    "minted frames within capacity",
                    format!("minted {} > capacity {cap}", self.next_frame),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn mgr(cap: u64) -> MemoryManager {
        MemoryManager::new(Some(cap), EvictionGranularity::Page, 32)
    }

    fn unpinned(_: PageId) -> bool {
        false
    }

    #[test]
    fn lru_walk_matches_touch_order() {
        let mut m = mgr(3);
        for i in 0..3 {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, i).unwrap();
        }
        assert_eq!(m.pages_in_lru_order().collect::<Vec<_>>(), vec![p(0), p(1), p(2)]);
        m.touch(p(0)); // now the coldest page is 1
        assert_eq!(m.pages_in_lru_order().collect::<Vec<_>>(), vec![p(1), p(2), p(0)]);
        assert_eq!(m.pages_in_lru_order().next(), Some(m.pick_victims(unpinned).0[0]));
        let empty = mgr(3);
        assert_eq!(empty.pages_in_lru_order().count(), 0);
    }

    #[test]
    fn mints_frames_up_to_capacity() {
        let mut m = mgr(2);
        let a = m.take_frame().unwrap();
        let b = m.take_frame().unwrap();
        assert_ne!(a, b);
        assert!(m.take_frame().is_none());
        assert!(m.at_capacity());
    }

    #[test]
    fn unlimited_never_at_capacity() {
        let mut m = MemoryManager::new(None, EvictionGranularity::Page, 32);
        for _ in 0..10_000 {
            assert!(m.take_frame().is_some());
        }
        assert!(!m.at_capacity());
    }

    #[test]
    fn released_frames_are_reused() {
        let mut m = mgr(1);
        let a = m.take_frame().unwrap();
        assert!(m.take_frame().is_none());
        m.release_frame(a);
        assert!(!m.at_capacity());
        assert_eq!(m.take_frame(), Some(a));
    }

    #[test]
    fn lru_victim_is_least_recently_touched() {
        let mut m = mgr(3);
        for i in 0..3 {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, 0).unwrap();
        }
        m.touch(p(0)); // 0 refreshed; LRU is now 1
        let (v, forced) = m.pick_victims(unpinned);
        assert_eq!(v, vec![p(1)]);
        assert!(!forced);
    }

    #[test]
    fn pinned_pages_are_skipped_until_forced() {
        let mut m = mgr(2);
        for i in 0..2 {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, 0).unwrap();
        }
        let pinned: HashSet<PageId> = [p(0)].into_iter().collect();
        let (v, forced) = m.pick_victims(|q| pinned.contains(&q));
        assert_eq!(v, vec![p(1)]);
        assert!(!forced);
        let all: HashSet<PageId> = [p(0), p(1)].into_iter().collect();
        let (v, forced) = m.pick_victims(|q| all.contains(&q));
        assert_eq!(v, vec![p(0)]); // LRU even though pinned
        assert!(forced);
    }

    #[test]
    fn empty_manager_has_no_victim() {
        let m = mgr(2);
        let (v, forced) = m.pick_victims(unpinned);
        assert!(v.is_empty());
        assert!(!forced);
    }

    #[test]
    fn root_chunk_granularity_evicts_whole_region() {
        let mut m = MemoryManager::new(Some(10), EvictionGranularity::RootChunk, 4);
        // Region 0 holds pages 0..4; make 0, 2, 3 resident plus page 5 in
        // region 1.
        for i in [0u64, 2, 3, 5] {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, 0).unwrap();
        }
        m.touch(p(0)); // LRU seed becomes page 2
        let (v, _) = m.pick_victims(unpinned);
        assert_eq!(v[0], p(2)); // seed first
        let mut rest = v[1..].to_vec();
        rest.sort();
        assert_eq!(rest, vec![p(0), p(3)]);
    }

    #[test]
    fn unforced_root_chunk_sweep_excludes_pinned_region_mates() {
        let mut m = MemoryManager::new(Some(10), EvictionGranularity::RootChunk, 4);
        for i in [0u64, 1, 2, 3] {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, 0).unwrap();
        }
        // Pages 1 and 3 are pinned (in the current batch); the LRU seed 0
        // is free, so the sweep is unforced and must not carry the pinned
        // region-mates.
        let pinned: HashSet<PageId> = [p(1), p(3)].into_iter().collect();
        let (v, forced) = m.pick_victims(|q| pinned.contains(&q));
        assert!(!forced);
        assert_eq!(v, vec![p(0), p(2)]);
    }

    #[test]
    fn forced_root_chunk_sweep_takes_pinned_pages_and_reports_it() {
        let mut m = MemoryManager::new(Some(10), EvictionGranularity::RootChunk, 4);
        for i in [0u64, 1, 2] {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, 0).unwrap();
        }
        // Everything resident is pinned: the sweep is forced, takes the
        // whole resident region, and says so.
        let (v, forced) = m.pick_victims(|_| true);
        assert!(forced);
        assert_eq!(v, vec![p(0), p(1), p(2)]);
    }

    #[test]
    fn remove_makes_page_non_resident_and_counts() {
        let mut m = mgr(1);
        let f = m.take_frame().unwrap();
        m.mark_resident(p(7), f, 0).unwrap();
        assert!(m.is_resident(p(7)));
        let got = m.remove(p(7), 0).unwrap();
        assert_eq!(got, f);
        assert!(!m.is_resident(p(7)));
        assert_eq!(m.evictions(), 1);
        assert_eq!(m.resident_count(), 0);
    }

    #[test]
    fn double_mark_is_an_accounting_error() {
        let mut m = mgr(2);
        let f = m.take_frame().unwrap();
        m.mark_resident(p(1), f, 70).unwrap();
        let err = m.mark_resident(p(1), f, 70).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert!(err.to_string().contains("resident twice"));
        // The failed insert must not corrupt the books.
        m.audit(70).unwrap();
    }

    #[test]
    fn remove_of_non_resident_is_an_accounting_error() {
        let mut m = mgr(2);
        let err = m.remove(p(3), 0).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        m.audit(0).unwrap();
    }

    #[test]
    fn errors_carry_the_callers_clock() {
        let mut m = mgr(2);
        let err = m.remove(p(3), 41_778).unwrap_err();
        assert_eq!(err.cycle(), Some(41_778));
        assert!(err.to_string().contains("41778"));
        let f = m.take_frame().unwrap();
        m.mark_resident(p(1), f, 50).unwrap();
        let err = m.mark_resident(p(1), f, 99).unwrap_err();
        assert_eq!(err.cycle(), Some(99));
    }

    #[test]
    fn audit_passes_through_a_busy_lifecycle() {
        let mut m = mgr(4);
        for round in 0..8u64 {
            for i in 0..4u64 {
                let page = p(round * 4 + i);
                let frame = match m.take_frame() {
                    Some(f) => f,
                    None => {
                        let (v, _) = m.pick_victims(unpinned);
                        let f = m.remove(v[0], 0).unwrap();
                        m.release_frame(f);
                        m.take_frame().unwrap()
                    }
                };
                m.mark_resident(page, frame, 0).unwrap();
                m.audit(0).unwrap();
            }
        }
        assert_eq!(m.minted_frames(), 4);
        assert_eq!(m.free_frames(), 0);
    }

    #[test]
    fn touch_of_non_resident_is_noop() {
        let mut m = mgr(2);
        m.touch(p(9));
        assert_eq!(m.touches(), 0);
    }

    #[test]
    fn take_frame_near_prefers_the_named_frame() {
        let mut m = mgr(4);
        // Mint 0..3 resident, then free 1 and 2 (release order: 1, 2).
        for i in 0..4 {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f, 0).unwrap();
        }
        for i in [1, 2] {
            let f = m.remove(p(i), 0).unwrap();
            m.release_frame(f);
        }
        // Plain take_frame would pop frame 2 (stack order); the near
        // variant digs frame 1 out of the pool.
        assert_eq!(m.take_frame_near(FrameId::new(1)), Some(FrameId::new(1)));
        assert_eq!(m.contiguous_takes(), 1);
        // A preferred frame that is neither free nor next-to-mint falls
        // back to normal order.
        assert_eq!(m.take_frame_near(FrameId::new(0)), Some(FrameId::new(2)));
        assert_eq!(m.contiguous_takes(), 1);
        // At capacity with an empty pool: nothing to take.
        assert_eq!(m.take_frame_near(FrameId::new(3)), None);
    }

    #[test]
    fn take_frame_near_mints_the_next_frame() {
        let mut m = mgr(4);
        assert_eq!(m.take_frame_near(FrameId::new(0)), Some(FrameId::new(0)));
        assert_eq!(m.take_frame_near(FrameId::new(1)), Some(FrameId::new(1)));
        assert_eq!(m.contiguous_takes(), 2);
        assert_eq!(m.minted_frames(), 2);
    }

    #[test]
    fn frame_of_reports_resident_frames_only() {
        let mut m = mgr(2);
        assert_eq!(m.frame_of(p(0)), None);
        let f = m.take_frame().unwrap();
        m.mark_resident(p(0), f, 0).unwrap();
        assert_eq!(m.frame_of(p(0)), Some(f));
        let f = m.remove(p(0), 0).unwrap();
        m.release_frame(f);
        assert_eq!(m.frame_of(p(0)), None);
    }
}
