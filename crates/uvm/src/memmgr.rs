//! The GPU physical memory manager.
//!
//! Tracks device-frame allocation and the aged-LRU order the NVIDIA driver
//! keeps over allocated chunks (`root_chunks.va_block_used`, §3 footnote 4).
//! The manager holds the runtime's *planned* residency: the batch planner
//! allocates frames and selects eviction victims here, while the MMU's page
//! table tracks the warps' view (which lags by the transfer latencies).

use batmem_types::policy::EvictionGranularity;
use batmem_types::{FrameId, PageId, SimError};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Physical frame allocation and LRU victim selection.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    /// Device capacity in frames; `None` = unlimited.
    capacity: Option<u64>,
    /// Frames never yet handed out (minted on demand).
    next_frame: u32,
    /// Frames returned by evictions and available for reuse.
    free: Vec<FrameId>,
    resident: HashMap<PageId, FrameId>,
    /// LRU bookkeeping: ascending stamp = least recently used first.
    stamp_of: HashMap<PageId, u64>,
    by_stamp: BTreeMap<u64, PageId>,
    next_stamp: u64,
    granularity: EvictionGranularity,
    pages_per_region: u64,
    evictions: u64,
    touches: u64,
    peak_resident: usize,
}

impl MemoryManager {
    /// Creates a manager for `capacity` frames (`None` = unlimited) with
    /// the given eviction granularity; `pages_per_region` sizes root-chunk
    /// eviction.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)` or `pages_per_region` is zero.
    pub fn new(capacity: Option<u64>, granularity: EvictionGranularity, pages_per_region: u64) -> Self {
        assert!(capacity != Some(0), "capacity of zero frames is not runnable");
        assert!(pages_per_region > 0, "pages_per_region must be positive");
        Self {
            capacity,
            next_frame: 0,
            free: Vec::new(),
            resident: HashMap::new(),
            stamp_of: HashMap::new(),
            by_stamp: BTreeMap::new(),
            next_stamp: 0,
            granularity,
            pages_per_region,
            evictions: 0,
            touches: 0,
            peak_resident: 0,
        }
    }

    /// Attempts to take a frame: reuses a freed frame, or mints a new one
    /// while under capacity. `None` means an eviction is required.
    pub fn take_frame(&mut self) -> Option<FrameId> {
        if let Some(f) = self.free.pop() {
            return Some(f);
        }
        let under_cap = match self.capacity {
            None => true,
            Some(c) => u64::from(self.next_frame) < c,
        };
        if under_cap {
            let f = FrameId::new(self.next_frame);
            self.next_frame += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Frames obtainable without evicting (free pool + unminted capacity).
    pub fn available_without_eviction(&self) -> u64 {
        let mintable = match self.capacity {
            None => u64::MAX - self.free.len() as u64,
            Some(c) => c.saturating_sub(u64::from(self.next_frame)),
        };
        self.free.len() as u64 + mintable
    }

    /// Whether no frame can be taken without an eviction.
    pub fn at_capacity(&self) -> bool {
        self.free.is_empty()
            && match self.capacity {
                None => false,
                Some(c) => u64::from(self.next_frame) >= c,
            }
    }

    /// Marks `page` resident in `frame` and stamps it most recently used.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the page is already resident
    /// (a double install would leak the page's previous frame).
    pub fn mark_resident(&mut self, page: PageId, frame: FrameId) -> Result<(), SimError> {
        if let Some(&prev) = self.resident.get(&page) {
            return Err(SimError::Accounting {
                cycle: 0,
                detail: format!(
                    "page {page} marked resident twice (held {prev}, offered {frame})"
                ),
            });
        }
        self.resident.insert(page, frame);
        self.peak_resident = self.peak_resident.max(self.resident.len());
        self.bump(page);
        Ok(())
    }

    /// Refreshes `page`'s LRU stamp if it is resident (called on access).
    pub fn touch(&mut self, page: PageId) {
        if self.resident.contains_key(&page) {
            self.touches += 1;
            self.bump(page);
        }
    }

    fn bump(&mut self, page: PageId) {
        if let Some(old) = self.stamp_of.remove(&page) {
            self.by_stamp.remove(&old);
        }
        let s = self.next_stamp;
        self.next_stamp += 1;
        self.stamp_of.insert(page, s);
        self.by_stamp.insert(s, page);
    }

    /// Removes `page` from residency (eviction), returning its frame to
    /// the free pool is the **caller's** job — the frame may only become
    /// reusable when the eviction transfer completes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the page is not resident or its
    /// LRU stamp is missing (either means the books are already corrupt).
    pub fn remove(&mut self, page: PageId) -> Result<FrameId, SimError> {
        let Some(frame) = self.resident.remove(&page) else {
            return Err(SimError::Accounting {
                cycle: 0,
                detail: format!("evicting page {page} that is not resident"),
            });
        };
        let Some(stamp) = self.stamp_of.remove(&page) else {
            return Err(SimError::Accounting {
                cycle: 0,
                detail: format!("resident page {page} has no LRU stamp"),
            });
        };
        self.by_stamp.remove(&stamp);
        self.evictions += 1;
        Ok(frame)
    }

    /// Returns an eviction-completed frame to the free pool.
    pub fn release_frame(&mut self, frame: FrameId) {
        self.free.push(frame);
    }

    /// Selects the pages to evict to free at least one frame, preferring
    /// pages outside `pinned`. Returns pages in eviction order, plus
    /// whether the selection was **forced** to take a pinned page.
    ///
    /// With [`EvictionGranularity::Page`] one page is returned; with
    /// [`EvictionGranularity::RootChunk`] every resident page of the LRU
    /// page's region is returned (the driver's
    /// `pick_and_evict_root_chunk`).
    ///
    /// Returns an empty vector if nothing is resident.
    pub fn pick_victims(&self, pinned: &HashSet<PageId>) -> (Vec<PageId>, bool) {
        let lru = self.by_stamp.values().find(|p| !pinned.contains(p)).copied();
        let (seed, forced) = match lru {
            Some(p) => (p, false),
            None => match self.by_stamp.values().next().copied() {
                Some(p) => (p, true),
                None => return (Vec::new(), false),
            },
        };
        match self.granularity {
            EvictionGranularity::Page => (vec![seed], forced),
            EvictionGranularity::RootChunk => {
                let region = seed.index() / self.pages_per_region;
                let first = region * self.pages_per_region;
                let mut pages: Vec<PageId> = (first..first + self.pages_per_region)
                    .map(PageId::new)
                    .filter(|p| self.resident.contains_key(p))
                    .collect();
                // Evict the seed first so one frame frees as early as possible.
                pages.sort_by_key(|p| (p != &seed, p.index()));
                (pages, forced)
            }
        }
    }

    /// Whether `page` is (planned) resident.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.resident.contains_key(&page)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total LRU touches recorded.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Highest simultaneous resident-page count observed.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// The configured capacity in frames.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Frames ever minted (handed out at least once).
    pub fn minted_frames(&self) -> u64 {
        u64::from(self.next_frame)
    }

    /// Frames currently in the free pool.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Re-derives the manager's internal invariants from scratch.
    ///
    /// Called by the runtime auditor under
    /// [`AuditLevel::Full`](batmem_types::AuditLevel). Checks that the LRU
    /// index mirrors the residency map exactly, that no frame is tracked
    /// twice, and that the books never exceed minted frames or capacity.
    pub fn audit(&self) -> Result<(), SimError> {
        let violated = |invariant: &'static str, snapshot: String| {
            Err(SimError::InvariantViolated { cycle: 0, invariant, snapshot })
        };
        if self.stamp_of.len() != self.resident.len() || self.by_stamp.len() != self.resident.len()
        {
            return violated(
                "LRU index mirrors residency",
                format!(
                    "resident={} stamp_of={} by_stamp={}",
                    self.resident.len(),
                    self.stamp_of.len(),
                    self.by_stamp.len()
                ),
            );
        }
        for (page, stamp) in &self.stamp_of {
            if self.by_stamp.get(stamp) != Some(page) {
                return violated(
                    "stamp maps round-trip",
                    format!("page {page} stamp {stamp} does not round-trip"),
                );
            }
            if !self.resident.contains_key(page) {
                return violated(
                    "stamped pages are resident",
                    format!("page {page} has a stamp but is not resident"),
                );
            }
        }
        let mut seen: HashSet<FrameId> = HashSet::new();
        for f in self.free.iter().chain(self.resident.values()) {
            if !seen.insert(*f) {
                return violated("no frame tracked twice", format!("{f} appears twice"));
            }
            if f.index() >= self.next_frame {
                return violated(
                    "tracked frames were minted",
                    format!("{f} >= next_frame {}", self.next_frame),
                );
            }
        }
        if let Some(cap) = self.capacity {
            if u64::from(self.next_frame) > cap {
                return violated(
                    "minted frames within capacity",
                    format!("minted {} > capacity {cap}", self.next_frame),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> PageId {
        PageId::new(i)
    }

    fn mgr(cap: u64) -> MemoryManager {
        MemoryManager::new(Some(cap), EvictionGranularity::Page, 32)
    }

    #[test]
    fn mints_frames_up_to_capacity() {
        let mut m = mgr(2);
        let a = m.take_frame().unwrap();
        let b = m.take_frame().unwrap();
        assert_ne!(a, b);
        assert!(m.take_frame().is_none());
        assert!(m.at_capacity());
    }

    #[test]
    fn unlimited_never_at_capacity() {
        let mut m = MemoryManager::new(None, EvictionGranularity::Page, 32);
        for _ in 0..10_000 {
            assert!(m.take_frame().is_some());
        }
        assert!(!m.at_capacity());
    }

    #[test]
    fn released_frames_are_reused() {
        let mut m = mgr(1);
        let a = m.take_frame().unwrap();
        assert!(m.take_frame().is_none());
        m.release_frame(a);
        assert!(!m.at_capacity());
        assert_eq!(m.take_frame(), Some(a));
    }

    #[test]
    fn lru_victim_is_least_recently_touched() {
        let mut m = mgr(3);
        for i in 0..3 {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f).unwrap();
        }
        m.touch(p(0)); // 0 refreshed; LRU is now 1
        let (v, forced) = m.pick_victims(&HashSet::new());
        assert_eq!(v, vec![p(1)]);
        assert!(!forced);
    }

    #[test]
    fn pinned_pages_are_skipped_until_forced() {
        let mut m = mgr(2);
        for i in 0..2 {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f).unwrap();
        }
        let pinned: HashSet<PageId> = [p(0)].into_iter().collect();
        let (v, forced) = m.pick_victims(&pinned);
        assert_eq!(v, vec![p(1)]);
        assert!(!forced);
        let all: HashSet<PageId> = [p(0), p(1)].into_iter().collect();
        let (v, forced) = m.pick_victims(&all);
        assert_eq!(v, vec![p(0)]); // LRU even though pinned
        assert!(forced);
    }

    #[test]
    fn empty_manager_has_no_victim() {
        let m = mgr(2);
        let (v, forced) = m.pick_victims(&HashSet::new());
        assert!(v.is_empty());
        assert!(!forced);
    }

    #[test]
    fn root_chunk_granularity_evicts_whole_region() {
        let mut m = MemoryManager::new(Some(10), EvictionGranularity::RootChunk, 4);
        // Region 0 holds pages 0..4; make 0, 2, 3 resident plus page 5 in
        // region 1.
        for i in [0u64, 2, 3, 5] {
            let f = m.take_frame().unwrap();
            m.mark_resident(p(i), f).unwrap();
        }
        m.touch(p(0)); // LRU seed becomes page 2
        let (v, _) = m.pick_victims(&HashSet::new());
        assert_eq!(v[0], p(2)); // seed first
        let mut rest = v[1..].to_vec();
        rest.sort();
        assert_eq!(rest, vec![p(0), p(3)]);
    }

    #[test]
    fn remove_makes_page_non_resident_and_counts() {
        let mut m = mgr(1);
        let f = m.take_frame().unwrap();
        m.mark_resident(p(7), f).unwrap();
        assert!(m.is_resident(p(7)));
        let got = m.remove(p(7)).unwrap();
        assert_eq!(got, f);
        assert!(!m.is_resident(p(7)));
        assert_eq!(m.evictions(), 1);
        assert_eq!(m.resident_count(), 0);
    }

    #[test]
    fn double_mark_is_an_accounting_error() {
        let mut m = mgr(2);
        let f = m.take_frame().unwrap();
        m.mark_resident(p(1), f).unwrap();
        let err = m.mark_resident(p(1), f).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        assert!(err.to_string().contains("resident twice"));
        // The failed insert must not corrupt the books.
        m.audit().unwrap();
    }

    #[test]
    fn remove_of_non_resident_is_an_accounting_error() {
        let mut m = mgr(2);
        let err = m.remove(p(3)).unwrap_err();
        assert!(matches!(err, SimError::Accounting { .. }), "{err}");
        m.audit().unwrap();
    }

    #[test]
    fn audit_passes_through_a_busy_lifecycle() {
        let mut m = mgr(4);
        for round in 0..8u64 {
            for i in 0..4u64 {
                let page = p(round * 4 + i);
                let frame = match m.take_frame() {
                    Some(f) => f,
                    None => {
                        let (v, _) = m.pick_victims(&HashSet::new());
                        let f = m.remove(v[0]).unwrap();
                        m.release_frame(f);
                        m.take_frame().unwrap()
                    }
                };
                m.mark_resident(page, frame).unwrap();
                m.audit().unwrap();
            }
        }
        assert_eq!(m.minted_frames(), 4);
        assert_eq!(m.free_frames(), 0);
    }

    #[test]
    fn touch_of_non_resident_is_noop() {
        let mut m = mgr(2);
        m.touch(p(9));
        assert_eq!(m.touches(), 0);
    }
}
