//! The dynamic thread-oversubscription degree controller.
//!
//! §4.1: the runtime starts with one extra thread block per SM; every
//! lifetime-sample period it compares the running average page lifetime to
//! the previous sample. A drop of at least the threshold signals premature
//! evictions, so the controller decrements the allowed degree (disallowing
//! further context switch-ins); otherwise it incrementally allocates one
//! more block per SM, up to the cap.

use crate::lifetime::LifetimeSample;
use crate::strategies::OversubscriptionHandler;
use batmem_types::policy::ToConfig;

/// The controller owning the current oversubscription degree.
#[derive(Debug, Clone)]
pub struct OversubController {
    config: ToConfig,
    degree: u32,
    decrements: u64,
    increments: u64,
}

impl OversubController {
    /// Creates the controller; the initial degree is
    /// [`ToConfig::initial_extra_blocks`] (0 when TO is disabled).
    pub fn new(config: ToConfig) -> Self {
        let degree = if config.enabled {
            config.initial_extra_blocks.min(config.max_extra_blocks)
        } else {
            0
        };
        Self { config, degree, decrements: 0, increments: 0 }
    }

    /// The allowed number of extra (inactive) blocks per SM right now.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Whether context switch-ins are currently allowed at all.
    pub fn switching_allowed(&self) -> bool {
        self.config.enabled && self.degree > 0
    }

    /// Feeds one lifetime sample; adjusts the degree per the paper's rule.
    pub fn on_sample(&mut self, sample: LifetimeSample) {
        if !self.config.enabled {
            return;
        }
        let threshold = f64::from(self.config.lifetime_drop_threshold_percent) / 100.0;
        match (sample.avg, sample.prev) {
            (Some(avg), Some(prev)) if prev > 0.0 && avg < prev * (1.0 - threshold) => {
                if self.degree > 0 {
                    self.degree -= 1;
                    self.decrements += 1;
                }
            }
            _ => {
                if self.degree < self.config.max_extra_blocks {
                    self.degree += 1;
                    self.increments += 1;
                }
            }
        }
    }

    /// Times the controller lowered the degree.
    pub fn decrements(&self) -> u64 {
        self.decrements
    }

    /// Times the controller raised the degree.
    pub fn increments(&self) -> u64 {
        self.increments
    }
}

impl OversubscriptionHandler for OversubController {
    fn name(&self) -> &'static str {
        if self.config.enabled {
            "to"
        } else {
            "none"
        }
    }

    fn degree(&self) -> u32 {
        OversubController::degree(self)
    }

    fn switching_allowed(&self) -> bool {
        OversubController::switching_allowed(self)
    }

    fn on_sample(&mut self, sample: LifetimeSample) {
        OversubController::on_sample(self, sample);
    }

    fn decrements(&self) -> u64 {
        OversubController::decrements(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(avg: Option<f64>, prev: Option<f64>) -> LifetimeSample {
        LifetimeSample { avg, prev }
    }

    #[test]
    fn disabled_controller_stays_at_zero() {
        let mut c = OversubController::new(ToConfig::default());
        assert_eq!(c.degree(), 0);
        assert!(!c.switching_allowed());
        c.on_sample(sample(Some(10.0), Some(100.0)));
        assert_eq!(c.degree(), 0);
    }

    #[test]
    fn starts_at_initial_degree() {
        let c = OversubController::new(ToConfig::enabled());
        assert_eq!(c.degree(), 1);
        assert!(c.switching_allowed());
    }

    #[test]
    fn big_lifetime_drop_decrements() {
        let mut c = OversubController::new(ToConfig::enabled());
        // 50% drop > 20% threshold.
        c.on_sample(sample(Some(50.0), Some(100.0)));
        assert_eq!(c.degree(), 0);
        assert!(!c.switching_allowed());
        assert_eq!(c.decrements(), 1);
    }

    #[test]
    fn small_drop_or_growth_increments_to_cap() {
        let mut c = OversubController::new(ToConfig::enabled());
        c.on_sample(sample(Some(90.0), Some(100.0))); // 10% drop: fine
        assert_eq!(c.degree(), 2);
        c.on_sample(sample(Some(95.0), Some(90.0))); // growth
        assert_eq!(c.degree(), 3);
        c.on_sample(sample(Some(95.0), Some(95.0))); // capped at 3
        assert_eq!(c.degree(), 3);
        assert_eq!(c.increments(), 2);
    }

    #[test]
    fn missing_history_counts_as_healthy() {
        let mut c = OversubController::new(ToConfig::enabled());
        c.on_sample(sample(None, None));
        assert_eq!(c.degree(), 2);
        c.on_sample(sample(Some(10.0), None));
        assert_eq!(c.degree(), 3);
    }

    #[test]
    fn degree_recovers_after_decrement() {
        let mut c = OversubController::new(ToConfig::enabled());
        c.on_sample(sample(Some(10.0), Some(100.0)));
        assert_eq!(c.degree(), 0);
        c.on_sample(sample(Some(10.0), Some(10.0)));
        assert_eq!(c.degree(), 1);
        assert!(c.switching_allowed());
    }
}
