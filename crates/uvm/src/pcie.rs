//! PCIe transfer scheduling.
//!
//! The link is modeled as two independent, serially occupied pipes — one per
//! direction — matching a full-duplex DMA engine (§4.2: "DMA engines in
//! modern CPUs and GPUs allow bidirectional transfers"). The *baseline*
//! eviction engine chooses not to exploit duplexing (evictions and
//! migrations serialize, §3); Unobtrusive Eviction schedules evictions on
//! the device-to-host pipe concurrently with host-to-device migrations.

use batmem_types::policy::PcieCompression;
use batmem_types::time::transfer_cycles;
use batmem_types::Cycle;

/// A scheduled transfer: when it occupies the pipe and when it completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// First cycle of pipe occupancy.
    pub start: Cycle,
    /// Completion cycle.
    pub end: Cycle,
}

/// The two PCIe directions.
#[derive(Debug, Clone)]
pub struct PciePipes {
    h2d_bytes_per_sec: u64,
    d2h_bytes_per_sec: u64,
    compression: PcieCompression,
    h2d_free: Cycle,
    d2h_free: Cycle,
    h2d_bytes: u64,
    d2h_bytes: u64,
    h2d_transfers: u64,
    d2h_transfers: u64,
}

impl PciePipes {
    /// Creates the pipes with the given per-direction bandwidths and
    /// optional link compression.
    pub fn new(h2d_bytes_per_sec: u64, d2h_bytes_per_sec: u64, compression: PcieCompression) -> Self {
        Self {
            h2d_bytes_per_sec,
            d2h_bytes_per_sec,
            compression,
            h2d_free: 0,
            d2h_free: 0,
            h2d_bytes: 0,
            d2h_bytes: 0,
            h2d_transfers: 0,
            d2h_transfers: 0,
        }
    }

    /// Cycles a host-to-device transfer of `bytes` occupies the pipe
    /// (including compression latency when enabled).
    pub fn h2d_cycles(&self, bytes: u64) -> Cycle {
        self.cycles(bytes, self.h2d_bytes_per_sec)
    }

    /// Cycles a device-to-host transfer of `bytes` occupies the pipe.
    pub fn d2h_cycles(&self, bytes: u64) -> Cycle {
        self.cycles(bytes, self.d2h_bytes_per_sec)
    }

    fn cycles(&self, bytes: u64, bw: u64) -> Cycle {
        let wire = self.compression.wire_bytes(bytes);
        let extra = if self.compression.enabled { self.compression.per_page_latency } else { 0 };
        transfer_cycles(wire, bw) + extra
    }

    /// Schedules a host-to-device transfer of `bytes` that may not start
    /// before `earliest`.
    pub fn schedule_h2d(&mut self, earliest: Cycle, bytes: u64) -> Transfer {
        let start = self.h2d_free.max(earliest);
        let end = start + self.h2d_cycles(bytes);
        self.h2d_free = end;
        self.h2d_bytes += bytes;
        self.h2d_transfers += 1;
        Transfer { start, end }
    }

    /// Schedules a device-to-host transfer of `bytes` that may not start
    /// before `earliest`.
    pub fn schedule_d2h(&mut self, earliest: Cycle, bytes: u64) -> Transfer {
        let start = self.d2h_free.max(earliest);
        let end = start + self.d2h_cycles(bytes);
        self.d2h_free = end;
        self.d2h_bytes += bytes;
        self.d2h_transfers += 1;
        Transfer { start, end }
    }

    /// Next cycle at which the host-to-device pipe is free.
    pub fn h2d_free_at(&self) -> Cycle {
        self.h2d_free
    }

    /// Next cycle at which the device-to-host pipe is free.
    pub fn d2h_free_at(&self) -> Cycle {
        self.d2h_free
    }

    /// Blocks the host-to-device pipe until at least `until` (used by the
    /// baseline to serialize a migration behind an eviction).
    pub fn stall_h2d_until(&mut self, until: Cycle) {
        self.h2d_free = self.h2d_free.max(until);
    }

    /// Total logical bytes moved host-to-device.
    pub fn h2d_total_bytes(&self) -> u64 {
        self.h2d_bytes
    }

    /// Total logical bytes moved device-to-host.
    pub fn d2h_total_bytes(&self) -> u64 {
        self.d2h_bytes
    }

    /// Transfers performed in each direction `(h2d, d2h)`.
    pub fn transfer_counts(&self) -> (u64, u64) {
        (self.h2d_transfers, self.d2h_transfers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipes() -> PciePipes {
        PciePipes::new(15_750_000_000, 17_300_000_000, PcieCompression::default())
    }

    #[test]
    fn page_transfer_time_matches_table1() {
        let p = pipes();
        // 64 KB at 15.75 GB/s ≈ 4161 ns (we round up).
        assert_eq!(p.h2d_cycles(64 * 1024), 4162);
        // The D2H direction is faster (§4.2).
        assert!(p.d2h_cycles(64 * 1024) < p.h2d_cycles(64 * 1024));
    }

    #[test]
    fn pipes_serialize_within_direction() {
        let mut p = pipes();
        let a = p.schedule_h2d(0, 64 * 1024);
        let b = p.schedule_h2d(0, 64 * 1024);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, a.end);
        assert_eq!(b.end - b.start, a.end - a.start);
    }

    #[test]
    fn directions_are_independent() {
        let mut p = pipes();
        let a = p.schedule_h2d(0, 64 * 1024);
        let b = p.schedule_d2h(0, 64 * 1024);
        // Full duplex: both start immediately.
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 0);
    }

    #[test]
    fn earliest_constraint_respected() {
        let mut p = pipes();
        let t = p.schedule_h2d(10_000, 64 * 1024);
        assert_eq!(t.start, 10_000);
    }

    #[test]
    fn stall_pushes_pipe() {
        let mut p = pipes();
        p.stall_h2d_until(5_000);
        let t = p.schedule_h2d(0, 64 * 1024);
        assert_eq!(t.start, 5_000);
    }

    #[test]
    fn compression_shortens_transfers_but_adds_latency() {
        let comp = PcieCompression { enabled: true, ratio_x100: 200, per_page_latency: 100 };
        let p = PciePipes::new(15_750_000_000, 17_300_000_000, comp);
        let plain = pipes().h2d_cycles(64 * 1024);
        let compressed = p.h2d_cycles(64 * 1024);
        // Half the bytes plus 100 cycles: still a clear win for big pages.
        assert!(compressed < plain);
        assert_eq!(compressed, 2081 + 100);
    }

    #[test]
    fn byte_and_transfer_accounting() {
        let mut p = pipes();
        p.schedule_h2d(0, 100);
        p.schedule_h2d(0, 200);
        p.schedule_d2h(0, 50);
        assert_eq!(p.h2d_total_bytes(), 300);
        assert_eq!(p.d2h_total_bytes(), 50);
        assert_eq!(p.transfer_counts(), (2, 1));
    }
}
