//! Stage 1 — fault capture: the top-half ISR path from a GPU MMU fault to
//! the replayable fault buffer, and the decision to open a batch.

use super::{State, UvmEvent, UvmOutput, UvmRuntime};
use batmem_types::probe::ProbeEvent;
use batmem_types::{Cycle, PageId, SimError};

impl UvmRuntime {
    /// Records a page fault raised by the GPU MMU at time `now` (the
    /// top-half ISR path). May start a batch if the runtime is idle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Accounting`] if the faulting page is already
    /// resident in the runtime's planned view — the engine should never
    /// raise a fault for a page it could have translated.
    pub fn record_fault(&mut self, page: PageId, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        let mut out = Vec::new();
        self.record_fault_into(page, now, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Self::record_fault`]: appends the
    /// resulting commands to `out` (typically the engine's recycled
    /// scratch) instead of allocating a fresh `Vec` per fault.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::record_fault`].
    pub fn record_fault_into(
        &mut self,
        page: PageId,
        now: Cycle,
        out: &mut Vec<UvmOutput>,
    ) -> Result<(), SimError> {
        if self.lifetime.on_fault(page) {
            // The refault just classified the page's eviction as premature.
            self.probes.emit_with(now, || ProbeEvent::PrematureEviction { page });
        }
        if self.current.is_some() && self.batch_pages.contains(page) {
            // Absorb the fault only while the open batch will still
            // deliver the page: before planning, or while its transfer
            // is in flight. A batch page that already arrived and was
            // then force-evicted (capacity below batch size) must be
            // treated as a fresh fault, or its waiters starve.
            let will_arrive = match self.state {
                State::Draining | State::Handling => true,
                _ => self.inflight.contains(page),
            };
            if will_arrive {
                self.faults_on_pending += 1;
                self.probes.emit_with(now, || ProbeEvent::FaultAbsorbed { page });
                return Ok(());
            }
        }
        if self.mem.is_resident(page) {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("fault raised for planned-resident page {page}"),
            });
        }
        self.buffer.record(page, now);
        self.probes.emit_with(now, || ProbeEvent::FaultRaised { page });
        if self.injector.as_mut().is_some_and(|i| i.duplicate_fault()) {
            // Spurious duplicate fault delivery: coalesces in the buffer
            // (and shows up in the dedup counters), as on real hardware.
            self.buffer.record(page, now);
            self.probes.emit_with(now, || ProbeEvent::FaultRaised { page });
        }
        if self.state == State::Idle {
            self.state = State::Draining;
            out.push(UvmOutput::Schedule {
                at: now + self.servicing.isr_latency(self.cfg.isr_latency),
                event: UvmEvent::DrainBuffer,
            });
        }
        Ok(())
    }
}
