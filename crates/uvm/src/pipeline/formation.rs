//! Stage 2 — batch formation and prefetch expansion: drain the fault
//! buffer, sort and deduplicate, expand via the [`Prefetcher`] strategy,
//! and open the batch's fault-handling window.
//!
//! [`Prefetcher`]: crate::strategies::Prefetcher

use super::{BatchPlan, State, UvmEvent, UvmOutput, UvmRuntime};
use crate::adaptive::AdaptiveSignals;
use crate::batch::BatchRecord;
use batmem_types::probe::{EvictionCause, ProbeEvent};
use batmem_types::{Cycle, PageId, SimError};

impl UvmRuntime {
    /// Appends the opened batch's commands to `outputs` (the engine's
    /// recycled scratch).
    pub(crate) fn start_batch(
        &mut self,
        now: Cycle,
        outputs: &mut Vec<UvmOutput>,
    ) -> Result<(), SimError> {
        debug_assert_eq!(self.state, State::Idle);
        let faulted: Vec<PageId> = self
            .buffer
            .drain_sorted()
            .into_iter()
            .filter(|p| !self.mem.is_resident(*p))
            .collect();
        if faulted.is_empty() {
            return Ok(());
        }
        let prefetched = {
            let mem = &self.mem;
            self.prefetcher.expand(&faulted, &|p| mem.is_resident(p), self.valid_pages)
        };
        // Adaptive throttle: when the probe saw too many premature
        // refaults last epoch, prefetch density drops to zero for this
        // epoch (the candidates were being evicted before use anyway).
        // Like the injector filter below, this runs after `expand` so the
        // prefetcher's issue counter reflects what the policy *asked* for.
        let prefetched: Vec<PageId> =
            if self.signals.as_ref().is_some_and(AdaptiveSignals::throttle_prefetch) {
                Vec::new()
            } else {
                prefetched
            };
        // Injected prefetch drops: the candidate silently never migrates,
        // so its eventual demand access must fault and recover.
        let prefetched: Vec<PageId> = match &mut self.injector {
            Some(inj) => prefetched.into_iter().filter(|_| !inj.drop_prefetch()).collect(),
            None => prefetched,
        };
        let num_faults = faulted.len();
        let mut pages = faulted;
        pages.extend(prefetched);
        pages.sort_unstable();
        pages.dedup();

        // Coalescing completion: when the batch plus already-resident pages
        // cover enough of a large-page group (the policy's density
        // threshold), pull in the group's missing pages so the group can
        // promote to a large mapping once everything lands.
        if !self.coalesce.is_off() {
            let ppl = self.pages_per_large;
            let mut extra: Vec<PageId> = Vec::new();
            let mut i = 0;
            while i < pages.len() {
                let group = pages[i].index() / ppl;
                let mut j = i;
                while j < pages.len() && pages[j].index() / ppl == group {
                    j += 1;
                }
                let first = group * ppl;
                let end = (first + ppl).min(self.valid_pages);
                let mut resident = 0u64;
                for idx in first..end {
                    if self.mem.is_resident(PageId::new(idx)) {
                        resident += 1;
                    }
                }
                // Batch pages are non-resident by construction, so the two
                // counts are disjoint.
                let covered = (j - i) as u64 + resident;
                if self.coalesce.wants_completion(covered, ppl) {
                    for idx in first..end {
                        let p = PageId::new(idx);
                        if !self.mem.is_resident(p) && !pages[i..j].contains(&p) {
                            extra.push(p);
                        }
                    }
                }
                i = j;
            }
            if !extra.is_empty() {
                pages.extend(extra);
                pages.sort_unstable();
                pages.dedup();
            }
        }

        let handling = self.servicing.handling_window(
            self.cfg.fault_handling_base,
            self.cfg.fault_handling_per_fault,
            num_faults as u64,
        );
        let id = self.batch_seq;
        self.batch_seq += 1;
        let record = BatchRecord {
            id,
            start: now,
            handling_done: now + handling,
            first_migration_start: 0,
            end: 0,
            faults: num_faults as u32,
            prefetches: (pages.len() - num_faults) as u32,
            evictions: 0,
            forced_pinned_evictions: 0,
            migrated_bytes: 0,
        };
        self.batch_pages.clear();
        for &pg in &pages {
            self.batch_pages.insert(pg);
        }
        self.planned_arrival.clear();
        let mut plan = BatchPlan { record, remaining: pages.len(), pages };
        self.probes.emit_with(now, || ProbeEvent::BatchOpened {
            batch: id,
            faults: plan.record.faults,
            prefetches: plan.record.prefetches,
            handling_cycles: handling,
        });
        outputs.push(UvmOutput::Schedule { at: now + handling, event: UvmEvent::HandlingDone { batch: id } });

        // Unobtrusive Eviction: the top-half ISR checks the memory status
        // tracker and issues one preemptive eviction so the first migration
        // can start unhindered (§4.2, Fig. 9 steps 2-3).
        if self.eviction.preemptive() && self.mem.at_capacity() && self.pending_free.is_empty() {
            self.schedule_evictions(now, &mut plan, outputs, EvictionCause::Preemptive)?;
            self.preemptive_evictions += 1;
        }

        // ETC-style Proactive Eviction: predict the batch's frame demand
        // and evict ahead of the allocations, overlapped with the handling
        // window. Mispredicted victims show up as premature evictions,
        // which is why ETC disables PE for irregular applications. The
        // adaptive policy turns the same pass on for an epoch when its
        // probe saw healthy (non-premature) eviction behavior.
        let eager = !self.policy.proactive_eviction
            && self.signals.as_ref().is_some_and(AdaptiveSignals::eager_eviction);
        if self.policy.proactive_eviction || eager {
            let goal = plan.pages.len() as u64;
            let mut need = goal
                .saturating_sub(self.mem.available_without_eviction() + self.pending_free.len() as u64);
            while need > 0 && self.mem.resident_count() > 0 {
                let before = self.pending_free.len() as u64;
                self.schedule_evictions(now, &mut plan, outputs, EvictionCause::Proactive)?;
                let after = self.pending_free.len() as u64;
                // An eviction pass may only add pending frames; a shrink
                // here means the frame books are broken regardless of
                // audit level.
                let Some(freed) = after.checked_sub(before) else {
                    return Err(SimError::Accounting {
                        cycle: now,
                        detail: format!(
                            "proactive eviction consumed {} pending frames instead of freeing any",
                            before - after
                        ),
                    });
                };
                if freed == 0 {
                    break;
                }
                self.proactive_evictions += freed;
                let decremented = need.saturating_sub(freed);
                // Round-trip the frame ledger: the decremented shortfall
                // must equal one re-derived from the books. A pass that
                // frees more than requested clamps both sides to zero;
                // anything else (e.g. frames double-counted between the
                // free list and pending_free) is drift that the chained
                // saturating_sub used to hide.
                let rederived = goal.saturating_sub(
                    self.mem.available_without_eviction() + self.pending_free.len() as u64,
                );
                if decremented != rederived {
                    let snapshot = format!(
                        "goal={goal} need={need} freed={freed} decremented={decremented} \
                         rederived={rederived} ({})",
                        self.describe_state()
                    );
                    if self.audit.enabled() {
                        return Err(SimError::InvariantViolated {
                            cycle: now,
                            invariant: "proactive-eviction frame ledger round-trips",
                            snapshot,
                        });
                    }
                    debug_assert!(false, "proactive frame ledger drifted: {snapshot}");
                }
                need = decremented;
            }
        }

        self.current = Some(plan);
        self.state = State::Handling;
        Ok(())
    }
}
