//! Stage 4 — migration scheduling: place the batch's transfers on the
//! PCIe host-to-device pipe, install arrivals, close the batch, and replay
//! accumulated faults.

use super::{State, UvmEvent, UvmOutput, UvmRuntime};
use crate::inject::FaultInjector;
use batmem_types::probe::ProbeEvent;
use batmem_types::{Cycle, FrameId, PageId, SimError};

impl UvmRuntime {
    /// Appends the batch's migration commands to `outputs` (the engine's
    /// recycled scratch).
    pub(crate) fn plan_migrations(
        &mut self,
        batch: u64,
        now: Cycle,
        outputs: &mut Vec<UvmOutput>,
    ) -> Result<(), SimError> {
        if self.state != State::Handling {
            return Err(self.unexpected(
                now,
                &format!("HandlingDone(batch:{batch})"),
                "migration planning outside the handling window",
            ));
        }
        let Some(mut plan) = self.current.take() else {
            return Err(self.unexpected(
                now,
                &format!("HandlingDone(batch:{batch})"),
                "no batch is open",
            ));
        };
        if plan.record.id != batch {
            let open = plan.record.id;
            self.current = Some(plan);
            return Err(self.unexpected(
                now,
                &format!("HandlingDone(batch:{batch})"),
                &format!("stale batch (open batch is {open})"),
            ));
        }
        let page_bytes = self.cfg.page_bytes();
        for i in 0..plan.pages.len() {
            let page = plan.pages[i];
            // Contiguity-aware allocation for the coalescing path: prefer
            // the frame right after the previous page of the same group, so
            // promoted groups tend toward physically contiguous frames.
            let preferred = if self.coalesce.is_off() {
                None
            } else {
                page.index().checked_sub(1).and_then(|prev| {
                    let prev = PageId::new(prev);
                    if self.group_of(prev) == self.group_of(page) {
                        self.mem.frame_of(prev).map(|f| FrameId::new(f.index() + 1))
                    } else {
                        None
                    }
                })
            };
            let (frame, ready) = self.acquire_frame(now, &mut plan, outputs, preferred)?;
            // Injected PCIe perturbation: jitter/stalls delay when this
            // transfer may claim the host-to-device pipe.
            let extra = self.injector.as_mut().map_or(0, FaultInjector::transfer_delay);
            let tr = self.pipes.schedule_h2d(now.max(ready) + extra, page_bytes);
            if i == 0 {
                plan.record.first_migration_start = tr.start;
            }
            self.probes.emit_with(now, || ProbeEvent::MigrationStarted {
                batch,
                page,
                start: tr.start,
                end: tr.end,
            });
            for (victim, avail) in self.ideal_evicts.drain(..) {
                let at = tr.start.max(avail);
                outputs.push(UvmOutput::Schedule { at, event: UvmEvent::EvictionStarted { page: victim } });
                self.lifetime.on_evict(victim, at, self.audit)?;
            }
            plan.record.migrated_bytes += page_bytes;
            self.mem.mark_resident(page, frame, now)?;
            self.lifetime.on_install(page, tr.end);
            self.inflight.insert(page, frame);
            self.planned_arrival.insert(page, tr.end);
            // Injected lost DMA completion: the transfer occupies the pipe
            // but its PageArrived event never fires, stranding the batch.
            let lost = self.injector.as_mut().is_some_and(|i| i.drop_arrival());
            if !lost {
                outputs.push(UvmOutput::Schedule { at: tr.end, event: UvmEvent::PageArrived { page } });
            }
        }
        self.current = Some(plan);
        self.state = State::Migrating;
        Ok(())
    }

    /// Appends the arrival's commands to `outputs` (the engine's recycled
    /// scratch).
    pub(crate) fn page_arrived(
        &mut self,
        page: PageId,
        now: Cycle,
        outputs: &mut Vec<UvmOutput>,
    ) -> Result<(), SimError> {
        if self.state != State::Migrating {
            return Err(self.unexpected(
                now,
                &format!("PageArrived(page:{page})"),
                "no batch is migrating",
            ));
        }
        let Some(frame) = self.inflight.remove(page) else {
            return Err(SimError::Accounting {
                cycle: now,
                detail: format!("arrival of page {page} that is not in flight"),
            });
        };
        self.probes.emit_with(now, || ProbeEvent::MigrationCompleted { page, frame });
        outputs.push(UvmOutput::Install { page, frame });
        self.note_installed(page, now, outputs);
        let finished = {
            let Some(plan) = self.current.as_mut() else {
                return Err(self.unexpected(
                    now,
                    &format!("PageArrived(page:{page})"),
                    "no batch is open",
                ));
            };
            if plan.remaining == 0 {
                return Err(SimError::Accounting {
                    cycle: now,
                    detail: format!("arrival of page {page} after its batch completed"),
                });
            }
            plan.remaining -= 1;
            plan.remaining == 0
        };
        if finished {
            if let Some(mut plan) = self.current.take() {
                plan.record.end = now;
                let r = plan.record;
                self.probes.emit_with(now, || ProbeEvent::BatchClosed {
                    batch: r.id,
                    faults: r.faults,
                    prefetches: r.prefetches,
                    evictions: r.evictions,
                    forced_pinned_evictions: r.forced_pinned_evictions,
                    migrated_bytes: r.migrated_bytes,
                    opened_at: r.start,
                    first_migration_start: r.first_migration_start,
                });
                self.finished_batches.push(plan.record);
            }
            self.state = State::Idle;
            // Driver replay optimization (§2.2): service accumulated faults
            // immediately rather than waiting for a fresh interrupt.
            if !self.buffer.is_empty() {
                self.start_batch(now, outputs)?;
            }
        }
        Ok(())
    }
}
