//! The staged UVM fault pipeline: batched fault processing, migration
//! scheduling, and pluggable eviction.
//!
//! The runtime mirrors the driver control flow the paper analyzes, as an
//! explicit pipeline of stages, one module per stage:
//!
//! 1. **Fault capture** ([`capture`]) — a fault arrives
//!    ([`UvmRuntime::record_fault`]) and lands in the replayable fault
//!    buffer; if the runtime is idle the ISR schedules a drain.
//! 2. **Batch formation + prefetch expansion** ([`formation`]) — the
//!    buffer drains, faults are sorted and deduplicated, the configured
//!    [`Prefetcher`] expands the batch, and the *GPU runtime fault
//!    handling time* elapses ([`UvmEvent::HandlingDone`]).
//! 3. **Residency/eviction decision** ([`residency`]) — when device memory
//!    is at capacity each needed frame comes from the configured
//!    [`EvictionStrategy`]:
//!    * `lru` — the eviction transfer blocks the host-to-device pipe
//!      (Fig. 4: migration begins only after the eviction completes);
//!    * `ue` — one preemptive eviction is issued at batch start
//!      (overlapping the handling window) and further evictions pipeline
//!      on the device-to-host direction (Fig. 10);
//!    * `ideal` — frames free instantly (Fig. 8's limit study);
//!    * anything else registered in the
//!      [`PolicyRegistry`](crate::registry::PolicyRegistry).
//! 4. **Migration scheduling** ([`migration`]) — transfers are placed on
//!    the PCIe host-to-device pipe; each arrival
//!    ([`UvmEvent::PageArrived`]) installs the page, and after the last
//!    one the batch closes and, if faults accumulated meanwhile, the next
//!    batch starts immediately (the driver's replay optimization).
//!
//! The runtime never touches the MMU or event queue directly: it returns
//! [`UvmOutput`] commands that the engine applies, keeping this crate
//! independently testable.
//!
//! All entry points are fallible: an event that contradicts the state
//! machine or the residency books returns a [`SimError`] carrying the
//! cycle, event, and state at the point of failure instead of panicking.
//! [`UvmRuntime::set_audit`] additionally re-derives the runtime's
//! conservation laws after every event, and [`UvmRuntime::set_injector`]
//! arms deterministic fault injection for robustness tests.
//!
//! Observation goes through the probe layer: every fault, batch
//! open/close, migration, eviction (with its cause and pinned/premature
//! classification) is emitted as a
//! [`ProbeEvent`](batmem_types::probe::ProbeEvent) on the
//! [`SharedProbes`] handle installed by [`UvmRuntime::set_probes`] —
//! [`UvmStats`] is merely the built-in aggregate of the same stream.

pub mod capture;
pub mod formation;
pub mod migration;
pub mod residency;

#[cfg(test)]
mod tests;

use crate::adaptive::AdaptiveSignals;
use crate::batch::BatchRecord;
use crate::fault::FaultBuffer;
use crate::inject::{FaultInjector, InjectConfig, InjectStats};
use crate::lifetime::{LifetimeSample, LifetimeTracker};
use crate::memmgr::MemoryManager;
use crate::pcie::PciePipes;
use crate::prefetch::TreePrefetcher;
use crate::stats::UvmStats;
use crate::strategies::{
    CoalesceOff, CoalesceStrategy, CpuServicing, EvictionStrategy, FaultServicingModel,
    IdealEviction, NoPrefetch, Prefetcher, SerializedLruEviction, ServicingCounters,
    UnobtrusiveEviction,
};
use batmem_types::config::UvmConfig;
use batmem_types::dense::{EpochPageMap, EpochPageSet, PageMap, RegionSet, TieredPageMap};
use batmem_types::policy::{EvictionPolicy, PolicyConfig, PrefetchPolicy};
use batmem_types::probe::{ProbeEvent, SharedProbes};
use batmem_types::{AuditLevel, Cycle, FrameId, PageId, RegionId, SimError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Events the runtime schedules for itself through the engine's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvmEvent {
    /// The top-half ISR responds to the fault interrupt: drain the buffer
    /// and begin a batch. Faults raised during the interrupt-delivery
    /// window join the batch.
    DrainBuffer,
    /// Preprocessing and CPU page-table walks for a batch finished.
    HandlingDone {
        /// The batch's sequence number.
        batch: u64,
    },
    /// A page's host-to-device transfer completed.
    PageArrived {
        /// The migrated page.
        page: PageId,
    },
    /// An eviction transfer began; the page must leave the GPU page table
    /// now (subsequent accesses fault).
    EvictionStarted {
        /// The evicted page.
        page: PageId,
    },
}

/// Commands the runtime returns for the engine to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UvmOutput {
    /// Enqueue `event` at time `at`.
    Schedule {
        /// Delivery time.
        at: Cycle,
        /// The event to deliver back to the runtime.
        event: UvmEvent,
    },
    /// Install `page -> frame` in the GPU page table and wake its waiters.
    Install {
        /// The arrived page.
        page: PageId,
        /// The frame it occupies.
        frame: FrameId,
    },
    /// Remove `page` from the GPU page table (with TLB shootdown).
    Evict {
        /// The evicted page.
        page: PageId,
    },
    /// Promote the fully-installed large-page group `region` to a single
    /// large mapping (every page of the group was installed by preceding
    /// `Install` commands).
    Coalesce {
        /// The promoted large-page group.
        region: RegionId,
    },
    /// Demote large-page group `region` back to base mappings; always
    /// emitted before any `Evict` of a page under a promoted mapping.
    Splinter {
        /// The demoted large-page group.
        region: RegionId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum State {
    Idle,
    /// A fault interrupt was raised; the drain fires after the ISR latency.
    Draining,
    Handling,
    Migrating,
}

#[derive(Debug)]
pub(crate) struct BatchPlan {
    pub(crate) record: BatchRecord,
    pub(crate) pages: Vec<PageId>,
    pub(crate) remaining: usize,
}

/// The UVM runtime model. See the [module documentation](self).
#[derive(Debug)]
pub struct UvmRuntime {
    pub(crate) cfg: UvmConfig,
    pub(crate) policy: PolicyConfig,
    pub(crate) buffer: FaultBuffer,
    pub(crate) mem: MemoryManager,
    pub(crate) pipes: PciePipes,
    pub(crate) eviction: Box<dyn EvictionStrategy>,
    pub(crate) prefetcher: Box<dyn Prefetcher>,
    pub(crate) coalesce: Box<dyn CoalesceStrategy>,
    /// Fault-servicing cost model consulted by the capture (ISR latency)
    /// and formation (handling window) stages.
    pub(crate) servicing: Box<dyn FaultServicingModel>,
    /// Actuation signals of the adaptive oversubscription policy (`None`
    /// for every static policy — all fast paths stay untouched).
    pub(crate) signals: Option<AdaptiveSignals>,
    /// Base pages per large-page group (from the configured geometry).
    pub(crate) pages_per_large: u64,
    /// Pages currently installed in the GPU page table, mirrored from the
    /// `Install`/`Evict` commands this runtime emits; its per-group counts
    /// gate promotion.
    pub(crate) installed: TieredPageMap<()>,
    /// Groups currently promoted to a large mapping (mirrors the page
    /// table's promoted set).
    pub(crate) promoted: RegionSet,
    /// Groups that were splintered at least once (the sticky input to
    /// [`CoalesceStrategy::should_promote`]).
    pub(crate) splintered: RegionSet,
    pub(crate) lifetime: LifetimeTracker,
    pub(crate) state: State,
    pub(crate) current: Option<BatchPlan>,
    /// Pages of the open batch (dense epoch set, cleared per batch; only
    /// meaningful while `current` is `Some`).
    pub(crate) batch_pages: EpochPageSet,
    /// Planned arrival time per open-batch page (same epoch discipline).
    pub(crate) planned_arrival: EpochPageMap<Cycle>,
    /// Frames freed by in-flight evictions, keyed by availability time.
    pub(crate) pending_free: BinaryHeap<Reverse<(Cycle, FrameId)>>,
    /// Pages of the current batch being migrated, with assigned frames.
    pub(crate) inflight: PageMap<FrameId>,
    /// Upper bound on valid page indices (prefetch never crosses it).
    pub(crate) valid_pages: u64,
    /// Ideal-eviction victims awaiting their shootdown timestamp (emitted
    /// at the consuming migration's start, the latest consistent moment).
    pub(crate) ideal_evicts: Vec<(PageId, Cycle)>,
    pub(crate) batch_seq: u64,
    pub(crate) finished_batches: Vec<BatchRecord>,
    pub(crate) faults_on_pending: u64,
    pub(crate) preemptive_evictions: u64,
    pub(crate) proactive_evictions: u64,
    pub(crate) audit: AuditLevel,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) probes: SharedProbes,
}

impl UvmRuntime {
    /// Creates the runtime for an address space of `valid_pages` pages,
    /// mapping the policy enums onto the built-in strategies.
    pub fn new(cfg: &UvmConfig, policy: &PolicyConfig, valid_pages: u64) -> Self {
        let eviction: Box<dyn EvictionStrategy> = match policy.eviction {
            EvictionPolicy::SerializedLru => Box::new(SerializedLruEviction),
            EvictionPolicy::Unobtrusive => Box::new(UnobtrusiveEviction),
            EvictionPolicy::Ideal => Box::new(IdealEviction),
        };
        let prefetcher: Box<dyn Prefetcher> = match policy.prefetch {
            PrefetchPolicy::None => Box::new(NoPrefetch),
            PrefetchPolicy::Tree { threshold_percent } => {
                Box::new(TreePrefetcher::new(cfg.pages_per_region(), threshold_percent))
            }
        };
        Self::with_strategies(cfg, policy, valid_pages, eviction, prefetcher, Box::new(CoalesceOff))
    }

    /// Creates the runtime around externally constructed strategies — the
    /// entry point used by the registry-driven builder, and by anything
    /// plugging in a strategy the policy enums cannot express.
    pub fn with_strategies(
        cfg: &UvmConfig,
        policy: &PolicyConfig,
        valid_pages: u64,
        eviction: Box<dyn EvictionStrategy>,
        prefetcher: Box<dyn Prefetcher>,
        coalesce: Box<dyn CoalesceStrategy>,
    ) -> Self {
        let pages_per_large = cfg.geometry.pages_per_large();
        Self {
            cfg: cfg.clone(),
            policy: *policy,
            buffer: FaultBuffer::new(cfg.fault_buffer_entries),
            mem: MemoryManager::new(
                cfg.gpu_mem_pages,
                policy.eviction_granularity,
                cfg.pages_per_region(),
            ),
            pipes: PciePipes::new(
                cfg.pcie_h2d_bytes_per_sec,
                cfg.pcie_d2h_bytes_per_sec,
                policy.compression,
            ),
            eviction,
            prefetcher,
            coalesce,
            servicing: Box::new(CpuServicing),
            signals: None,
            pages_per_large,
            installed: TieredPageMap::with_pages_per_region(pages_per_large),
            promoted: RegionSet::new(),
            splintered: RegionSet::new(),
            lifetime: LifetimeTracker::with_pages_per_large(pages_per_large),
            state: State::Idle,
            current: None,
            batch_pages: EpochPageSet::new(),
            planned_arrival: EpochPageMap::new(),
            pending_free: BinaryHeap::new(),
            inflight: PageMap::new(),
            ideal_evicts: Vec::new(),
            valid_pages,
            batch_seq: 0,
            finished_batches: Vec::new(),
            faults_on_pending: 0,
            preemptive_evictions: 0,
            proactive_evictions: 0,
            audit: AuditLevel::Off,
            injector: None,
            probes: SharedProbes::disabled(),
        }
    }

    /// Sets the invariant-audit level. When enabled, the runtime re-checks
    /// its conservation laws after every delivered event and fails the run
    /// with [`SimError::InvariantViolated`] on the first breach.
    pub fn set_audit(&mut self, level: AuditLevel) {
        self.audit = level;
    }

    /// Arms deterministic fault injection (see [`InjectConfig`]).
    pub fn set_injector(&mut self, cfg: InjectConfig) {
        self.injector = Some(FaultInjector::new(cfg));
    }

    /// Installs the fault-servicing cost model (default: [`CpuServicing`],
    /// whose arithmetic is the seed's, verbatim).
    pub fn set_servicing(&mut self, servicing: Box<dyn FaultServicingModel>) {
        self.servicing = servicing;
    }

    /// Installs the adaptive policy's actuation signals; the formation
    /// stage consults them for prefetch throttling and eager eviction.
    pub fn set_adaptive_signals(&mut self, signals: AdaptiveSignals) {
        self.signals = Some(signals);
    }

    /// Installs the probe emission handle (shared with the engine). The
    /// default handle is inert; with it, every emission site below is a
    /// single predictable branch.
    pub fn set_probes(&mut self, probes: SharedProbes) {
        self.probes = probes;
    }

    /// What the injector has done so far (`None` when injection is off).
    pub fn injector_stats(&self) -> Option<InjectStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Refreshes a resident page's LRU position (called by the engine on
    /// L1 TLB misses — the aged-LRU approximation).
    pub fn touch(&mut self, page: PageId) {
        self.mem.touch(page);
    }

    /// Delivers a previously scheduled event back to the runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StateMachine`] when the event does not match the
    /// runtime's state (an engine bug), [`SimError::Accounting`] when the
    /// residency books contradict themselves, and
    /// [`SimError::InvariantViolated`] when auditing is enabled and a
    /// conservation law fails after the event applies.
    pub fn on_event(&mut self, event: UvmEvent, now: Cycle) -> Result<Vec<UvmOutput>, SimError> {
        let mut out = Vec::new();
        self.on_event_into(event, now, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Self::on_event`]: appends the resulting
    /// commands to `out` (typically the engine's recycled scratch buffer)
    /// instead of allocating a fresh `Vec` per event.
    ///
    /// On error, `out` may hold a partial prefix of commands; callers must
    /// not apply it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::on_event`].
    pub fn on_event_into(
        &mut self,
        event: UvmEvent,
        now: Cycle,
        out: &mut Vec<UvmOutput>,
    ) -> Result<(), SimError> {
        match event {
            UvmEvent::DrainBuffer => {
                if self.state != State::Draining {
                    return Err(self.unexpected(now, "DrainBuffer", "drain outside the ISR window"));
                }
                self.state = State::Idle;
                self.start_batch(now, out)?;
            }
            UvmEvent::HandlingDone { batch } => self.plan_migrations(batch, now, out)?,
            UvmEvent::PageArrived { page } => self.page_arrived(page, now, out)?,
            UvmEvent::EvictionStarted { page } => {
                // Splinter-before-evict: a page may not leave the page
                // table while its group holds a large mapping.
                let group = self.group_of(page);
                if self.promoted.remove(group) {
                    self.splintered.insert(group);
                    self.probes.emit_with(now, || ProbeEvent::RegionSplintered { region: group });
                    out.push(UvmOutput::Splinter { region: group });
                }
                self.installed.remove(page);
                out.push(UvmOutput::Evict { page });
            }
        }
        if self.audit.enabled() {
            self.check_invariants(now)?;
        }
        Ok(())
    }

    /// The large-page group containing `page`.
    pub(crate) fn group_of(&self, page: PageId) -> RegionId {
        RegionId::new(page.index() / self.pages_per_large)
    }

    /// Records that `page` was installed in the GPU page table (its
    /// `Install` command was just emitted) and, when the coalescing policy
    /// agrees and the group is now fully installed, emits the group's
    /// promotion.
    pub(crate) fn note_installed(&mut self, page: PageId, now: Cycle, out: &mut Vec<UvmOutput>) {
        if self.coalesce.is_off() {
            return;
        }
        self.installed.insert(page, ());
        let group = self.group_of(page);
        if self.installed.region_is_full(group)
            && !self.promoted.contains(group)
            && self.coalesce.should_promote(self.splintered.contains(group))
        {
            self.promoted.insert(group);
            let pages = self.pages_per_large as u32;
            self.probes.emit_with(now, || ProbeEvent::RegionCoalesced { region: group, pages });
            out.push(UvmOutput::Coalesce { region: group });
        }
    }

    /// Large-page groups currently promoted (runtime's view).
    pub fn promoted_groups(&self) -> usize {
        self.promoted.len()
    }

    /// Builds a [`SimError::StateMachine`] snapshotting the current state.
    pub(crate) fn unexpected(&self, now: Cycle, event: &str, detail: &str) -> SimError {
        SimError::StateMachine {
            cycle: now,
            event: event.to_string(),
            state: format!("{:?}", self.state),
            detail: detail.to_string(),
        }
    }

    /// Closes a lifetime sampling window (driven by the engine every
    /// [`ToConfig::lifetime_sample_period`](batmem_types::policy::ToConfig)).
    pub fn sample_lifetime(&mut self) -> LifetimeSample {
        self.lifetime.sample()
    }

    /// Whether a batch is currently open.
    pub fn busy(&self) -> bool {
        self.state != State::Idle
    }

    /// Whether `page` is currently migrating.
    pub fn is_inflight(&self, page: PageId) -> bool {
        self.inflight.contains(page)
    }

    /// Whether `page` is resident in the runtime's planned view (which may
    /// lead the GPU page table by up to one batch's scheduling).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.mem.is_resident(page)
    }

    /// Pages currently resident (planned view).
    pub fn resident_pages(&self) -> usize {
        self.mem.resident_count()
    }

    /// Preemptive evictions issued by the UE top-half path.
    pub fn preemptive_evictions(&self) -> u64 {
        self.preemptive_evictions
    }

    /// Outstanding page arrivals of the open batch (engine diagnostics).
    pub fn outstanding(&self) -> usize {
        self.current.as_ref().map_or(0, |p| p.remaining)
    }

    /// One-line state description for watchdog and deadlock dumps.
    pub fn describe_state(&self) -> String {
        format!(
            "uvm state={:?} open_batch={:?} remaining={} inflight={} resident={} pending_free={} buffered_faults={}",
            self.state,
            self.current.as_ref().map(|p| p.record.id),
            self.outstanding(),
            self.inflight.len(),
            self.mem.resident_count(),
            self.pending_free.len(),
            !self.buffer.is_empty(),
        )
    }

    /// Re-derives the runtime's invariants from scratch.
    ///
    /// Run automatically after every event when [`set_audit`](Self::set_audit)
    /// enables auditing; also callable directly by tests. `Basic` covers
    /// state/plan structural consistency; `Full` adds the O(resident)
    /// frame-conservation and LRU-index scans.
    pub fn check_invariants(&self, now: Cycle) -> Result<(), SimError> {
        let violated = |invariant: &'static str, snapshot: String| {
            Err(SimError::InvariantViolated { cycle: now, invariant, snapshot })
        };
        match self.state {
            State::Idle | State::Draining => {
                if self.current.is_some() || !self.inflight.is_empty() {
                    return violated("idle runtime has no open batch", self.describe_state());
                }
            }
            State::Handling => {
                let Some(plan) = &self.current else {
                    return violated("handling state has an open batch", self.describe_state());
                };
                if plan.remaining != plan.pages.len() || !self.inflight.is_empty() {
                    return violated(
                        "handling batch has not started migrating",
                        self.describe_state(),
                    );
                }
            }
            State::Migrating => {
                let Some(plan) = &self.current else {
                    return violated("migrating state has an open batch", self.describe_state());
                };
                if self.inflight.len() != plan.remaining || plan.remaining > plan.pages.len() {
                    return violated(
                        "in-flight pages equal outstanding arrivals",
                        self.describe_state(),
                    );
                }
            }
        }
        if let Some(plan) = &self.current {
            let planned = plan.record.faults as usize + plan.record.prefetches as usize;
            if planned != plan.pages.len() || self.batch_pages.len() != plan.pages.len() {
                return violated(
                    "batch page counts are conserved",
                    format!(
                        "faults+prefetches={planned} pages={} set={}",
                        plan.pages.len(),
                        self.batch_pages.len()
                    ),
                );
            }
            // Every in-flight page belongs to the open batch: batch pages
            // and in-flight pages are both duplicate-free, so counting the
            // batch pages that are in flight is an O(batch) subset check.
            let inflight_batch_pages =
                plan.pages.iter().filter(|p| self.inflight.contains(**p)).count();
            if inflight_batch_pages != self.inflight.len() {
                return violated(
                    "in-flight pages belong to the open batch",
                    self.describe_state(),
                );
            }
        }
        if self.audit >= AuditLevel::Full {
            // Splinter-before-evict: a promoted group's pages are all still
            // installed (promotion implies full residency at all times).
            if let Some(g) = self.promoted.iter().find(|&g| !self.installed.region_is_full(g)) {
                return violated(
                    "promoted groups are fully installed",
                    format!(
                        "group {g} promoted with {}/{} pages installed",
                        self.installed.region_len(g),
                        self.pages_per_large
                    ),
                );
            }
            self.mem.audit(now)?;
            // Frame conservation: every frame ever minted is exactly one of
            // free, resident, or awaiting an in-flight eviction's transfer.
            let minted = self.mem.minted_frames();
            let tracked = self.mem.free_frames() as u64
                + self.mem.resident_count() as u64
                + self.pending_free.len() as u64;
            if minted != tracked {
                return violated(
                    "frame conservation: minted == free + resident + pending",
                    format!("minted={minted} tracked={tracked} ({})", self.describe_state()),
                );
            }
        }
        Ok(())
    }

    /// The servicing model's end-of-run counters, `None` under the default
    /// CPU model — the gate for the `FaultServicingSummary` probe event
    /// (the default path must not emit events the seed did not).
    pub fn fault_servicing_counters(&self) -> Option<ServicingCounters> {
        if self.servicing.is_cpu() {
            None
        } else {
            Some(self.servicing.counters())
        }
    }

    /// Assembles end-of-run statistics.
    pub fn stats(&self) -> UvmStats {
        let servicing = self.servicing.counters();
        UvmStats {
            batches: self.finished_batches.clone(),
            faults_raised: self.buffer.raised(),
            faults_deduped: self.buffer.duplicates(),
            buffer_overflows: self.buffer.overflows(),
            faults_on_inflight: self.faults_on_pending,
            prefetches: self.prefetcher.issued(),
            evictions: self.mem.evictions(),
            premature_evictions: self.lifetime.premature_evictions(),
            h2d_bytes: self.pipes.h2d_total_bytes(),
            d2h_bytes: self.pipes.d2h_total_bytes(),
            mean_page_lifetime: self.lifetime.mean_lifetime(),
            peak_resident_pages: self.mem.peak_resident() as u64,
            preemptive_evictions: self.preemptive_evictions,
            proactive_evictions: self.proactive_evictions,
            gpu_serviced_faults: servicing.faults,
            handler_occupancy_cycles: servicing.occupancy_cycles,
        }
    }
}
