//! Stage 3 — residency/eviction decision: where frames come from when
//! device memory is at capacity. Victim selection and transfer timing are
//! delegated to the configured [`EvictionStrategy`]; this module owns the
//! policy-independent bookkeeping (pinning, frame accounting, probes).
//!
//! [`EvictionStrategy`]: crate::strategies::EvictionStrategy

use super::{BatchPlan, UvmEvent, UvmOutput, UvmRuntime};
use crate::strategies::{unobtrusive, EvictionTiming};
use batmem_types::probe::{EvictionCause, ProbeEvent};
use batmem_types::{Cycle, FrameId, SimError};
use std::cmp::Reverse;

impl UvmRuntime {
    /// Schedules enough evictions to free at least one frame, pushing the
    /// freed frames into `pending_free` tagged with their availability
    /// times.
    /// A [`EvictionCause::Proactive`] cause forces UE-style device-to-host
    /// scheduling regardless of the configured eviction strategy.
    pub(crate) fn schedule_evictions(&mut self, earliest: Cycle, plan: &mut BatchPlan, outputs: &mut Vec<UvmOutput>, cause: EvictionCause) -> Result<(), SimError> {
        let pinned_set = &self.batch_pages;
        let (victims, forced) = self.eviction.pick_victims(&self.mem, &|p| pinned_set.contains(p));
        if victims.is_empty() {
            return Err(SimError::Accounting {
                cycle: earliest,
                detail: "eviction required but nothing is resident (capacity too small for one batch?)"
                    .to_string(),
            });
        }
        // Pinned pages (the open batch's own) must never be selected unless
        // the batch itself overflows capacity (`forced`). This now covers
        // root-chunk sweeps too: an unforced sweep excludes pinned
        // region-mates of its unpinned LRU seed (DESIGN.md §3).
        if self.audit.enabled() && !forced {
            if let Some(v) = victims.iter().find(|v| self.batch_pages.contains(**v)) {
                return Err(SimError::InvariantViolated {
                    cycle: earliest,
                    invariant: "pinned pages are never victims unless forced",
                    snapshot: format!(
                        "victim {v} is pinned by open batch {} ({} pages)",
                        plan.record.id,
                        self.batch_pages.len()
                    ),
                });
            }
        }
        let page_bytes = self.cfg.page_bytes();
        for victim in victims {
            // A same-batch victim only becomes evictable once it arrives —
            // one cycle later, so that waiters woken by the arrival observe
            // the page resident and make forward progress even when the
            // eviction is immediate.
            let avail = self
                .planned_arrival
                .get(victim)
                .map(|t| t + 1)
                .unwrap_or(0)
                .max(earliest);
            let frame = self.mem.remove(victim, earliest)?;
            // Proactive eviction exists to overlap the handling window, so
            // it always uses the pipelined device-to-host timing; every
            // other cause defers to the configured strategy.
            let timing = if cause == EvictionCause::Proactive {
                unobtrusive::pipelined(&mut self.pipes, avail, page_bytes)
            } else {
                self.eviction.schedule(&mut self.pipes, avail, page_bytes)
            };
            let (start, ready) = match timing {
                EvictionTiming::Instant => {
                    // The frame is usable immediately, and the page table
                    // entry survives until the frame's consumer actually
                    // starts transferring (the most favorable consistent
                    // schedule).
                    self.ideal_evicts.push((victim, avail));
                    self.pending_free.push(Reverse((avail, frame)));
                    self.probes.emit_with(earliest, || ProbeEvent::EvictionBegun {
                        page: victim,
                        cause,
                        forced_pinned: forced,
                        start: avail,
                    });
                    self.probes.emit_with(earliest, || ProbeEvent::EvictionFinished {
                        page: victim,
                        ready: avail,
                    });
                    plan.record.evictions += 1;
                    if forced {
                        plan.record.forced_pinned_evictions += 1;
                    }
                    continue;
                }
                EvictionTiming::Transfer { start, ready } => (start, ready),
            };
            outputs.push(UvmOutput::Schedule { at: start, event: UvmEvent::EvictionStarted { page: victim } });
            self.lifetime.on_evict(victim, start, self.audit)?;
            self.probes.emit_with(earliest, || ProbeEvent::EvictionBegun {
                page: victim,
                cause,
                forced_pinned: forced,
                start,
            });
            self.probes.emit_with(earliest, || ProbeEvent::EvictionFinished { page: victim, ready });
            self.pending_free.push(Reverse((ready, frame)));
            plan.record.evictions += 1;
            if forced {
                plan.record.forced_pinned_evictions += 1;
            }
        }
        Ok(())
    }

    pub(crate) fn acquire_frame(&mut self, now: Cycle, plan: &mut BatchPlan, outputs: &mut Vec<UvmOutput>, preferred: Option<FrameId>) -> Result<(FrameId, Cycle), SimError> {
        let taken = match preferred {
            Some(pf) => self.mem.take_frame_near(pf),
            None => self.mem.take_frame(),
        };
        if let Some(f) = taken {
            return Ok((f, now));
        }
        if let Some(&Reverse((ready, frame))) = self.pending_free.peek() {
            self.pending_free.pop();
            return Ok((frame, ready));
        }
        self.schedule_evictions(now, plan, outputs, EvictionCause::Demand)?;
        match self.pending_free.pop() {
            Some(Reverse((ready, frame))) => Ok((frame, ready)),
            None => Err(SimError::Accounting {
                cycle: now,
                detail: "eviction was scheduled but yielded no frame".to_string(),
            }),
        }
    }
}
