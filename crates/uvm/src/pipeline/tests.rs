//! Unit tests for the staged fault pipeline, driven through the runtime's
//! own scheduled events.

use super::*;

fn cfg(cap: Option<u64>) -> UvmConfig {
    UvmConfig { gpu_mem_pages: cap, ..UvmConfig::default() }
}

fn p(i: u64) -> PageId {
    PageId::new(i)
}

/// Shared policy constructor: the given preset with prefetching disabled,
/// so batches contain exactly their faulted pages and timing assertions
/// stay page-exact.
fn no_prefetch(base: PolicyConfig) -> PolicyConfig {
    PolicyConfig { prefetch: PrefetchPolicy::None, ..base }
}

/// Per-page (page, cycle) event times, in occurrence order.
type Timeline = Vec<(PageId, Cycle)>;

/// Drives the runtime's own scheduled events to completion, returning
/// (install times, evict times) per page and the final time.
fn drain(rt: &mut UvmRuntime, initial: Vec<UvmOutput>) -> (Timeline, Timeline) {
    let mut queue: Vec<(Cycle, UvmEvent)> = Vec::new();
    let mut installs = Vec::new();
    let mut evicts = Vec::new();
    let apply = |outs: Vec<UvmOutput>, at: Cycle, queue: &mut Vec<(Cycle, UvmEvent)>, installs: &mut Timeline, evicts: &mut Timeline| {
        for o in outs {
            match o {
                UvmOutput::Schedule { at, event } => queue.push((at, event)),
                UvmOutput::Install { page, .. } => installs.push((page, at)),
                UvmOutput::Evict { page } => evicts.push((page, at)),
                // Coalescing is off in these tests; the variants never fire.
                UvmOutput::Coalesce { region } => panic!("unexpected coalesce of {region}"),
                UvmOutput::Splinter { region } => panic!("unexpected splinter of {region}"),
            }
        }
    };
    apply(initial, 0, &mut queue, &mut installs, &mut evicts);
    while !queue.is_empty() {
        queue.sort_by_key(|&(t, _)| t);
        let (t, e) = queue.remove(0);
        let outs = rt.on_event(e, t).unwrap();
        apply(outs, t, &mut queue, &mut installs, &mut evicts);
    }
    (installs, evicts)
}

#[test]
fn single_fault_single_batch() {
    let mut rt = UvmRuntime::new(&cfg(None), &no_prefetch(PolicyConfig::baseline()), 1000);
    let outs = rt.record_fault(p(5), 100).unwrap();
    let (installs, _) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 1);
    let (page, at) = installs[0];
    assert_eq!(page, p(5));
    // ISR latency + 20 us handling (+30/fault) + one 64 KB transfer.
    assert_eq!(at, 100 + 1_000 + 20_000 + 30 + 4162);
    let s = rt.stats();
    assert_eq!(s.num_batches(), 1);
    assert_eq!(s.batches[0].faults, 1);
    assert_eq!(s.batches[0].fault_handling_time(), 20_030);
}

#[test]
fn faults_during_batch_form_next_batch() {
    let mut rt = UvmRuntime::new(&cfg(None), &no_prefetch(PolicyConfig::baseline()), 1000);
    let outs = rt.record_fault(p(1), 0).unwrap();
    assert_eq!(outs.len(), 1); // DrainBuffer scheduled
    let outs = rt.on_event(UvmEvent::DrainBuffer, 1_000).unwrap();
    // Fault raised while the first batch is handling: queues silently.
    assert!(rt.record_fault(p(2), 5_000).unwrap().is_empty());
    let (installs, _) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 2);
    let s = rt.stats();
    assert_eq!(s.num_batches(), 2);
    assert_eq!(s.batches[0].faults, 1);
    assert_eq!(s.batches[1].faults, 1);
    // Second batch starts exactly when the first ends (replay path).
    assert_eq!(s.batches[1].start, s.batches[0].end);
}

#[test]
fn same_cycle_faults_join_via_isr_window() {
    let mut rt = UvmRuntime::new(&cfg(None), &no_prefetch(PolicyConfig::baseline()), 1000);
    let mut outs = rt.record_fault(p(1), 0).unwrap();
    outs.extend(rt.record_fault(p(2), 400).unwrap()); // inside the 1 us ISR window
    let (installs, _) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 2);
    assert_eq!(rt.stats().num_batches(), 1);
}

#[test]
fn batch_groups_simultaneous_faults() {
    let mut rt = UvmRuntime::new(&cfg(None), &no_prefetch(PolicyConfig::baseline()), 1000);
    let mut outs = rt.record_fault(p(3), 0).unwrap();
    outs.extend(rt.record_fault(p(1), 0).unwrap());
    outs.extend(rt.record_fault(p(2), 0).unwrap());
    let (installs, _) = drain(&mut rt, outs);
    let s = rt.stats();
    assert_eq!(s.num_batches(), 1);
    assert_eq!(s.batches[0].faults, 3);
    // Pages migrate in ascending address order (preprocessing sort).
    let pages: Vec<PageId> = installs.iter().map(|&(p, _)| p).collect();
    assert_eq!(pages, vec![p(1), p(2), p(3)]);
}

#[test]
fn prefetcher_fills_dense_regions() {
    let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig::baseline(), 64);
    // 16 of 32 pages of region 0 fault: 50% threshold fires.
    let mut outs = Vec::new();
    for i in 0..16 {
        outs.extend(rt.record_fault(p(i * 2), 0).unwrap());
    }
    let (installs, _) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 32);
    let s = rt.stats();
    assert_eq!(s.batches[0].faults, 16);
    assert_eq!(s.batches[0].prefetches, 16);
}

#[test]
fn serialized_eviction_blocks_migration() {
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
    let outs = rt.record_fault(p(1), 0).unwrap();
    let (installs, _) = drain(&mut rt, outs);
    let first_arrival = installs[0].1;
    // Now page 1 is resident and memory is full; fault page 2.
    let outs = rt.record_fault(p(2), first_arrival + 1).unwrap();
    let (installs, evicts) = drain(&mut rt, outs);
    assert_eq!(evicts.len(), 1);
    assert_eq!(evicts[0].0, p(1));
    let s = rt.stats();
    let b = &s.batches[1];
    // Migration could not start at handling_done: it waited for the
    // eviction transfer.
    assert!(b.first_migration_start > b.handling_done);
    assert_eq!(installs.last().unwrap().0, p(2));
}

#[test]
fn unobtrusive_eviction_overlaps_handling() {
    let policy = no_prefetch(PolicyConfig::ue_only());
    let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
    let outs = rt.record_fault(p(1), 0).unwrap();
    let (installs, _) = drain(&mut rt, outs);
    let t = installs[0].1;
    let outs = rt.record_fault(p(2), t + 1).unwrap();
    let (_, evicts) = drain(&mut rt, outs);
    assert_eq!(rt.preemptive_evictions(), 1);
    // The eviction started right at batch start (top-half ISR), inside
    // the handling window.
    let s = rt.stats();
    let b = &s.batches[1];
    assert_eq!(evicts.last().unwrap().1, b.start);
    // And the first migration starts exactly at handling-done.
    assert_eq!(b.first_migration_start, b.handling_done);
}

#[test]
fn ideal_eviction_is_free() {
    let policy = no_prefetch(PolicyConfig::ideal_eviction());
    let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
    let outs = rt.record_fault(p(1), 0).unwrap();
    drain(&mut rt, outs);
    let outs = rt.record_fault(p(2), 100_000).unwrap();
    drain(&mut rt, outs);
    let s = rt.stats();
    let b = &s.batches[1];
    assert_eq!(b.first_migration_start, b.handling_done);
    // No D2H traffic at all.
    assert_eq!(s.d2h_bytes, 0);
    assert_eq!(s.evictions, 1);
}

#[test]
fn premature_eviction_detected_on_refault() {
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(Some(1)), &policy, 1000);
    let outs = rt.record_fault(p(1), 0).unwrap();
    drain(&mut rt, outs);
    let outs = rt.record_fault(p(2), 100_000).unwrap(); // evicts p1
    drain(&mut rt, outs);
    let outs = rt.record_fault(p(1), 200_000).unwrap(); // refault: premature
    drain(&mut rt, outs);
    let s = rt.stats();
    assert_eq!(s.premature_evictions, 1);
    assert_eq!(s.evictions, 2);
}

#[test]
fn fault_on_inflight_page_is_absorbed() {
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(None), &policy, 1000);
    let outs = rt.record_fault(p(1), 0).unwrap();
    // A duplicate inside the ISR window coalesces in the buffer.
    assert!(rt.record_fault(p(1), 10).unwrap().is_empty());
    let outs = {
        assert_eq!(outs.len(), 1);
        rt.on_event(UvmEvent::DrainBuffer, 1_000).unwrap()
    };
    // A duplicate while the batch is open is absorbed by the open plan.
    assert!(rt.record_fault(p(1), 5_000).unwrap().is_empty());
    drain(&mut rt, outs);
    let s = rt.stats();
    assert_eq!(s.num_batches(), 1);
    assert_eq!(s.faults_deduped, 1);
    assert_eq!(s.faults_on_inflight, 1);
    assert_eq!(s.batches[0].faults, 1);
}

#[test]
fn capacity_is_never_exceeded() {
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(Some(4)), &policy, 1000);
    for round in 0..5u64 {
        let mut outs = Vec::new();
        for i in 0..3 {
            outs.extend(rt.record_fault(p(round * 3 + i), round * 1_000_000).unwrap());
        }
        drain(&mut rt, outs);
        assert!(rt.resident_pages() <= 4, "round {round}: {}", rt.resident_pages());
    }
}

#[test]
fn batch_larger_than_capacity_forces_pinned_evictions() {
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
    let mut outs = Vec::new();
    for i in 0..5 {
        outs.extend(rt.record_fault(p(i), 0).unwrap());
    }
    let (installs, evicts) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 5);
    assert_eq!(evicts.len(), 3);
    let s = rt.stats();
    assert!(s.batches[0].forced_pinned_evictions > 0);
    assert!(rt.resident_pages() <= 2);
}

#[test]
fn unlimited_memory_never_evicts() {
    let mut rt = UvmRuntime::new(&cfg(None), &PolicyConfig::baseline(), 10_000);
    let mut outs = Vec::new();
    for i in 0..200 {
        outs.extend(rt.record_fault(p(i * 7), i).unwrap());
    }
    let (_, evicts) = drain(&mut rt, outs);
    assert!(evicts.is_empty());
    assert_eq!(rt.stats().evictions, 0);
}

#[test]
fn handling_time_scales_with_batch_size() {
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(None), &policy, 10_000);
    let mut outs = Vec::new();
    for i in 0..100 {
        outs.extend(rt.record_fault(p(i), 0).unwrap());
    }
    drain(&mut rt, outs);
    let s = rt.stats();
    assert_eq!(s.batches[0].handling_done - s.batches[0].start, 20_000 + 30 * 100);
}

#[test]
fn refault_of_force_evicted_batch_page_is_not_absorbed() {
    // Capacity 2, batch of 5: later migrations force-evict earlier
    // pages of the same batch. A fault for such a page while the batch
    // is still open must be recorded for the next batch, not absorbed.
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut rt = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
    let mut outs = Vec::new();
    for i in 0..5 {
        outs.extend(rt.record_fault(p(i), 0).unwrap());
    }
    // Drive until the batch finishes.
    let (installs, evicts) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 5);
    assert!(evicts.iter().any(|&(pg, _)| pg.index() < 5), "no same-batch eviction");
    // Re-fault an evicted page: a fresh batch must deliver it again.
    let victim = evicts[0].0;
    let outs = rt.record_fault(victim, 10_000_000).unwrap();
    assert!(!outs.is_empty(), "refault swallowed");
    let (installs, _) = drain(&mut rt, outs);
    assert_eq!(installs.len(), 1);
    assert_eq!(installs[0].0, victim);
}

#[test]
fn proactive_eviction_frees_frames_ahead_of_demand() {
    let policy = PolicyConfig {
        proactive_eviction: true,
        ..no_prefetch(PolicyConfig::baseline())
    };
    let mut rt = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
    // Fill memory.
    let mut outs = Vec::new();
    for i in 0..2 {
        outs.extend(rt.record_fault(p(i), 0).unwrap());
    }
    drain(&mut rt, outs);
    // A two-page batch: PE must evict two pages at batch start, so the
    // migrations are not serialized behind reactive evictions.
    let mut outs = Vec::new();
    for i in 2..4 {
        outs.extend(rt.record_fault(p(i), 1_000_000).unwrap());
    }
    let (_, evicts) = drain(&mut rt, outs);
    assert_eq!(evicts.len(), 2);
    let s = rt.stats();
    assert_eq!(s.proactive_evictions, 2);
    let b = &s.batches[1];
    // Evictions overlapped the handling window: first migration starts
    // right at handling-done despite full memory.
    assert_eq!(b.first_migration_start, b.handling_done);
}

#[test]
fn per_page_time_amortizes_with_batch_size() {
    // Fig. 3's shape: bigger batches => lower per-page cost.
    let policy = no_prefetch(PolicyConfig::baseline());
    let mut small = UvmRuntime::new(&cfg(None), &policy, 10_000);
    let outs = small.record_fault(p(0), 0).unwrap();
    drain(&mut small, outs);
    let mut large = UvmRuntime::new(&cfg(None), &policy, 10_000);
    let mut outs = Vec::new();
    for i in 0..64 {
        outs.extend(large.record_fault(p(i), 0).unwrap());
    }
    drain(&mut large, outs);
    let t_small = small.stats().batches[0].per_page_time().unwrap();
    let t_large = large.stats().batches[0].per_page_time().unwrap();
    assert!(t_large < t_small / 2.0, "{t_large} vs {t_small}");
}

#[test]
fn registry_built_strategies_match_enum_built_runtime() {
    // The same faults through `new` (enum mapping) and `with_strategies`
    // (registry construction) must produce identical timelines.
    use crate::registry::{PolicyRegistry, StrategyCtx};
    let policy = no_prefetch(PolicyConfig::ue_only());
    let reg = PolicyRegistry::builtin();
    let ctx = StrategyCtx { pages_per_region: cfg(Some(2)).pages_per_region() };
    let mut via_enum = UvmRuntime::new(&cfg(Some(2)), &policy, 1000);
    let mut via_registry = UvmRuntime::with_strategies(
        &cfg(Some(2)),
        &policy,
        1000,
        reg.build_eviction("ue", &ctx).unwrap(),
        reg.build_prefetcher("none", &ctx).unwrap(),
        reg.build_coalesce("off").unwrap(),
    );
    let drive = |rt: &mut UvmRuntime| {
        let mut all = (Vec::new(), Vec::new());
        for round in 0..4u64 {
            let mut outs = Vec::new();
            for i in 0..3 {
                outs.extend(rt.record_fault(p(round * 3 + i), round * 1_000_000).unwrap());
            }
            let (ins, evs) = drain(rt, outs);
            all.0.extend(ins);
            all.1.extend(evs);
        }
        all
    };
    assert_eq!(drive(&mut via_enum), drive(&mut via_registry));
    assert_eq!(
        format!("{:?}", via_enum.stats()),
        format!("{:?}", via_registry.stats())
    );
}

#[test]
fn random_victim_plugs_in_without_touching_the_pipeline() {
    // The registry-only strategy drives the full pipeline: victims come
    // from the RNG, capacity holds, and transfers are serialized.
    use crate::registry::{PolicyRegistry, StrategyCtx};
    let policy = no_prefetch(PolicyConfig::baseline());
    let reg = PolicyRegistry::builtin();
    let ctx = StrategyCtx { pages_per_region: cfg(Some(4)).pages_per_region() };
    let mut rt = UvmRuntime::with_strategies(
        &cfg(Some(4)),
        &policy,
        1000,
        reg.build_eviction("random:7", &ctx).unwrap(),
        reg.build_prefetcher("none", &ctx).unwrap(),
        reg.build_coalesce("off").unwrap(),
    );
    rt.set_audit(AuditLevel::Full);
    let mut evict_count = 0;
    for round in 0..6u64 {
        let mut outs = Vec::new();
        for i in 0..3 {
            outs.extend(rt.record_fault(p(round * 3 + i), round * 1_000_000).unwrap());
        }
        let (_, evicts) = drain(&mut rt, outs);
        evict_count += evicts.len();
        assert!(rt.resident_pages() <= 4);
    }
    assert!(evict_count > 0);
    assert!(rt.stats().d2h_bytes > 0, "random victim schedules real transfers");
}

/// Drives faults through a coalescing runtime in three rounds — fill group
/// 0, displace it with group 1, then refill group 0 — returning the
/// coalesced regions, splintered regions, and final promoted-group count.
fn drive_coalesce_rounds(spec: &str) -> (Vec<RegionId>, Vec<RegionId>, usize) {
    use crate::registry::{PolicyRegistry, StrategyCtx};
    use batmem_types::PageGeometry;
    let mut c = cfg(Some(4));
    // 4 base pages per large-page group.
    c.geometry = PageGeometry::new(16, 18, 21).unwrap();
    let policy = no_prefetch(PolicyConfig::baseline());
    let reg = PolicyRegistry::builtin();
    let ctx = StrategyCtx { pages_per_region: c.pages_per_region() };
    let mut rt = UvmRuntime::with_strategies(
        &c,
        &policy,
        1000,
        reg.build_eviction("lru", &ctx).unwrap(),
        reg.build_prefetcher("none", &ctx).unwrap(),
        reg.build_coalesce(spec).unwrap(),
    );
    rt.set_audit(AuditLevel::Full);
    let mut coalesced = Vec::new();
    let mut splintered = Vec::new();
    let rounds: [&[u64]; 3] = [&[0, 1, 2, 3], &[4, 5, 6, 7], &[0, 1, 2, 3]];
    for (r, pages) in rounds.iter().enumerate() {
        let t0 = r as Cycle * 100_000_000;
        let mut queue: Vec<(Cycle, UvmEvent)> = Vec::new();
        let apply = |outs: Vec<UvmOutput>,
                     queue: &mut Vec<(Cycle, UvmEvent)>,
                     coalesced: &mut Vec<RegionId>,
                     splintered: &mut Vec<RegionId>| {
            for o in outs {
                match o {
                    UvmOutput::Schedule { at, event } => queue.push((at, event)),
                    UvmOutput::Coalesce { region } => coalesced.push(region),
                    UvmOutput::Splinter { region } => splintered.push(region),
                    UvmOutput::Install { .. } | UvmOutput::Evict { .. } => {}
                }
            }
        };
        for &i in *pages {
            let outs = rt.record_fault(p(i), t0).unwrap();
            apply(outs, &mut queue, &mut coalesced, &mut splintered);
        }
        while !queue.is_empty() {
            queue.sort_by_key(|&(t, _)| t);
            let (t, e) = queue.remove(0);
            let outs = rt.on_event(e, t).unwrap();
            apply(outs, &mut queue, &mut coalesced, &mut splintered);
        }
    }
    let promoted = rt.promoted_groups();
    (coalesced, splintered, promoted)
}

#[test]
fn greedy_coalescing_promotes_splinters_and_repromotes() {
    let (coalesced, splintered, promoted) = drive_coalesce_rounds("greedy");
    // Round 1 promotes group 0; round 2's evictions splinter it and promote
    // group 1; round 3 splinters group 1 and re-promotes group 0.
    assert_eq!(coalesced, vec![RegionId::new(0), RegionId::new(1), RegionId::new(0)]);
    assert_eq!(splintered, vec![RegionId::new(0), RegionId::new(1)]);
    assert_eq!(promoted, 1);
}

#[test]
fn splinter_on_evict_never_repromotes_a_splintered_group() {
    let (coalesced, splintered, promoted) = drive_coalesce_rounds("splinter:on-evict");
    // Same history, but group 0's round-3 refill stays at base granularity.
    assert_eq!(coalesced, vec![RegionId::new(0), RegionId::new(1)]);
    assert_eq!(splintered, vec![RegionId::new(0), RegionId::new(1)]);
    assert_eq!(promoted, 0);
}

#[test]
fn coalescing_completion_pulls_in_missing_group_pages() {
    use crate::registry::{PolicyRegistry, StrategyCtx};
    use batmem_types::PageGeometry;
    let mut c = cfg(None);
    c.geometry = PageGeometry::new(16, 18, 21).unwrap(); // 4 pages per group
    let policy = no_prefetch(PolicyConfig::baseline());
    let reg = PolicyRegistry::builtin();
    let ctx = StrategyCtx { pages_per_region: c.pages_per_region() };
    let mut rt = UvmRuntime::with_strategies(
        &c,
        &policy,
        1000,
        reg.build_eviction("lru", &ctx).unwrap(),
        reg.build_prefetcher("none", &ctx).unwrap(),
        reg.build_coalesce("greedy:75").unwrap(),
    );
    rt.set_audit(AuditLevel::Full);
    // 3 of 4 group pages fault (75%): the batch completes the group, the
    // non-faulted page migrates as a prefetch, and the group promotes.
    let mut queue: Vec<(Cycle, UvmEvent)> = Vec::new();
    let mut coalesces = 0;
    let mut installs = Vec::new();
    let apply = |outs: Vec<UvmOutput>,
                 queue: &mut Vec<(Cycle, UvmEvent)>,
                 coalesces: &mut u32,
                 installs: &mut Vec<PageId>| {
        for o in outs {
            match o {
                UvmOutput::Schedule { at, event } => queue.push((at, event)),
                UvmOutput::Coalesce { .. } => *coalesces += 1,
                UvmOutput::Install { page, .. } => installs.push(page),
                UvmOutput::Evict { .. } | UvmOutput::Splinter { .. } => {}
            }
        }
    };
    for i in [0u64, 1, 3] {
        let outs = rt.record_fault(p(i), 0).unwrap();
        apply(outs, &mut queue, &mut coalesces, &mut installs);
    }
    while !queue.is_empty() {
        queue.sort_by_key(|&(t, _)| t);
        let (t, e) = queue.remove(0);
        let outs = rt.on_event(e, t).unwrap();
        apply(outs, &mut queue, &mut coalesces, &mut installs);
    }
    installs.sort_unstable();
    assert_eq!(installs, vec![p(0), p(1), p(2), p(3)], "page 2 was pulled in");
    assert_eq!(coalesces, 1);
    assert_eq!(rt.promoted_groups(), 1);
    let b = &rt.stats().batches[0];
    assert_eq!((b.faults, b.prefetches), (3, 1));
}
