//! The tree-based page prefetcher.
//!
//! The paper's baseline employs "the state-of-the-art page prefetching
//! mechanism" of Zheng et al. (HPCA'16), which the production NVIDIA driver
//! implements as a density-threshold scheme over 2 MB regions: during batch
//! preprocessing, if the fraction of a region's 64 KB subpages that are
//! resident, in flight, or faulting crosses a threshold, the region's
//! remaining subpages are appended to the batch as prefetches.

use batmem_types::PageId;

/// Density-threshold prefetcher over fixed-size page regions.
#[derive(Debug, Clone)]
pub struct TreePrefetcher {
    pages_per_region: u64,
    threshold_percent: u8,
    issued: u64,
}

impl TreePrefetcher {
    /// Creates a prefetcher for regions of `pages_per_region` pages firing
    /// at `threshold_percent` density.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_region` is zero or the threshold exceeds 100.
    pub fn new(pages_per_region: u64, threshold_percent: u8) -> Self {
        assert!(pages_per_region > 0, "regions must contain pages");
        assert!(threshold_percent <= 100, "threshold is a percentage");
        Self { pages_per_region, threshold_percent, issued: 0 }
    }

    /// Expands a sorted, deduplicated batch of faulted pages with
    /// prefetches.
    ///
    /// `covered` reports whether a page is already resident or in flight;
    /// `valid_pages` bounds the address space (no prefetching past the end
    /// of the allocation, and regions truncated by it are measured against
    /// their valid page count only).
    ///
    /// Returns the prefetched pages, sorted ascending; the caller merges
    /// them into the batch.
    pub fn expand<F>(&mut self, faulted: &[PageId], covered: F, valid_pages: u64) -> Vec<PageId>
    where
        F: Fn(PageId) -> bool,
    {
        let mut out = Vec::new();
        let mut i = 0;
        while i < faulted.len() {
            let region = faulted[i].index() / self.pages_per_region;
            // The run of faults within this region (input is sorted).
            let mut j = i;
            while j < faulted.len() && faulted[j].index() / self.pages_per_region == region {
                j += 1;
            }
            let faults_in_region = (j - i) as u64;
            let first = region * self.pages_per_region;
            let end = (first + self.pages_per_region).min(valid_pages);
            if first >= valid_pages {
                i = j;
                continue;
            }
            let region_pages = end - first;
            let covered_count: u64 = (first..end)
                .filter(|&p| covered(PageId::new(p)))
                .count() as u64;
            let density = (faults_in_region + covered_count) * 100;
            if density >= u64::from(self.threshold_percent) * region_pages {
                for p in first..end {
                    let page = PageId::new(p);
                    if !covered(page) && faulted[i..j].binary_search(&page).is_err() {
                        out.push(page);
                    }
                }
            }
            i = j;
        }
        self.issued += out.len() as u64;
        out
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(ids: &[u64]) -> Vec<PageId> {
        ids.iter().map(|&i| PageId::new(i)).collect()
    }

    #[test]
    fn dense_region_prefetches_remainder() {
        let mut pf = TreePrefetcher::new(4, 50);
        // Region 0 = pages 0..4; two faults = 50% density.
        let out = pf.expand(&pages(&[0, 2]), |_| false, 100);
        assert_eq!(out, pages(&[1, 3]));
        assert_eq!(pf.issued(), 2);
    }

    #[test]
    fn sparse_region_does_not_fire() {
        let mut pf = TreePrefetcher::new(4, 75);
        let out = pf.expand(&pages(&[0, 2]), |_| false, 100);
        assert!(out.is_empty());
    }

    #[test]
    fn resident_pages_count_toward_density() {
        let mut pf = TreePrefetcher::new(4, 75);
        // One fault + two resident = 75% of region 0.
        let resident = pages(&[1, 2]);
        let out = pf.expand(&pages(&[0]), |p| resident.contains(&p), 100);
        assert_eq!(out, pages(&[3]));
    }

    #[test]
    fn multiple_regions_evaluated_independently() {
        let mut pf = TreePrefetcher::new(4, 50);
        // Region 0: pages 0,1 (fires); region 2: page 8 only (25%, no fire).
        let out = pf.expand(&pages(&[0, 1, 8]), |_| false, 100);
        assert_eq!(out, pages(&[2, 3]));
    }

    #[test]
    fn valid_pages_truncates_region_and_bounds_prefetch() {
        let mut pf = TreePrefetcher::new(4, 50);
        // Only pages 0..6 exist; region 1 = pages 4..6 (2 valid pages).
        // One fault in region 1 = 50% of its valid pages -> fires, but only
        // page 5 can be prefetched.
        let out = pf.expand(&pages(&[4]), |_| false, 6);
        assert_eq!(out, pages(&[5]));
    }

    #[test]
    fn region_fully_past_valid_space_is_skipped() {
        let mut pf = TreePrefetcher::new(4, 0);
        let out = pf.expand(&pages(&[8]), |_| false, 4);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threshold_always_fires() {
        let mut pf = TreePrefetcher::new(4, 0);
        let out = pf.expand(&pages(&[0]), |_| false, 8);
        assert_eq!(out, pages(&[1, 2, 3]));
    }

    #[test]
    fn full_region_of_faults_prefetches_nothing() {
        let mut pf = TreePrefetcher::new(2, 50);
        let out = pf.expand(&pages(&[0, 1]), |_| false, 8);
        assert!(out.is_empty());
    }
}
