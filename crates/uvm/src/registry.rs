//! The name-keyed policy registry: spec strings in, strategy objects out.
//!
//! Every run is constructed from registry lookups — the presets in
//! `batmem::policies` are just canonical spec strings — so adding a policy
//! means registering a [`PolicyDescriptor`] plus a build closure; the
//! pipeline core, the builder, and the CLI all pick it up unchanged.
//!
//! A **spec** is `name[:param[:param...]]`, e.g. `lru`, `tree:50`,
//! `random:7`, `etc:25`. Unknown names resolve to
//! [`SimError::UnknownPolicy`] (listing what *is* registered); malformed
//! parameters resolve to [`SimError::InvalidConfig`].

use crate::adaptive::{AdaptiveController, AdaptiveProbe, AdaptiveSignals, ADAPTIVE_DEFAULT_WINDOW};
use crate::strategies::servicing::GPU_DRIVEN_DEFAULT_OCCUPANCY;
use crate::strategies::{
    CoalesceOff, CoalesceStrategy, CpuServicing, EvictionStrategy, FaultServicingModel,
    GpuDrivenServicing, GreedyCoalesce, IdealEviction, NoPrefetch, OversubscriptionHandler,
    Prefetcher, RandomVictim, SerializedLruEviction, SplinterOnEvict, UnobtrusiveEviction,
};
use crate::OversubController;
use crate::TreePrefetcher;
use batmem_etc::EtcConfig;
use batmem_types::policy::{
    EvictionPolicy, PolicyAxis, PolicyDescriptor, PrefetchPolicy, SwitchTrigger, ToConfig,
};
use batmem_types::probe::Probe;
use batmem_types::SimError;
use std::collections::BTreeMap;
use std::fmt;

/// Default seed for `random` when the spec names none; an arbitrary but
/// fixed constant so bare `random` runs are reproducible.
const RANDOM_VICTIM_DEFAULT_SEED: u64 = 42;

/// Context handed to build closures: the config-derived values strategies
/// may need at construction time.
#[derive(Debug, Clone, Copy)]
pub struct StrategyCtx {
    /// Pages per 2 MB root chunk (sizes the tree prefetcher's regions).
    pub pages_per_region: u64,
}

/// What an oversubscription spec resolves to. Unlike the other axes this
/// carries configuration alongside the handler: TO parameterizes the block
/// scheduler and ETC reshapes capacity, both outside the handler object.
pub struct OversubSelection {
    /// The thread-oversubscription configuration the engine should run
    /// with (disabled for `none` and `etc`).
    pub to: ToConfig,
    /// ETC framework configuration, when the spec selects the ETC baseline.
    pub etc: Option<EtcConfig>,
    /// The degree controller consulted by the block scheduler.
    pub handler: Box<dyn OversubscriptionHandler>,
    /// An internal probe the engine must attach to the run's probe hub —
    /// the sensor half of a closed-loop policy (`None` for every static
    /// policy).
    pub probe: Option<Box<dyn Probe>>,
    /// Actuation signals shared between `probe` and the pipeline (`None`
    /// for every static policy).
    pub signals: Option<AdaptiveSignals>,
}

impl fmt::Debug for OversubSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OversubSelection")
            .field("to", &self.to)
            .field("etc", &self.etc)
            .field("handler", &self.handler.name())
            .field("probe", &self.probe.is_some())
            .field("signals", &self.signals.is_some())
            .finish()
    }
}

type EvictionBuild =
    Box<dyn Fn(&[&str], &StrategyCtx) -> Result<Box<dyn EvictionStrategy>, SimError> + Send + Sync>;
type PrefetchBuild =
    Box<dyn Fn(&[&str], &StrategyCtx) -> Result<Box<dyn Prefetcher>, SimError> + Send + Sync>;
type OversubBuild = Box<dyn Fn(&[&str]) -> Result<OversubSelection, SimError> + Send + Sync>;
type CoalesceBuild =
    Box<dyn Fn(&[&str]) -> Result<Box<dyn CoalesceStrategy>, SimError> + Send + Sync>;
type ServicingBuild =
    Box<dyn Fn(&[&str]) -> Result<Box<dyn FaultServicingModel>, SimError> + Send + Sync>;

/// The registry: five axes of named strategy constructors.
pub struct PolicyRegistry {
    eviction: BTreeMap<&'static str, (PolicyDescriptor, EvictionBuild)>,
    prefetch: BTreeMap<&'static str, (PolicyDescriptor, PrefetchBuild)>,
    oversubscription: BTreeMap<&'static str, (PolicyDescriptor, OversubBuild)>,
    coalesce: BTreeMap<&'static str, (PolicyDescriptor, CoalesceBuild)>,
    servicing: BTreeMap<&'static str, (PolicyDescriptor, ServicingBuild)>,
}

impl fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("eviction", &self.eviction.keys().collect::<Vec<_>>())
            .field("prefetch", &self.prefetch.keys().collect::<Vec<_>>())
            .field("oversubscription", &self.oversubscription.keys().collect::<Vec<_>>())
            .field("coalesce", &self.coalesce.keys().collect::<Vec<_>>())
            .field("servicing", &self.servicing.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl PolicyRegistry {
    /// An empty registry (external embedders composing from scratch).
    pub fn empty() -> Self {
        Self {
            eviction: BTreeMap::new(),
            prefetch: BTreeMap::new(),
            oversubscription: BTreeMap::new(),
            coalesce: BTreeMap::new(),
            servicing: BTreeMap::new(),
        }
    }

    /// The registry pre-loaded with every in-tree strategy.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register_eviction(
            PolicyDescriptor {
                axis: PolicyAxis::Eviction,
                name: "lru",
                params: "",
                summary: "baseline: reactive LRU eviction serialized behind migrations (Fig. 4)",
            },
            |params, _ctx| {
                expect_no_params("eviction", "lru", params)?;
                Ok(Box::new(SerializedLruEviction))
            },
        );
        r.register_eviction(
            PolicyDescriptor {
                axis: PolicyAxis::Eviction,
                name: "ue",
                params: "",
                summary: "Unobtrusive Eviction: preemptive at batch start, pipelined D2H (§4.2)",
            },
            |params, _ctx| {
                expect_no_params("eviction", "ue", params)?;
                Ok(Box::new(UnobtrusiveEviction))
            },
        );
        r.register_eviction(
            PolicyDescriptor {
                axis: PolicyAxis::Eviction,
                name: "ideal",
                params: "",
                summary: "zero-latency eviction limit study (Fig. 8)",
            },
            |params, _ctx| {
                expect_no_params("eviction", "ideal", params)?;
                Ok(Box::new(IdealEviction))
            },
        );
        r.register_eviction(
            PolicyDescriptor {
                axis: PolicyAxis::Eviction,
                name: "random",
                params: ":<seed>",
                summary: "uniform random victim with serialized transfers (plugin demo)",
            },
            |params, _ctx| {
                let seed = match params {
                    [] => RANDOM_VICTIM_DEFAULT_SEED,
                    [s] => parse_u64("eviction.random.seed", s)?,
                    _ => return Err(too_many_params("eviction", "random", params)),
                };
                Ok(Box::new(RandomVictim::new(seed)))
            },
        );
        r.register_prefetch(
            PolicyDescriptor {
                axis: PolicyAxis::Prefetch,
                name: "none",
                params: "",
                summary: "no prefetching: only faulted pages migrate",
            },
            |params, _ctx| {
                expect_no_params("prefetch", "none", params)?;
                Ok(Box::new(NoPrefetch))
            },
        );
        r.register_prefetch(
            PolicyDescriptor {
                axis: PolicyAxis::Prefetch,
                name: "tree",
                params: ":<threshold_percent>",
                summary: "tree-based density prefetcher (HPCA'16 / NVIDIA driver), default 50%",
            },
            |params, ctx| {
                let threshold = match params {
                    [] => 50,
                    [s] => parse_u64("prefetch.tree.threshold_percent", s)?,
                    _ => return Err(too_many_params("prefetch", "tree", params)),
                };
                if threshold == 0 || threshold > 100 {
                    return Err(SimError::invalid_config(
                        "prefetch.tree.threshold_percent",
                        format!("must be in 1..=100, got {threshold}"),
                    ));
                }
                Ok(Box::new(TreePrefetcher::new(ctx.pages_per_region, threshold as u8)))
            },
        );
        r.register_oversubscription(
            PolicyDescriptor {
                axis: PolicyAxis::Oversubscription,
                name: "none",
                params: "",
                summary: "no thread oversubscription",
            },
            |params| {
                expect_no_params("oversubscription", "none", params)?;
                let to = ToConfig::default();
                Ok(OversubSelection {
                    to,
                    etc: None,
                    handler: Box::new(OversubController::new(to)),
                    probe: None,
                    signals: None,
                })
            },
        );
        r.register_oversubscription(
            PolicyDescriptor {
                axis: PolicyAxis::Oversubscription,
                name: "to",
                params: ":fault|any",
                summary: "Thread Oversubscription with the dynamic degree controller (§4.1)",
            },
            |params| {
                let trigger = match params {
                    [] | ["fault"] => SwitchTrigger::FaultStall,
                    ["any"] => SwitchTrigger::AnyStall,
                    [other] => {
                        return Err(SimError::invalid_config(
                            "oversubscription.to.trigger",
                            format!("expected `fault` or `any`, got `{other}`"),
                        ))
                    }
                    _ => return Err(too_many_params("oversubscription", "to", params)),
                };
                let to = ToConfig { trigger, ..ToConfig::enabled() };
                Ok(OversubSelection {
                    to,
                    etc: None,
                    handler: Box::new(OversubController::new(to)),
                    probe: None,
                    signals: None,
                })
            },
        );
        r.register_oversubscription(
            PolicyDescriptor {
                axis: PolicyAxis::Oversubscription,
                name: "etc",
                params: ":<throttle_percent>",
                summary: "ETC framework (ASPLOS'19): MT + CC, PE off (irregular preset)",
            },
            |params| {
                let etc = match params {
                    [] => EtcConfig::irregular(),
                    [s] => {
                        let pct = parse_u64("etc.throttle_percent", s)?;
                        if pct == 0 || pct > 100 {
                            return Err(SimError::invalid_config(
                                "etc.throttle_percent",
                                format!("must be in 1..=100, got {pct}"),
                            ));
                        }
                        EtcConfig::irregular_with_throttle(pct as u8)?
                    }
                    _ => return Err(too_many_params("oversubscription", "etc", params)),
                };
                let to = ToConfig::default();
                Ok(OversubSelection {
                    to,
                    etc: Some(etc),
                    handler: Box::new(OversubController::new(to)),
                    probe: None,
                    signals: None,
                })
            },
        );
        r.register_oversubscription(
            PolicyDescriptor {
                axis: PolicyAxis::Oversubscription,
                name: "adaptive",
                params: ":<window_cycles>",
                summary: "closed-loop TO: a probe watches fault/refault rates per epoch and throttles prefetch / eagers eviction / backs off the degree (default window 200000)",
            },
            |params| {
                let window = match params {
                    [] => ADAPTIVE_DEFAULT_WINDOW,
                    [s] => parse_u64("oversubscription.adaptive.window_cycles", s)?,
                    _ => return Err(too_many_params("oversubscription", "adaptive", params)),
                };
                if window == 0 {
                    return Err(SimError::invalid_config(
                        "oversubscription.adaptive.window_cycles",
                        "must be >= 1, got 0".to_string(),
                    ));
                }
                let to = ToConfig::enabled();
                let signals = AdaptiveSignals::new();
                Ok(OversubSelection {
                    to,
                    etc: None,
                    handler: Box::new(AdaptiveController::new(to, signals.clone())),
                    probe: Some(Box::new(AdaptiveProbe::new(window, signals.clone()))),
                    signals: Some(signals),
                })
            },
        );
        r.register_coalesce(
            PolicyDescriptor {
                axis: PolicyAxis::Coalesce,
                name: "off",
                params: "",
                summary: "no coalescing: base-page mappings only (the seed baseline)",
            },
            |params| {
                expect_no_params("coalesce", "off", params)?;
                Ok(Box::new(CoalesceOff))
            },
        );
        r.register_coalesce(
            PolicyDescriptor {
                axis: PolicyAxis::Coalesce,
                name: "greedy",
                params: ":<threshold_percent>",
                summary: "promote fully-resident groups; complete groups past the density threshold (default 100)",
            },
            |params| {
                let threshold = match params {
                    [] => 100,
                    [s] => parse_u64("coalesce.greedy.threshold_percent", s)?,
                    _ => return Err(too_many_params("coalesce", "greedy", params)),
                };
                if threshold == 0 || threshold > 100 {
                    return Err(SimError::invalid_config(
                        "coalesce.greedy.threshold_percent",
                        format!("must be in 1..=100, got {threshold}"),
                    ));
                }
                Ok(Box::new(GreedyCoalesce::new(threshold as u8)))
            },
        );
        r.register_coalesce(
            PolicyDescriptor {
                axis: PolicyAxis::Coalesce,
                name: "splinter",
                params: ":on-evict",
                summary: "opportunistic promotion, sticky splintering: a splintered group never re-promotes",
            },
            |params| {
                match params {
                    [] | ["on-evict"] => Ok(Box::new(SplinterOnEvict)),
                    [other] => Err(SimError::invalid_config(
                        "coalesce.splinter.mode",
                        format!("expected `on-evict`, got `{other}`"),
                    )),
                    _ => Err(too_many_params("coalesce", "splinter", params)),
                }
            },
        );
        r.register_servicing(
            PolicyDescriptor {
                axis: PolicyAxis::FaultServicing,
                name: "cpu",
                params: "",
                summary: "classic host-serviced faults: CPU ISR round-trip + batched driver handling window (the seed model)",
            },
            |params| {
                expect_no_params("fault-servicing", "cpu", params)?;
                Ok(Box::new(CpuServicing))
            },
        );
        r.register_servicing(
            PolicyDescriptor {
                axis: PolicyAxis::FaultServicing,
                name: "gpu-driven",
                params: ":<occupancy_per_fault>",
                summary: "GPU-driven paging: no CPU round-trip; per-fault handler occupancy replaces the batched window (default 1000)",
            },
            |params| {
                let occupancy = match params {
                    [] => GPU_DRIVEN_DEFAULT_OCCUPANCY,
                    [s] => parse_u64("fault_servicing.gpu_driven.occupancy_per_fault", s)?,
                    _ => return Err(too_many_params("fault-servicing", "gpu-driven", params)),
                };
                if occupancy == 0 {
                    return Err(SimError::invalid_config(
                        "fault_servicing.gpu_driven.occupancy_per_fault",
                        "must be >= 1, got 0".to_string(),
                    ));
                }
                Ok(Box::new(GpuDrivenServicing::new(occupancy)))
            },
        );
        r
    }

    /// Registers (or replaces) an eviction strategy under `desc.name`.
    ///
    /// # Panics
    ///
    /// Panics if `desc.axis` is not [`PolicyAxis::Eviction`] — a registry
    /// whose introspection lies about its entries is a programming error.
    pub fn register_eviction(
        &mut self,
        desc: PolicyDescriptor,
        build: impl Fn(&[&str], &StrategyCtx) -> Result<Box<dyn EvictionStrategy>, SimError>
            + Send
            + Sync
            + 'static,
    ) {
        assert_eq!(desc.axis, PolicyAxis::Eviction, "descriptor axis mismatch for {}", desc.name);
        self.eviction.insert(desc.name, (desc, Box::new(build)));
    }

    /// Registers (or replaces) a prefetcher under `desc.name`.
    ///
    /// # Panics
    ///
    /// Panics if `desc.axis` is not [`PolicyAxis::Prefetch`].
    pub fn register_prefetch(
        &mut self,
        desc: PolicyDescriptor,
        build: impl Fn(&[&str], &StrategyCtx) -> Result<Box<dyn Prefetcher>, SimError>
            + Send
            + Sync
            + 'static,
    ) {
        assert_eq!(desc.axis, PolicyAxis::Prefetch, "descriptor axis mismatch for {}", desc.name);
        self.prefetch.insert(desc.name, (desc, Box::new(build)));
    }

    /// Registers (or replaces) an oversubscription handler under
    /// `desc.name`.
    ///
    /// # Panics
    ///
    /// Panics if `desc.axis` is not [`PolicyAxis::Oversubscription`].
    pub fn register_oversubscription(
        &mut self,
        desc: PolicyDescriptor,
        build: impl Fn(&[&str]) -> Result<OversubSelection, SimError> + Send + Sync + 'static,
    ) {
        assert_eq!(
            desc.axis,
            PolicyAxis::Oversubscription,
            "descriptor axis mismatch for {}",
            desc.name
        );
        self.oversubscription.insert(desc.name, (desc, Box::new(build)));
    }

    /// Registers (or replaces) a coalescing policy under `desc.name`.
    ///
    /// # Panics
    ///
    /// Panics if `desc.axis` is not [`PolicyAxis::Coalesce`].
    pub fn register_coalesce(
        &mut self,
        desc: PolicyDescriptor,
        build: impl Fn(&[&str]) -> Result<Box<dyn CoalesceStrategy>, SimError> + Send + Sync + 'static,
    ) {
        assert_eq!(desc.axis, PolicyAxis::Coalesce, "descriptor axis mismatch for {}", desc.name);
        self.coalesce.insert(desc.name, (desc, Box::new(build)));
    }

    /// Registers (or replaces) a fault-servicing model under `desc.name`.
    ///
    /// # Panics
    ///
    /// Panics if `desc.axis` is not [`PolicyAxis::FaultServicing`].
    pub fn register_servicing(
        &mut self,
        desc: PolicyDescriptor,
        build: impl Fn(&[&str]) -> Result<Box<dyn FaultServicingModel>, SimError>
            + Send
            + Sync
            + 'static,
    ) {
        assert_eq!(
            desc.axis,
            PolicyAxis::FaultServicing,
            "descriptor axis mismatch for {}",
            desc.name
        );
        self.servicing.insert(desc.name, (desc, Box::new(build)));
    }

    /// Builds an eviction strategy from a spec string (`lru`, `random:7`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownPolicy`] for an unregistered name,
    /// [`SimError::InvalidConfig`] for malformed parameters.
    pub fn build_eviction(
        &self,
        spec: &str,
        ctx: &StrategyCtx,
    ) -> Result<Box<dyn EvictionStrategy>, SimError> {
        let (name, params) = split_spec(spec);
        let (_, build) = self.eviction.get(name).ok_or_else(|| SimError::UnknownPolicy {
            axis: PolicyAxis::Eviction.label(),
            name: name.to_string(),
            known: known_names(&self.eviction),
        })?;
        build(&params, ctx)
    }

    /// Builds a prefetcher from a spec string (`none`, `tree:50`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownPolicy`] for an unregistered name,
    /// [`SimError::InvalidConfig`] for malformed parameters.
    pub fn build_prefetcher(
        &self,
        spec: &str,
        ctx: &StrategyCtx,
    ) -> Result<Box<dyn Prefetcher>, SimError> {
        let (name, params) = split_spec(spec);
        let (_, build) = self.prefetch.get(name).ok_or_else(|| SimError::UnknownPolicy {
            axis: PolicyAxis::Prefetch.label(),
            name: name.to_string(),
            known: known_names(&self.prefetch),
        })?;
        build(&params, ctx)
    }

    /// Resolves an oversubscription spec (`none`, `to:any`, `etc:25`) into
    /// its configuration + handler bundle.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownPolicy`] for an unregistered name,
    /// [`SimError::InvalidConfig`] for malformed parameters.
    pub fn build_oversubscription(&self, spec: &str) -> Result<OversubSelection, SimError> {
        let (name, params) = split_spec(spec);
        let (_, build) =
            self.oversubscription.get(name).ok_or_else(|| SimError::UnknownPolicy {
                axis: PolicyAxis::Oversubscription.label(),
                name: name.to_string(),
                known: known_names(&self.oversubscription),
            })?;
        build(&params)
    }

    /// Builds a coalescing policy from a spec string (`off`, `greedy:75`,
    /// `splinter:on-evict`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownPolicy`] for an unregistered name,
    /// [`SimError::InvalidConfig`] for malformed parameters.
    pub fn build_coalesce(&self, spec: &str) -> Result<Box<dyn CoalesceStrategy>, SimError> {
        let (name, params) = split_spec(spec);
        let (_, build) = self.coalesce.get(name).ok_or_else(|| SimError::UnknownPolicy {
            axis: PolicyAxis::Coalesce.label(),
            name: name.to_string(),
            known: known_names(&self.coalesce),
        })?;
        build(&params)
    }

    /// Builds a fault-servicing model from a spec string (`cpu`,
    /// `gpu-driven:500`).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownPolicy`] for an unregistered name,
    /// [`SimError::InvalidConfig`] for malformed parameters.
    pub fn build_servicing(&self, spec: &str) -> Result<Box<dyn FaultServicingModel>, SimError> {
        let (name, params) = split_spec(spec);
        let (_, build) = self.servicing.get(name).ok_or_else(|| SimError::UnknownPolicy {
            axis: PolicyAxis::FaultServicing.label(),
            name: name.to_string(),
            known: known_names(&self.servicing),
        })?;
        build(&params)
    }

    /// All registered descriptors, ordered by axis then name — the data
    /// behind `--list-policies`.
    pub fn descriptors(&self) -> Vec<PolicyDescriptor> {
        let mut out: Vec<PolicyDescriptor> =
            self.eviction.values().map(|(d, _)| *d).collect();
        out.extend(self.prefetch.values().map(|(d, _)| *d));
        out.extend(self.oversubscription.values().map(|(d, _)| *d));
        out.extend(self.coalesce.values().map(|(d, _)| *d));
        out.extend(self.servicing.values().map(|(d, _)| *d));
        out
    }
}

/// Canonical spec string for an [`EvictionPolicy`] enum value — the bridge
/// from [`PolicyConfig`](batmem_types::policy::PolicyConfig) presets to
/// registry names.
pub fn eviction_spec_of(policy: EvictionPolicy) -> &'static str {
    match policy {
        EvictionPolicy::SerializedLru => "lru",
        EvictionPolicy::Unobtrusive => "ue",
        EvictionPolicy::Ideal => "ideal",
    }
}

/// Canonical spec string for a [`PrefetchPolicy`] enum value.
pub fn prefetch_spec_of(policy: PrefetchPolicy) -> String {
    match policy {
        PrefetchPolicy::None => "none".to_string(),
        PrefetchPolicy::Tree { threshold_percent } => format!("tree:{threshold_percent}"),
    }
}

/// Splits `name[:p1[:p2...]]` into the name and its parameter list.
fn split_spec(spec: &str) -> (&str, Vec<&str>) {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or("");
    (name, parts.collect())
}

fn known_names<V>(map: &BTreeMap<&'static str, V>) -> String {
    map.keys().copied().collect::<Vec<_>>().join(", ")
}

fn expect_no_params(axis: &str, name: &str, params: &[&str]) -> Result<(), SimError> {
    if params.is_empty() {
        Ok(())
    } else {
        Err(SimError::InvalidConfig {
            field: "policy.spec",
            reason: format!("{axis} policy `{name}` takes no parameters, got `{}`", params.join(":")),
        })
    }
}

fn too_many_params(axis: &str, name: &str, params: &[&str]) -> SimError {
    SimError::InvalidConfig {
        field: "policy.spec",
        reason: format!("too many parameters for {axis} policy `{name}`: `{}`", params.join(":")),
    }
}

fn parse_u64(field: &'static str, s: &str) -> Result<u64, SimError> {
    s.parse::<u64>()
        .map_err(|_| SimError::invalid_config(field, format!("expected an integer, got `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> StrategyCtx {
        StrategyCtx { pages_per_region: 32 }
    }

    #[test]
    fn builtin_names_resolve_on_every_axis() {
        let r = PolicyRegistry::builtin();
        for spec in ["lru", "ue", "ideal", "random", "random:7"] {
            let s = r.build_eviction(spec, &ctx()).unwrap();
            assert_eq!(s.name(), split_spec(spec).0);
        }
        for spec in ["none", "tree", "tree:75"] {
            let s = r.build_prefetcher(spec, &ctx()).unwrap();
            assert_eq!(s.name(), split_spec(spec).0);
        }
        for spec in
            ["none", "to", "to:fault", "to:any", "etc", "etc:25", "adaptive", "adaptive:100000"]
        {
            r.build_oversubscription(spec).unwrap();
        }
        for spec in ["off", "greedy", "greedy:75", "splinter", "splinter:on-evict"] {
            let s = r.build_coalesce(spec).unwrap();
            assert_eq!(s.name(), split_spec(spec).0);
        }
        assert!(r.build_coalesce("off").unwrap().is_off());
        assert!(!r.build_coalesce("greedy").unwrap().is_off());
        for spec in ["cpu", "gpu-driven", "gpu-driven:500"] {
            let s = r.build_servicing(spec).unwrap();
            assert_eq!(s.name(), split_spec(spec).0);
        }
        assert!(r.build_servicing("cpu").unwrap().is_cpu());
        assert!(!r.build_servicing("gpu-driven").unwrap().is_cpu());
    }

    #[test]
    fn unknown_name_is_a_typed_error_listing_known_names() {
        let r = PolicyRegistry::builtin();
        let err = r.build_eviction("mru", &ctx()).unwrap_err();
        match &err {
            SimError::UnknownPolicy { axis, name, known } => {
                assert_eq!(*axis, "eviction");
                assert_eq!(name, "mru");
                assert_eq!(known, "ideal, lru, random, ue");
            }
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
        assert!(matches!(
            r.build_prefetcher("oracle", &ctx()),
            Err(SimError::UnknownPolicy { axis: "prefetch", .. })
        ));
        assert!(matches!(
            r.build_oversubscription("learned"),
            Err(SimError::UnknownPolicy { axis: "oversubscription", .. })
        ));
        assert!(matches!(
            r.build_coalesce("eager"),
            Err(SimError::UnknownPolicy { axis: "coalesce", .. })
        ));
        match r.build_servicing("dma").unwrap_err() {
            SimError::UnknownPolicy { axis, name, known } => {
                assert_eq!(axis, "fault-servicing");
                assert_eq!(name, "dma");
                assert_eq!(known, "cpu, gpu-driven");
            }
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
    }

    #[test]
    fn malformed_params_are_invalid_config() {
        let r = PolicyRegistry::builtin();
        assert!(matches!(
            r.build_eviction("lru:3", &ctx()),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_eviction("random:x", &ctx()),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_prefetcher("tree:0", &ctx()),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_prefetcher("tree:101", &ctx()),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_oversubscription("to:sometimes"),
            Err(SimError::InvalidConfig { .. })
        ));
        // The etc bound is validated at the parse site: 0, the 101..=255
        // band the old u8 conversion let through, and >255 all fail the
        // same way.
        for spec in ["etc:0", "etc:101", "etc:200", "etc:300"] {
            assert!(matches!(
                r.build_oversubscription(spec),
                Err(SimError::InvalidConfig { .. })
            ));
        }
        for spec in ["adaptive:0", "adaptive:x", "adaptive:1:2"] {
            assert!(matches!(
                r.build_oversubscription(spec),
                Err(SimError::InvalidConfig { .. })
            ));
        }
        for spec in ["cpu:1", "gpu-driven:0", "gpu-driven:x", "gpu-driven:1:2"] {
            assert!(matches!(r.build_servicing(spec), Err(SimError::InvalidConfig { .. })));
        }
        assert!(matches!(
            r.build_coalesce("greedy:0"),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_coalesce("greedy:101"),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_coalesce("splinter:sometimes"),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            r.build_coalesce("off:1"),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn oversub_specs_carry_their_configuration() {
        let r = PolicyRegistry::builtin();
        let none = r.build_oversubscription("none").unwrap();
        assert!(!none.to.enabled && none.etc.is_none());
        assert_eq!(none.handler.degree(), 0);

        let to = r.build_oversubscription("to:any").unwrap();
        assert!(to.to.enabled);
        assert_eq!(to.to.trigger, SwitchTrigger::AnyStall);
        assert!(to.handler.switching_allowed());

        let etc = r.build_oversubscription("etc:30").unwrap();
        assert!(!etc.to.enabled);
        assert_eq!(etc.etc.unwrap().throttle_percent, 30);

        // Static handlers carry no probe; the adaptive handler carries the
        // probe half of its closed loop plus the shared signal block.
        for spec in ["none", "to", "etc"] {
            let s = r.build_oversubscription(spec).unwrap();
            assert!(s.probe.is_none() && s.signals.is_none(), "{spec} should be open-loop");
        }
        let adaptive = r.build_oversubscription("adaptive").unwrap();
        assert!(adaptive.to.enabled);
        assert!(adaptive.probe.is_some());
        assert!(adaptive.signals.is_some());
        assert_eq!(adaptive.handler.degree(), 1);
    }

    #[test]
    fn enum_to_spec_bridges_round_trip() {
        let r = PolicyRegistry::builtin();
        for p in [EvictionPolicy::SerializedLru, EvictionPolicy::Unobtrusive, EvictionPolicy::Ideal]
        {
            r.build_eviction(eviction_spec_of(p), &ctx()).unwrap();
        }
        for p in [PrefetchPolicy::None, PrefetchPolicy::Tree { threshold_percent: 50 }] {
            r.build_prefetcher(&prefetch_spec_of(p), &ctx()).unwrap();
        }
    }

    #[test]
    fn replacement_and_external_registration() {
        let mut r = PolicyRegistry::builtin();
        let before = r.descriptors().len();
        r.register_eviction(
            PolicyDescriptor {
                axis: PolicyAxis::Eviction,
                name: "mru",
                params: "",
                summary: "most-recently-used victim (test plugin)",
            },
            |_, _| Ok(Box::new(SerializedLruEviction)),
        );
        assert_eq!(r.descriptors().len(), before + 1);
        r.build_eviction("mru", &ctx()).unwrap();
        // Replacing an existing name does not grow the registry.
        r.register_eviction(
            PolicyDescriptor {
                axis: PolicyAxis::Eviction,
                name: "mru",
                params: "",
                summary: "replaced",
            },
            |_, _| Ok(Box::new(IdealEviction)),
        );
        assert_eq!(r.descriptors().len(), before + 1);
    }

    #[test]
    fn descriptors_are_ordered_by_axis_then_name() {
        let d = PolicyRegistry::builtin().descriptors();
        let names: Vec<&str> = d.iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            [
                "ideal", "lru", "random", "ue", "none", "tree", "adaptive", "etc", "none", "to",
                "greedy", "off", "splinter", "cpu", "gpu-driven"
            ]
        );
        assert!(d.iter().take(4).all(|d| d.axis == PolicyAxis::Eviction));
        assert!(d.iter().rev().take(2).all(|d| d.axis == PolicyAxis::FaultServicing));
    }
}
